//! Offline stub of serde's derive macros.
//!
//! The stub `serde` traits are empty markers, so the derives only need the
//! item's name and generic parameters to emit an empty impl. No `syn`/
//! `quote` dependency: the input token stream is scanned directly.

use proc_macro::{TokenStream, TokenTree};

/// Name and generic parameters of the derive target.
struct Target {
    name: String,
    /// Parameter declarations for the `impl<...>` list (bounds stripped),
    /// e.g. `["'a", "T"]`.
    params: Vec<String>,
}

/// Extracts the item name and generic parameter names from a
/// `struct`/`enum` definition token stream.
fn parse_target(input: TokenStream) -> Target {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`# [...]`), visibility and doc comments until the
    // `struct`/`enum` keyword.
    for tt in tokens.by_ref() {
        if let TokenTree::Ident(ref id) = tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" {
                break;
            }
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive stub: expected item name, got {other:?}"),
    };

    let mut params = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        let mut skipping_bound = false;
        while let Some(tt) = tokens.next() {
            match tt {
                TokenTree::Punct(p) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ',' if depth == 1 => {
                        expect_param = true;
                        skipping_bound = false;
                    }
                    ':' | '=' if depth == 1 => skipping_bound = true,
                    '\'' if depth == 1 && expect_param && !skipping_bound => {
                        // Lifetime parameter: tick + ident.
                        if let Some(TokenTree::Ident(id)) = tokens.next() {
                            params.push(format!("'{id}"));
                            expect_param = false;
                        }
                    }
                    _ => {}
                },
                TokenTree::Ident(id) if depth == 1 && expect_param && !skipping_bound => {
                    let s = id.to_string();
                    if s == "const" {
                        continue; // next ident is the const param name
                    }
                    params.push(s);
                    expect_param = false;
                }
                _ => {}
            }
        }
    }
    Target { name, params }
}

fn empty_impl(input: TokenStream, trait_path: &str, extra_lifetime: Option<&str>) -> TokenStream {
    let target = parse_target(input);
    let mut impl_params: Vec<String> = Vec::new();
    if let Some(lt) = extra_lifetime {
        impl_params.push(lt.to_string());
    }
    impl_params.extend(target.params.iter().cloned());
    let impl_generics = if impl_params.is_empty() {
        String::new()
    } else {
        format!("<{}>", impl_params.join(", "))
    };
    let ty_generics = if target.params.is_empty() {
        String::new()
    } else {
        format!("<{}>", target.params.join(", "))
    };
    let trait_generics = extra_lifetime.map_or(String::new(), |lt| format!("<{lt}>"));
    format!(
        "impl{impl_generics} {trait_path}{trait_generics} for {name}{ty_generics} {{}}",
        name = target.name
    )
    .parse()
    .expect("derive stub: generated impl parses")
}

/// Emits `impl ::serde::Serialize for T {}`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Serialize", None)
}

/// Emits `impl<'de> ::serde::Deserialize<'de> for T {}`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "::serde::Deserialize", Some("'de"))
}
