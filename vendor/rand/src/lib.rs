//! Offline stub of the `rand` 0.8 API surface used by this workspace.
//!
//! The build container has no registry access, so the workspace vendors a
//! minimal, deterministic re-implementation of exactly the items the code
//! calls: `rngs::StdRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}` and `seq::SliceRandom::shuffle`.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a high-quality,
//! well-studied generator. It is **not** stream-compatible with upstream
//! `rand`'s ChaCha12-based `StdRng`; everything in this repo treats seeds
//! as opaque determinism handles, so only reproducibility matters, not the
//! exact stream.

use std::ops::{Range, RangeInclusive};

/// A generator seedable from a `u64` (the only constructor the workspace
/// uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    #[doc(hidden)]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    #[doc(hidden)]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform draw from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` (53-bit mantissa).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Uniform integer in `[0, span)` without modulo bias (Lemire rejection).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the multiply-shift map exactly uniform.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        let hi = ((v as u128 * span as u128) >> 64) as u64;
        let lo = (v as u128 * span as u128) as u64;
        if lo >= zone {
            return hi;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * $unit(rng.next_u64())
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}
impl_sample_range_float!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    //! Generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stub stand-in for upstream's
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpoint/resume support.
        ///
        /// Restoring via [`StdRng::from_state`] continues the stream at
        /// exactly the point [`StdRng::state`] captured it.
        #[inline]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`].
        ///
        /// The all-zero state is a fixed point of xoshiro256++ (the stream
        /// would be constant zero); it is mapped to `seed_from_u64(0)` so a
        /// corrupt checkpoint cannot produce a degenerate generator.
        #[inline]
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice randomisation.

    use super::Rng;

    /// Shuffle support for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2_000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..50_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((11_000..14_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left order intact");
    }
}
