//! Offline stub of the `criterion` API surface used by this workspace.
//!
//! Runs each benchmark as warm-up + timed batches and prints a
//! mean-time-per-iteration line. No statistics, outlier analysis, HTML
//! reports, or baseline comparison — just honest wall-clock timing so the
//! `cargo bench` targets keep compiling and producing usable numbers
//! without network access to crates.io.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark manager; entry point created by `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Upstream reads CLI flags here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        }
    }
}

/// Identifier `function_name/parameter` for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named collection of benchmarks sharing timing configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total time budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Upstream feature; the stub records nothing.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints as
    /// it goes, so this is a no-op).
    pub fn finish(self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: Instant::now() + self.warm_up_time,
            },
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);

        let per_sample =
            self.measurement_time.max(Duration::from_millis(1)) / self.sample_size as u32;
        bencher.mode = Mode::Measure {
            per_sample,
            samples: self.sample_size,
        };
        bencher.total = Duration::ZERO;
        bencher.iters = 0;
        f(&mut bencher);

        let mean_ns = if bencher.iters == 0 {
            0.0
        } else {
            bencher.total.as_nanos() as f64 / bencher.iters as f64
        };
        println!(
            "{}/{}: {} time: [{}]",
            self.name,
            id,
            bencher.iters,
            format_ns(mean_ns)
        );
    }
}

/// Throughput annotation (accepted, unused).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    WarmUp {
        until: Instant,
    },
    Measure {
        per_sample: Duration,
        samples: usize,
    },
}

/// Timing harness handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp { until } => {
                // At least one call so per-call state (caches, lazy init)
                // is primed even when the budget is tiny.
                loop {
                    black_box(routine());
                    if Instant::now() >= until {
                        break;
                    }
                }
            }
            Mode::Measure {
                per_sample,
                samples,
            } => {
                for _ in 0..samples {
                    let start = Instant::now();
                    black_box(routine());
                    let elapsed = start.elapsed();
                    self.total += elapsed;
                    self.iters += 1;
                    // Keep cheap routines within the time budget by
                    // batching extra calls into the same sample.
                    let mut extra = 0;
                    while start.elapsed() < per_sample && extra < 1_000_000 {
                        let s = Instant::now();
                        black_box(routine());
                        self.total += s.elapsed();
                        self.iters += 1;
                        extra += 1;
                    }
                }
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Collects benchmark functions into a runner, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(6));
        group.warm_up_time(Duration::from_millis(1));
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100 * k).sum::<u64>());
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_counts_iterations() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
