//! Offline stub of the `serde` API surface used by this workspace.
//!
//! The workspace derives `Serialize`/`Deserialize` on config and data
//! types but never drives an actual serde serialiser (persistence uses the
//! hand-rolled binary format in `hotspot-nn::serialize`). The traits are
//! therefore markers here; the derive macros (re-exported from the stub
//! `serde_derive`) emit empty impls.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
