//! Offline stub of the `crossbeam` scoped-thread API used by this
//! workspace, backed by `std::thread::scope` (stable since 1.63).

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Scope handle passed to [`scope`] closures; [`Scope::spawn`] borrows
    //  it to launch workers that may reference stack data.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives a scope token
        /// (unused by this workspace, hence the unit type).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            self.inner.spawn(move || f(()))
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be
    /// spawned; all threads are joined before returning.
    ///
    /// Unlike upstream crossbeam, a panicking worker propagates the panic
    /// out of `scope` directly (via `std::thread::scope`) instead of
    /// returning `Err` — callers `.expect(...)` the result either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_workers_mutate_borrowed_slices() {
        let mut data = vec![0u32; 4];
        super::thread::scope(|scope| {
            for (i, slot) in data.iter_mut().enumerate() {
                scope.spawn(move |_| {
                    *slot = i as u32 + 1;
                });
            }
        })
        .expect("workers join cleanly");
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn scope_returns_closure_value() {
        let v = super::thread::scope(|_| 42).unwrap();
        assert_eq!(v, 42);
    }
}
