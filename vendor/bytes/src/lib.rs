//! Offline stub of the `bytes` API surface used by this workspace:
//! `BytesMut` as a growable buffer with little-endian `put_*` writers,
//! `Bytes` as its frozen read-only form, and `Buf` little-endian readers
//! over `&[u8]`.

use std::ops::Deref;

/// Immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with at least `capacity` bytes reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Little-endian write access (implemented for [`BytesMut`]).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u32` little-endian.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` little-endian.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` little-endian.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Little-endian cursor-style read access (implemented for `&[u8]`).
///
/// # Panics
///
/// All getters panic when the buffer holds fewer bytes than requested,
/// matching upstream `bytes` semantics.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Copies out `dst.len()` bytes and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HSNN");
        buf.put_u32_le(1);
        buf.put_u64_le(2);
        buf.put_f32_le(3.5);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..4], b"HSNN");

        let mut r: &[u8] = &frozen;
        r.advance(4);
        assert_eq!(r.get_u32_le(), 1);
        assert_eq!(r.get_u64_le(), 2);
        assert_eq!(r.get_f32_le(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn truncated_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
