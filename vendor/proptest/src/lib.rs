//! Offline stub of the `proptest` API surface used by this workspace.
//!
//! Provides the `proptest!` test macro, `prop_assert*!`, `Just`,
//! `prop_oneof!`, range/tuple/collection/sample strategies and
//! `prop_map`/`prop_flat_map` combinators. Cases are generated from a
//! deterministic per-test seed; there is **no shrinking** — a failing case
//! reproduces identically on every run, which is what this repo's
//! deterministic test suite needs.

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-test deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for one `(test name, case index)` pair.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, span)`.
        ///
        /// # Panics
        ///
        /// Panics when `span == 0`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "empty range");
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always generates a clone of the held value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy arm stored inside [`Union`].
    type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between strategies of a common value type (built by
    /// `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<UnionArm<V>>,
    }

    impl<V> Union<V> {
        /// An empty union; populate with [`Union::with`].
        #[allow(clippy::new_without_default)]
        pub fn new() -> Self {
            Union { arms: Vec::new() }
        }

        /// Adds an arm.
        pub fn with<S>(mut self, strategy: S) -> Self
        where
            S: Strategy<Value = V> + 'static,
        {
            self.arms.push(Box::new(move |rng| strategy.generate(rng)));
            self
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.unit_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (hi - lo) * rng.unit_f64() as $t
                }
            }
        )*};
    }
    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open
    /// range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    ///
    /// # Panics
    ///
    /// The returned strategy panics when generating from an empty list.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        Select { values }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.values.is_empty(), "select from empty list");
            let i = rng.below(self.values.len() as u64) as usize;
            self.values[i].clone()
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    //! Everything the `proptest!` idiom needs.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Per-test configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::prelude::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])+
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(
                    let $pat = $crate::strategy::Strategy::generate(
                        &($strat), &mut __proptest_rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice between the listed strategies (all generating the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.with($strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u64> {
        (0u64..500).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 3usize..10, f in -1.0f32..1.0) {
            prop_assert!((3..10).contains(&v));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_flat_map_compose(
            (n, xs) in (1usize..5).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0.0f64..1.0, n))
            }),
            even in arb_even(),
        ) {
            prop_assert_eq!(xs.len(), n);
            prop_assert!(even.is_multiple_of(2));
        }

        #[test]
        fn oneof_and_select(
            r in prop_oneof![Just(5u32), Just(10), Just(20)],
            pick in crate::sample::select(vec!['a', 'b', 'c']),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(r == 5 || r == 10 || r == 20);
            prop_assert!(['a', 'b', 'c'].contains(&pick));
            // `flag` only checks that `bool::ANY` yields a valid bool.
            prop_assert!(u8::from(flag) <= 1);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let s = 0u64..1_000_000;
        let a: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::for_case("x", i)))
            .collect();
        let b: Vec<u64> = (0..10)
            .map(|i| s.generate(&mut crate::test_runner::TestRng::for_case("x", i)))
            .collect();
        assert_eq!(a, b);
    }
}
