#!/bin/bash
# Remaining figures + extension studies at budgets sized for one CPU core.
set -x
cd /root/repo
B=./target/release
$B/fig3_sgd_vs_mgd --scale 0.02 --steps 500 --k 32 --out results > results/fig3.log 2>&1
$B/fig4_bias_vs_shift --scale 0.02 --steps 900 --k 32 --out results > results/fig4.log 2>&1
$B/ablation_k --scale 0.02 --steps 500 --out results > results/ablation_k.log 2>&1
$B/ablation_bias --scale 0.02 --steps 400 --out results > results/ablation_bias.log 2>&1
$B/ablation_activation --scale 0.02 --steps 400 --out results > results/ablation_activation.log 2>&1
$B/calibration_study --scale 0.02 --steps 600 --out results > results/calibration_study.log 2>&1
$B/ablation_augment --scale 0.004 --steps 400 --out results > results/ablation_augment.log 2>&1
echo DONE_TAIL
