//! Finite-difference gradient verification.
//!
//! Every layer's analytic backward pass is checked against central
//! differences of the end-to-end loss — the strongest correctness evidence
//! a from-scratch autodiff substrate can carry.

use hotspot_nn::layers::{AvgPool2, Conv2d, Dense, Flatten, MaxPool2, Relu, Sigmoid, Tanh};
use hotspot_nn::{loss, Network, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const EPS: f64 = 2e-3;
const TOL: f64 = 8e-2; // relative, with absolute floor below

fn random_input(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(
        shape,
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    )
}

/// Computes the scalar loss of `net` on `(x, target)` without mutating
/// gradients.
fn loss_of(net: &mut Network, x: &Tensor, target: &[f32; 2]) -> f64 {
    let logits = net.forward(x, false);
    let (l, _) = loss::softmax_cross_entropy(&logits, target);
    l as f64
}

/// Checks analytic parameter gradients against central finite differences.
/// Verifies a sampled subset of parameters (every `stride`-th) to keep the
/// test fast.
fn check_param_gradients(mut net: Network, x: Tensor, stride: usize) {
    let target = [0.3f32, 0.7];

    // Analytic gradients.
    net.zero_grads();
    let logits = net.forward(&x, false);
    let (_, g) = loss::softmax_cross_entropy(&logits, &target);
    net.backward(&g);
    let mut analytic = Vec::new();
    net.visit_params(&mut |_, g| analytic.extend_from_slice(g));

    // Finite differences over a sampled subset.
    let flat_index = 0usize;
    let mut checked = 0usize;
    let mut outliers: Vec<(usize, f64, f64, f64)> = Vec::new();
    let total_params = analytic.len();
    for param_start in 0..total_params {
        if param_start % stride != 0 {
            continue;
        }
        let _ = flat_index;
        // Perturb parameter `param_start`.
        let perturb = |net: &mut Network, delta: f32| {
            let mut offset = 0usize;
            net.visit_params(&mut |w, _| {
                if param_start >= offset && param_start < offset + w.len() {
                    w[param_start - offset] += delta;
                }
                offset += w.len();
            });
        };
        perturb(&mut net, EPS as f32);
        let lp = loss_of(&mut net, &x, &target);
        perturb(&mut net, -2.0 * EPS as f32);
        let lm = loss_of(&mut net, &x, &target);
        perturb(&mut net, EPS as f32);
        let fd = (lp - lm) / (2.0 * EPS);
        let an = analytic[param_start] as f64;
        let err = (fd - an).abs() / fd.abs().max(an.abs()).max(0.05);
        if err >= TOL {
            // ReLU/maxpool kinks make the loss piecewise-smooth: a central
            // difference straddling a kink legitimately disagrees with the
            // analytic (one-sided) gradient at isolated parameters. Record
            // and bound such outliers instead of failing on the first one.
            outliers.push((param_start, fd, an, err));
        }
        checked += 1;
    }
    assert!(checked > 10, "too few parameters checked ({checked})");
    let allowed = (checked / 20).max(1);
    assert!(
        outliers.len() <= allowed,
        "{} of {checked} sampled parameters exceed tolerance (allowed {allowed}): {outliers:?}",
        outliers.len()
    );
}

/// Checks the input gradient returned by `Network::backward`.
fn check_input_gradient(mut net: Network, x: Tensor) {
    let target = [0.8f32, 0.2];
    net.zero_grads();
    let logits = net.forward(&x, false);
    let (_, g) = loss::softmax_cross_entropy(&logits, &target);
    let gin = net.backward(&g);

    for i in (0..x.len()).step_by(7) {
        let mut xp = x.clone();
        xp.as_mut_slice()[i] += EPS as f32;
        let lp = loss_of(&mut net, &xp, &target);
        let mut xm = x.clone();
        xm.as_mut_slice()[i] -= EPS as f32;
        let lm = loss_of(&mut net, &xm, &target);
        let fd = (lp - lm) / (2.0 * EPS);
        let an = gin.as_slice()[i] as f64;
        let err = (fd - an).abs() / fd.abs().max(an.abs()).max(0.05);
        assert!(
            err < TOL,
            "input {i}: finite-diff {fd} vs analytic {an} (rel err {err})"
        );
    }
}

#[test]
fn dense_relu_dense_param_gradients() {
    let mut net = Network::new();
    net.push(Dense::new(6, 10, 1));
    net.push(Relu::new());
    net.push(Dense::new(10, 2, 2));
    check_param_gradients(net, random_input(vec![6], 10), 3);
}

#[test]
fn conv_same_padding_param_gradients() {
    let mut net = Network::new();
    net.push(Conv2d::new(2, 3, 3, 1, 3));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(3 * 6 * 6, 2, 4));
    check_param_gradients(net, random_input(vec![2, 6, 6], 11), 17);
}

#[test]
fn conv_valid_padding_param_gradients() {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 2, 3, 0, 5));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(2 * 4 * 4, 2, 6));
    check_param_gradients(net, random_input(vec![1, 6, 6], 12), 5);
}

#[test]
fn maxpool_network_param_gradients() {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 4, 3, 1, 7));
    net.push(Relu::new());
    net.push(MaxPool2::new());
    net.push(Flatten::new());
    net.push(Dense::new(4 * 3 * 3, 2, 8));
    check_param_gradients(net, random_input(vec![1, 6, 6], 13), 11);
}

#[test]
fn paper_style_stack_param_gradients() {
    // A miniature version of the paper's two-stage architecture.
    let mut net = Network::new();
    net.push(Conv2d::new(3, 4, 3, 1, 20));
    net.push(Conv2d::new(4, 4, 3, 1, 21));
    net.push(Relu::new());
    net.push(MaxPool2::new());
    net.push(Conv2d::new(4, 6, 3, 1, 22));
    net.push(Relu::new());
    net.push(MaxPool2::new());
    net.push(Flatten::new());
    net.push(Dense::new(6 * 2 * 2, 10, 23));
    net.push(Relu::new());
    net.push(Dense::new(10, 2, 24));
    check_param_gradients(net, random_input(vec![3, 8, 8], 14), 37);
}

#[test]
fn input_gradients_through_conv_pool() {
    let mut net = Network::new();
    net.push(Conv2d::new(2, 3, 3, 1, 30));
    net.push(Relu::new());
    net.push(MaxPool2::new());
    net.push(Flatten::new());
    net.push(Dense::new(3 * 3 * 3, 2, 31));
    check_input_gradient(net, random_input(vec![2, 6, 6], 15));
}

#[test]
fn sigmoid_network_param_gradients() {
    let mut net = Network::new();
    net.push(Dense::new(5, 8, 50));
    net.push(Sigmoid::new());
    net.push(Dense::new(8, 2, 51));
    check_param_gradients(net, random_input(vec![5], 20), 3);
}

#[test]
fn tanh_network_param_gradients() {
    let mut net = Network::new();
    net.push(Dense::new(5, 8, 52));
    net.push(Tanh::new());
    net.push(Dense::new(8, 2, 53));
    check_param_gradients(net, random_input(vec![5], 21), 3);
}

#[test]
fn avgpool_network_param_gradients() {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 4, 3, 1, 54));
    net.push(Relu::new());
    net.push(AvgPool2::new());
    net.push(Flatten::new());
    net.push(Dense::new(4 * 3 * 3, 2, 55));
    check_param_gradients(net, random_input(vec![1, 6, 6], 22), 11);
}

#[test]
fn conv_nonsquare_input_param_gradients() {
    // The im2col/GEMM path must stay correct when height ≠ width (row
    // and column strides differ, which is where index bugs hide).
    let mut net = Network::new();
    net.push(Conv2d::new(2, 3, 3, 1, 60));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(3 * 5 * 8, 2, 61));
    check_param_gradients(net, random_input(vec![2, 5, 8], 23), 13);
}

#[test]
fn conv_wide_kernel_param_gradients() {
    // 5×5 kernel with pad 2 exercises multi-row im2col overlap.
    let mut net = Network::new();
    net.push(Conv2d::new(1, 2, 5, 2, 62));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(2 * 7 * 7, 2, 63));
    check_param_gradients(net, random_input(vec![1, 7, 7], 24), 9);
}

#[test]
fn conv_valid_nonsquare_input_gradients() {
    // Valid (pad 0) convolution on a non-square image: the input
    // gradient exercises col2im's partial-coverage border cells.
    let mut net = Network::new();
    net.push(Conv2d::new(2, 2, 3, 0, 64));
    net.push(Relu::new());
    net.push(Flatten::new());
    net.push(Dense::new(2 * 4 * 6, 2, 65));
    check_input_gradient(net, random_input(vec![2, 6, 8], 25));
}

#[test]
fn input_gradients_through_dense_stack() {
    let mut net = Network::new();
    net.push(Dense::new(12, 9, 40));
    net.push(Relu::new());
    net.push(Dense::new(9, 2, 41));
    check_input_gradient(net, random_input(vec![12], 16));
}
