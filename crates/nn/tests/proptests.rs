//! Property-based tests for the neural-network substrate.

use hotspot_nn::engine::{Executor, Workspace};
use hotspot_nn::layers::{Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2, Relu, Sigmoid, Tanh};
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::{gemm, loss, Network, Parallelism, Tensor};
use proptest::prelude::*;

fn arb_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

/// f64 triple-loop C += A·B reference the blocked kernels are judged
/// against. `at(p, i)` maps the storage of A for the given transpose
/// flavour; likewise `bt` for B.
fn matmul_ref(
    (m, n, k): (usize, usize, usize),
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    at: impl Fn(usize, usize) -> usize,
    bt: impl Fn(usize, usize) -> usize,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[at(p, i)] as f64 * b[bt(p, j)] as f64;
            }
            c[i * n + j] += acc as f32;
        }
    }
}

fn assert_close(fast: &[f32], reference: &[f32], k: usize) {
    // Error grows with the reduction length; scale the bound by k.
    let tol = 1e-5 * (k as f32).max(1.0);
    for (i, (x, y)) in fast.iter().zip(reference).enumerate() {
        assert!(
            (x - y).abs() <= tol * (1.0 + y.abs()),
            "element {i}: {x} vs {y} (k = {k})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_is_a_probability_vector(v in (1usize..8).prop_flat_map(arb_vec)) {
        let p = loss::softmax(&v);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // Order-preserving.
        for i in 0..v.len() {
            for j in 0..v.len() {
                if v[i] > v[j] {
                    prop_assert!(p[i] >= p[j]);
                }
            }
        }
    }

    #[test]
    fn cross_entropy_gradient_sums_to_zero(
        logits in arb_vec(2),
        t in 0.0f32..1.0,
    ) {
        // Σ_i (p_i - t_i) = 1 - 1 = 0 for probability-vector targets.
        let target = [1.0 - t, t];
        let (_, grad) = loss::softmax_cross_entropy(
            &Tensor::from_vec(vec![2], logits), &target);
        let s: f32 = grad.as_slice().iter().sum();
        prop_assert!(s.abs() < 1e-5);
    }

    #[test]
    fn loss_is_nonnegative_and_minimal_at_target(t in 0.05f32..0.95) {
        let target = [1.0 - t, t];
        // Logits matching log target exactly minimise CE at the target's
        // entropy.
        let logits = Tensor::from_vec(vec![2], vec![(1.0 - t).ln(), t.ln()]);
        let (l_opt, grad) = loss::softmax_cross_entropy(&logits, &target);
        prop_assert!(l_opt >= 0.0);
        prop_assert!(grad.abs_max() < 1e-5);
        let (l_other, _) = loss::softmax_cross_entropy(
            &Tensor::from_vec(vec![2], vec![2.0, -2.0]), &target);
        prop_assert!(l_other + 1e-6 >= l_opt);
    }

    #[test]
    fn relu_is_idempotent(v in (1usize..40).prop_flat_map(arb_vec)) {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![v.len()], v);
        let once = relu.forward(&x, true);
        let twice = relu.forward(&once, true);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn maxpool_output_bounded_by_input(
        v in arb_vec(4 * 6 * 6)
    ) {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![4, 6, 6], v.clone());
        let y = pool.forward(&x, true);
        let in_max = v.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let in_min = v.iter().copied().fold(f32::INFINITY, f32::min);
        for &o in y.as_slice() {
            prop_assert!(o <= in_max && o >= in_min);
        }
    }

    #[test]
    fn conv_is_linear_in_input(v in arb_vec(2 * 5 * 5), scale in 0.1f32..3.0) {
        let mut conv = Conv2d::new(2, 3, 3, 1, 77);
        // Zero the bias so the map is linear, not affine.
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            if call == 1 {
                w.iter_mut().for_each(|b| *b = 0.0);
            }
            call += 1;
        });
        let x = Tensor::from_vec(vec![2, 5, 5], v.clone());
        let sx = Tensor::from_vec(vec![2, 5, 5], v.iter().map(|&a| a * scale).collect());
        let y = conv.forward(&x, false);
        let sy = conv.forward(&sx, false);
        for (a, b) in y.as_slice().iter().zip(sy.as_slice().iter()) {
            prop_assert!((a * scale - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn flatten_preserves_every_element(v in arb_vec(3 * 4 * 2)) {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![3, 4, 2], v.clone());
        let y = f.forward(&x, true);
        prop_assert_eq!(y.as_slice(), &v[..]);
    }

    #[test]
    fn parameter_blob_roundtrip_is_exact(seed in 0u64..1000) {
        let mut net = Network::new();
        net.push(Dense::new(5, 7, seed));
        net.push(Relu::new());
        net.push(Dense::new(7, 2, seed + 1));
        let blob = ParameterBlob::from_network(&mut net);
        let mut other = Network::new();
        other.push(Dense::new(5, 7, seed + 2));
        other.push(Relu::new());
        other.push(Dense::new(7, 2, seed + 3));
        blob.load_into(&mut other).expect("same architecture");
        let reread = ParameterBlob::from_network(&mut other);
        prop_assert_eq!(blob.as_slice(), reread.as_slice());
    }

    #[test]
    fn gemm_kernels_match_reference_on_random_shapes(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..300,
        seed in 0u64..1_000_000,
    ) {
        // Sizes straddle the KC = 256 k-block boundary and the 4-row /
        // 2×2-tile unroll remainders of all three kernels.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| next()).collect();

        // gemm_nn: A is m×k, B is k×n.
        let mut fast = c0.clone();
        gemm::gemm_nn(m, n, k, &a, &b, &mut fast);
        let mut reference = c0.clone();
        matmul_ref((m, n, k), &a, &b, &mut reference,
            |p, i| i * k + p, |p, j| p * n + j);
        assert_close(&fast, &reference, k);

        // gemm_nt: B is stored n×k (column-major B).
        let bt: Vec<f32> = (0..n * k).map(|_| next()).collect();
        let mut fast = c0.clone();
        gemm::gemm_nt(m, n, k, &a, &bt, &mut fast);
        let mut reference = c0.clone();
        matmul_ref((m, n, k), &a, &bt, &mut reference,
            |p, i| i * k + p, |p, j| j * k + p);
        assert_close(&fast, &reference, k);

        // gemm_tn: A is stored k×m.
        let at: Vec<f32> = (0..k * m).map(|_| next()).collect();
        let mut fast = c0.clone();
        gemm::gemm_tn(m, n, k, &at, &b, &mut fast);
        let mut reference = c0;
        matmul_ref((m, n, k), &at, &b, &mut reference,
            |p, i| p * m + i, |p, j| p * n + j);
        assert_close(&fast, &reference, k);
    }

    #[test]
    fn dispatched_kernels_stay_within_ulp_envelope_of_scalar_oracle(
        m in 1usize..24,
        n in 1usize..40,
        k in 1usize..70,
        batch in 1usize..10,
        seed in 0u64..1_000_000,
    ) {
        // The SIMD backends reassociate the k-reduction (16-lane FMA trees
        // vs the oracle's serial loop), so outputs need not be bit-equal —
        // but they must land inside the repo's ULP envelope. `n` up to 40
        // and `k` up to 70 straddle the 16- and 32-lane chunk boundaries,
        // so masked n/k tails and full-vector bodies are both exercised.
        // On the scalar backend the dispatch table routes to the oracle
        // itself and the comparison degenerates to bit-equality.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let a: Vec<f32> = (0..m * k).map(|_| next()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| next()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| next()).collect();
        let at: Vec<f32> = (0..k * m).map(|_| next()).collect();
        let c0: Vec<f32> = (0..m * n).map(|_| next()).collect();

        let mut fast = c0.clone();
        gemm::gemm_nn(m, n, k, &a, &b, &mut fast);
        let mut oracle = c0.clone();
        gemm::scalar::gemm_nn(m, n, k, &a, &b, &mut oracle);
        hotspot_nn::ulp::assert_ulp_close(&fast, &oracle, 128, 1e-4);

        let mut fast = c0.clone();
        gemm::gemm_nt(m, n, k, &a, &bt, &mut fast);
        let mut oracle = c0.clone();
        gemm::scalar::gemm_nt(m, n, k, &a, &bt, &mut oracle);
        hotspot_nn::ulp::assert_ulp_close(&fast, &oracle, 128, 1e-4);

        let mut fast = c0.clone();
        gemm::gemm_tn(m, n, k, &at, &b, &mut fast);
        let mut oracle = c0;
        gemm::scalar::gemm_tn(m, n, k, &at, &b, &mut oracle);
        hotspot_nn::ulp::assert_ulp_close(&fast, &oracle, 128, 1e-4);

        // Batched NT (the dense-layer block kernel): ULP-close to the
        // scalar oracle, and bit-identical to scoring the same samples
        // one at a time through the dispatched per-window path — the
        // contract the engine's batched pins rest on.
        let xs: Vec<f32> = (0..batch * k).map(|_| next()).collect();
        let cb0: Vec<f32> = (0..batch * m).map(|_| next()).collect();
        let mut fast = cb0.clone();
        gemm::gemm_nt_batched(m, batch, k, &a, &xs, &mut fast);
        let mut oracle = cb0.clone();
        gemm::scalar::gemm_nt_batched(m, batch, k, &a, &xs, &mut oracle);
        hotspot_nn::ulp::assert_ulp_close(&fast, &oracle, 128, 1e-4);

        let mut per_sample = cb0;
        for (s, cs) in per_sample.chunks_exact_mut(m).enumerate() {
            gemm::gemm_nt(m, 1, k, &a, &xs[s * k..(s + 1) * k], cs);
        }
        for (i, (x, y)) in fast.iter().zip(&per_sample).enumerate() {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "batched vs per-sample bit mismatch at {} ({} vs {})", i, x, y
            );
        }
    }

    #[test]
    fn planned_execution_is_bit_identical_to_allocating_path(
        channels in 1usize..3,
        hw in 4usize..9,
        maps in 1usize..4,
        windows in 1usize..8,
        block in 1usize..9,
        workers in 1usize..5,
        act in 0usize..3,
        seed in 0u64..1_000,
    ) {
        // The cross-path contract: for random architectures, input
        // shapes, window counts and batch-block sizes (including B = 1,
        // B = window_count, and ragged final blocks where
        // windows % block != 0), three scoring paths produce bit-for-bit
        // identical outputs:
        //   1. the historical allocating forward (`forward_inference`),
        //   2. the per-window shape-planned arena path (`Executor::infer`),
        //   3. the batched planned path (`plan_batch` +
        //      `forward_batch_with`), which runs one GEMM per layer over a
        //      whole block of windows.
        // Also pinned: training mode (same dropout RNG stream) and the
        // chunked `forward_batch` API across worker counts.
        let build = || {
            let mut net = Network::new();
            net.push(Conv2d::new(channels, maps, 3, 1, seed));
            net.push(Relu::new());
            net.push(MaxPool2::new());
            net.push(Flatten::new());
            let flat = maps * (hw / 2) * (hw / 2);
            net.push(Dense::new(flat, 6, seed + 1));
            match act {
                0 => net.push(Relu::new()),
                1 => net.push(Sigmoid::new()),
                _ => net.push(Tanh::new()),
            }
            net.push(Dropout::new(0.3, seed + 2));
            net.push(Dense::new(6, 2, seed + 3));
            net
        };

        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(11);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        };
        let in_shape = vec![channels, hw, hw];
        let in_len = channels * hw * hw;
        let inputs: Vec<Tensor> = (0..windows)
            .map(|_| {
                let v: Vec<f32> = (0..in_len).map(|_| next()).collect();
                Tensor::from_vec(in_shape.clone(), v)
            })
            .collect();

        // Path 1: the allocating forward is the reference.
        let net = build();
        let legacy: Vec<Vec<f32>> = inputs
            .iter()
            .map(|x| net.forward_inference(x).as_slice().to_vec())
            .collect();

        // Path 2: per-window planned execution (fused epilogues).
        let mut ex = Executor::new();
        for (x, want) in inputs.iter().zip(&legacy) {
            prop_assert_eq!(ex.infer(&net, x), &want[..]);
        }

        // Path 3: batched planned execution. Exercise the drawn block
        // size (often ragged: windows % block != 0), plus the two
        // boundary blocks B = 1 and B = window_count.
        let out_len = legacy[0].len();
        for b in [block, 1, windows] {
            let mut ws = Workspace::new();
            let mut got: Vec<f32> = Vec::with_capacity(windows * out_len);
            let mut plans = std::collections::HashMap::new();
            for chunk in inputs.chunks(b) {
                let plan = plans
                    .entry(chunk.len())
                    .or_insert_with(|| net.plan_batch(&in_shape, chunk.len()));
                let mut flat = Vec::with_capacity(chunk.len() * in_len);
                for x in chunk {
                    flat.extend_from_slice(x.as_slice());
                }
                got.extend_from_slice(net.forward_batch_with(plan, &mut ws, &flat));
            }
            for (w, want) in legacy.iter().enumerate() {
                prop_assert_eq!(
                    &got[w * out_len..(w + 1) * out_len],
                    &want[..],
                    "batched block size {} diverged at window {}", b, w
                );
            }
        }

        // Chunked batch API across worker counts, bit-identical to serial.
        let batched = net.forward_batch(&inputs, Parallelism::fixed(workers).unwrap());
        for (got, want) in batched.iter().zip(&legacy) {
            prop_assert_eq!(got.as_slice(), &want[..]);
        }

        // Training mode: identical dropout stream, identical activations.
        let mut legacy_net = build();
        let mut planned_net = build();
        let mut ex = Executor::new();
        for x in &inputs {
            let want = legacy_net.forward(x, true);
            let got = ex.forward_train(&mut planned_net, x).to_vec();
            prop_assert_eq!(&got[..], want.as_slice());
        }
    }

    #[test]
    fn gradient_step_direction_reduces_loss(
        v in arb_vec(6),
        t in prop_oneof![Just([1.0f32, 0.0]), Just([0.0f32, 1.0])],
    ) {
        // One small step along the negative gradient must not increase the
        // loss (first-order guarantee at small lr).
        let mut net = Network::new();
        net.push(Dense::new(6, 8, 9));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, 10));
        let x = Tensor::from_vec(vec![6], v);
        let (l0, g) = loss::softmax_cross_entropy(&net.forward(&x, false), &t);
        net.zero_grads();
        let _ = net.forward(&x, false);
        net.backward(&g);
        net.apply_gradients(1e-3);
        let (l1, _) = loss::softmax_cross_entropy(&net.forward(&x, false), &t);
        prop_assert!(l1 <= l0 + 1e-5, "loss increased: {l0} -> {l1}");
    }
}
