//! f32 matrix-multiply kernels behind a runtime-dispatched backend table.
//!
//! These kernels carry all dense linear algebra in the crate: the im2col
//! convolution ([`crate::layers::Conv2d`]) and the fully-connected layer
//! ([`crate::layers::Dense`]) both lower their forward and backward passes
//! onto them.
//!
//! All kernels **accumulate** (`C += …`) so layers can seed `C` with the
//! bias or chain into existing gradient buffers, and all operate on plain
//! row-major `&[f32]` slices:
//!
//! * [`gemm_nn`] — `C[m×n] += A[m×k] · B[k×n]`. The hot conv-forward shape.
//! * [`gemm_nt`] — `C[m×n] += A[m×k] · Bᵀ` with `B` stored `n×k`
//!   row-major, so each output element is a dot product of two contiguous
//!   rows.
//! * [`gemm_tn`] — `C[m×n] += Aᵀ · B` with `A` stored `k×m` row-major;
//!   used for backpropagating through a row-major weight matrix without
//!   materialising its transpose.
//! * [`gemm_nt_batched`] — batched matrix-vector products against one
//!   shared weight matrix (batched dense forward).
//!
//! # Kernel dispatch
//!
//! Each public entry point validates its arguments, then jumps through a
//! process-wide [`KernelTable`] resolved **once** (on first GEMM call) by
//! [`kernel_backend`]:
//!
//! * [`KernelBackend::Avx512`] — 8×32 register-tiled FMA micro-kernel on
//!   512-bit lanes, with masked loads/stores for ragged `n` tails.
//!   Selected when the CPU reports `avx512f`.
//! * [`KernelBackend::Avx2`] — 4×16 register-tiled FMA micro-kernel on
//!   256-bit lanes. Selected when the CPU reports `avx2` + `fma` but not
//!   `avx512f`.
//! * [`KernelBackend::Scalar`] — the portable kernels in [`scalar`],
//!   kept verbatim from the pre-SIMD releases. Always compiled, always
//!   available, and the **bit-identity oracle** the SIMD backends are
//!   tested against.
//!
//! The `HOTSPOT_SIMD` environment variable overrides detection: `scalar`
//! forces the oracle (bit-identical to historical releases), `avx2` /
//! `avx512` force a specific SIMD tier (panicking if the CPU lacks it),
//! and `auto` (or unset) picks the best available tier.
//!
//! # Determinism and the ULP envelope
//!
//! For a **fixed backend** and fixed operand shapes each output element is
//! computed by a fixed sequence of floating-point operations, independent
//! of threading or call history — repeated calls are bit-identical, which
//! the batch-inference contract of [`crate::Network::forward_batch`]
//! relies on. Across backends the *sequence* differs (SIMD kernels
//! accumulate in vector lanes and contract multiplies into FMAs), so SIMD
//! results are only guaranteed to match the scalar oracle within a bounded
//! ULP envelope — see [`crate::ulp`] for the comparison helpers and the
//! proptests in `tests/proptests.rs` for the enforced bound.
//!
//! `gemm_tn` is backward-only (it never runs in the scan hot path) and
//! intentionally stays scalar on every backend, keeping training-gradient
//! bit-identity pins valid regardless of dispatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide count of GEMM kernel invocations (all four kernels).
///
/// Benchmarks read deltas of this counter to report *GEMM calls per
/// window* — the quantity the batched scoring path shrinks, since one
/// batched call replaces B per-window calls while streaming each weight
/// matrix once. A relaxed increment per kernel call costs nanoseconds
/// against kernels that move kilobytes, so the counter stays on
/// unconditionally.
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Total GEMM kernel calls since process start (monotone; read deltas).
pub fn gemm_call_count() -> u64 {
    GEMM_CALLS.load(Ordering::Relaxed)
}

#[inline]
fn count_call() {
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Which kernel implementation the dispatch table selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable scalar kernels — the bit-identity oracle.
    Scalar,
    /// 256-bit AVX2 + FMA micro-kernels.
    Avx2,
    /// 512-bit AVX-512F micro-kernels.
    Avx512,
}

impl KernelBackend {
    /// Stable lower-case name for logs and benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Avx512 => "avx512",
        }
    }

    /// Whether this backend uses explicit SIMD kernels.
    pub fn is_simd(self) -> bool {
        !matches!(self, KernelBackend::Scalar)
    }
}

/// What a `HOTSPOT_SIMD` value asks for.
///
/// # Panics
///
/// Panics on an unrecognised value: a typo silently falling back to a
/// different backend would invalidate whichever identity pin the caller
/// was trying to exercise.
fn parse_override(raw: &str) -> Option<KernelBackend> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => None,
        "scalar" => Some(KernelBackend::Scalar),
        "avx2" => Some(KernelBackend::Avx2),
        "avx512" => Some(KernelBackend::Avx512),
        other => panic!(
            "HOTSPOT_SIMD={other:?} is not recognised \
             (expected scalar, avx2, avx512, or auto)"
        ),
    }
}

#[cfg(target_arch = "x86_64")]
fn detect_backend() -> KernelBackend {
    if is_x86_feature_detected!("avx512f") {
        KernelBackend::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        KernelBackend::Avx2
    } else {
        KernelBackend::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_backend() -> KernelBackend {
    KernelBackend::Scalar
}

#[cfg(target_arch = "x86_64")]
fn backend_supported(backend: KernelBackend) -> bool {
    match backend {
        KernelBackend::Scalar => true,
        KernelBackend::Avx2 => is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"),
        KernelBackend::Avx512 => is_x86_feature_detected!("avx512f"),
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn backend_supported(backend: KernelBackend) -> bool {
    backend == KernelBackend::Scalar
}

fn resolve_backend() -> KernelBackend {
    let requested = std::env::var("HOTSPOT_SIMD")
        .ok()
        .and_then(|raw| parse_override(&raw));
    match requested {
        Some(backend) => {
            assert!(
                backend_supported(backend),
                "HOTSPOT_SIMD requested {} but this CPU does not support it",
                backend.name()
            );
            backend
        }
        None => detect_backend(),
    }
}

/// The backend every GEMM call in this process dispatches through,
/// resolved once from CPU feature detection and the `HOTSPOT_SIMD`
/// override (see the module docs).
pub fn kernel_backend() -> KernelBackend {
    static BACKEND: OnceLock<KernelBackend> = OnceLock::new();
    *BACKEND.get_or_init(resolve_backend)
}

/// The shared signature of every raw kernel: `(m, n, k, a, b, c)` (for
/// the batched kernel, `(m, batch, k, weights, samples, out)`).
type KernelFn = fn(usize, usize, usize, &[f32], &[f32], &mut [f32]);

/// One function pointer per kernel. All pointers share the scalar
/// signature; SIMD entries are safe shims that assume the table was built
/// only after runtime feature detection succeeded.
struct KernelTable {
    nn: KernelFn,
    nt: KernelFn,
    nt_batched: KernelFn,
}

static SCALAR_TABLE: KernelTable = KernelTable {
    nn: scalar::gemm_nn,
    nt: scalar::gemm_nt,
    nt_batched: scalar::gemm_nt_batched,
};

#[cfg(target_arch = "x86_64")]
static AVX2_TABLE: KernelTable = KernelTable {
    nn: avx2::gemm_nn_shim,
    nt: avx2::gemm_nt_shim,
    nt_batched: avx2::gemm_nt_batched_shim,
};

#[cfg(target_arch = "x86_64")]
static AVX512_TABLE: KernelTable = KernelTable {
    nn: avx512::gemm_nn_shim,
    nt: avx512::gemm_nt_shim,
    nt_batched: avx512::gemm_nt_batched_shim,
};

fn table() -> &'static KernelTable {
    #[cfg(target_arch = "x86_64")]
    {
        match kernel_backend() {
            KernelBackend::Scalar => &SCALAR_TABLE,
            KernelBackend::Avx2 => &AVX2_TABLE,
            KernelBackend::Avx512 => &AVX512_TABLE,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        &SCALAR_TABLE
    }
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nn: A must be m×k");
    assert_eq!(b.len(), k * n, "gemm_nn: B must be k×n");
    assert_eq!(c.len(), m * n, "gemm_nn: C must be m×n");
    count_call();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    (table().nn)(m, n, k, a, b, c);
}

/// `C[m×n] += A[m×k] · Bᵀ`, with `B` stored `n×k` row-major (i.e. a
/// column-major `k×n` matrix): `C[i][j] += Σ_p A[i][p] · B[j][p]`.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A must be m×k");
    assert_eq!(b.len(), n * k, "gemm_nt: B must be n×k (Bᵀ of k×n)");
    assert_eq!(c.len(), m * n, "gemm_nt: C must be m×n");
    count_call();
    if m == 0 || n == 0 {
        return;
    }
    (table().nt)(m, n, k, a, b, c);
}

/// `C[m×n] += Aᵀ · B`, with `A` stored `k×m` row-major and `B` stored
/// `k×n` row-major: `C[i][j] += Σ_p A[p][i] · B[p][j]`.
///
/// Backward-only; dispatches to the scalar kernel on every backend (see
/// the module docs).
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A must be k×m (Aᵀ of m×k)");
    assert_eq!(b.len(), k * n, "gemm_tn: B must be k×n");
    assert_eq!(c.len(), m * n, "gemm_tn: C must be m×n");
    count_call();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    scalar::gemm_tn(m, n, k, a, b, c);
}

/// Batched matrix-vector products against one shared weight matrix:
/// `C[j][i] += Σ_p A[i][p] · X[j][p]` for every sample `j`, with `A`
/// stored `m×k` row-major, `xs` holding `batch` sample-major vectors of
/// length `k`, and `c` holding `batch` sample-major outputs of length `m`.
///
/// This is `batch` independent [`gemm_nt`]`(m, 1, k, …)` calls, but with
/// the loop nest arranged so each weight row `A[i]` is streamed from
/// memory **once per block** instead of once per sample — the whole point
/// of batched scoring. On every backend each output element reduces with
/// the same dot kernel the per-sample `n = 1` path of [`gemm_nt`] uses, so
/// results are **bit-identical** to scoring samples one at a time on that
/// same backend.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`batch`/`k`
/// dimensions.
pub fn gemm_nt_batched(m: usize, batch: usize, k: usize, a: &[f32], xs: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt_batched: A must be m×k");
    assert_eq!(xs.len(), batch * k, "gemm_nt_batched: X must be batch×k");
    assert_eq!(c.len(), batch * m, "gemm_nt_batched: C must be batch×m");
    count_call();
    if m == 0 || batch == 0 {
        return;
    }
    (table().nt_batched)(m, batch, k, a, xs, c);
}

/// An element-wise activation fused into a GEMM call as an output
/// epilogue: it runs over the `C` tile immediately after the last
/// `k`-block has been accumulated, while the tile is still cache-hot,
/// instead of as a separate layer traversing a freshly allocated tensor.
///
/// Determinism contract: the epilogue is applied to each fully-accumulated
/// output element in index order, with exactly the same scalar expression
/// the standalone activation layers use — so a fused `conv → relu` pair is
/// bit-identical to the unfused two-layer sequence on any backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Epilogue {
    /// `max(x, 0)` — same predicate (`x > 0.0`) as [`crate::layers::Relu`].
    Relu,
    /// `1 / (1 + e^{-x})` — same expression as [`crate::layers::Sigmoid`].
    Sigmoid,
    /// `tanh(x)` — same expression as [`crate::layers::Tanh`].
    Tanh,
}

impl Epilogue {
    /// Applies the activation over `c` in place, in index order.
    #[inline]
    pub fn apply(self, c: &mut [f32]) {
        match self {
            Epilogue::Relu => {
                for v in c.iter_mut() {
                    *v = if *v > 0.0 { *v } else { 0.0 };
                }
            }
            Epilogue::Sigmoid => {
                for v in c.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Epilogue::Tanh => {
                for v in c.iter_mut() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Backward of the fused epilogue: rescales the incoming gradient `g`
    /// in place using the *post-activation* output `y` (all three
    /// activations admit a derivative expressed in their output alone).
    ///
    /// Matches the standalone layers bit-for-bit: `relu` keeps `g` where
    /// `y > 0` (equivalent to the pre-activation `x > 0` mask, since
    /// `y = x` exactly there), `sigmoid` uses `g·y·(1−y)`, `tanh` uses
    /// `g·(1−y²)`.
    #[inline]
    pub fn grad_from_output(self, y: &[f32], g: &mut [f32]) {
        assert_eq!(y.len(), g.len(), "epilogue grad length mismatch");
        match self {
            Epilogue::Relu => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    *gi = if yi > 0.0 { *gi } else { 0.0 };
                }
            }
            Epilogue::Sigmoid => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    // Same association as the standalone layer: (g·y)·(1−y).
                    *gi = *gi * yi * (1.0 - yi);
                }
            }
            Epilogue::Tanh => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    *gi *= 1.0 - yi * yi;
                }
            }
        }
    }
}

/// [`gemm_nn`] with an optional fused activation over the finished `C`
/// tile (conv forward epilogue).
pub fn gemm_nn_fused(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nn(m, n, k, a, b, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// [`gemm_nt`] with an optional fused activation over the finished `C`
/// tile (dense forward epilogue).
pub fn gemm_nt_fused(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nt(m, n, k, a, b, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// [`gemm_nt_batched`] with an optional fused activation over the
/// finished batch of outputs (batched dense forward epilogue). The
/// epilogue is element-wise, so applying it over the whole `batch×m`
/// block is bit-identical to applying it per sample.
pub fn gemm_nt_batched_fused(
    m: usize,
    batch: usize,
    k: usize,
    a: &[f32],
    xs: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nt_batched(m, batch, k, a, xs, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// Portable scalar kernels — the bit-identity oracle.
///
/// These are the pre-SIMD kernels, preserved verbatim: every accumulation
/// order (and therefore every output bit) matches the historical releases
/// the repo's golden pins were recorded against. The dispatch wrappers
/// route here on the `scalar` backend; tests and benches may also call
/// them directly to compare a SIMD backend against the oracle without
/// restarting the process.
///
/// Raw kernels: argument validation, call counting, and zero-dimension
/// early-outs live in the public wrappers.
pub mod scalar {
    /// Block size over the shared `k` dimension. 256 f32 rows of a
    /// 144-wide `B` panel is ≈144 KiB — small enough to stay L2-resident
    /// on anything this crate targets, and the paper's shapes (`k ≤ 288`)
    /// usually fit in a single block anyway.
    const KC: usize = 256;

    /// Scalar `C[m×n] += A[m×k] · B[k×n]`: row-oriented axpy form that
    /// streams rows of `B` against one scalar of `A` at a time, keeping
    /// the inner loop a contiguous fused multiply-add LLVM
    /// auto-vectorises against the baseline target.
    pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                let mut p = p0;
                // Four B rows per pass: one load of c_row amortises four
                // scalar-times-row updates. Iterator traversal keeps the
                // inner loop free of bounds checks so it auto-vectorises
                // cleanly; the accumulation expression (and therefore
                // every output bit) is unchanged.
                while p + 4 <= p1 {
                    let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                    let (b0, rest) = b[p * n..].split_at(n);
                    let (b1, rest) = rest.split_at(n);
                    let (b2, rest) = rest.split_at(n);
                    let b3 = &rest[..n];
                    for ((((cj, &b0j), &b1j), &b2j), &b3j) in
                        c_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                    {
                        *cj += a0 * b0j + a1 * b1j + a2 * b2j + a3 * b3j;
                    }
                    p += 4;
                }
                while p < p1 {
                    let av = a_row[p];
                    if av != 0.0 {
                        let b_row = &b[p * n..p * n + n];
                        for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                            *cj += av * bj;
                        }
                    }
                    p += 1;
                }
            }
            p0 = p1;
        }
    }

    /// Scalar `C[m×n] += A[m×k] · Bᵀ`: 2×2 register tile so each A row is
    /// read once for two B rows and vice versa, halving memory traffic
    /// versus independent dot products.
    pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut i = 0;
        while i + 2 <= m {
            let a0 = &a[i * k..(i + 1) * k];
            let a1 = &a[(i + 1) * k..(i + 2) * k];
            let mut j = 0;
            while j + 2 <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let (mut s00, mut s01, mut s10, mut s11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for (((&x0, &x1), &y0), &y1) in a0.iter().zip(a1).zip(b0).zip(b1) {
                    s00 += x0 * y0;
                    s01 += x0 * y1;
                    s10 += x1 * y0;
                    s11 += x1 * y1;
                }
                c[i * n + j] += s00;
                c[i * n + j + 1] += s01;
                c[(i + 1) * n + j] += s10;
                c[(i + 1) * n + j + 1] += s11;
                j += 2;
            }
            if j < n {
                let b0 = &b[j * k..(j + 1) * k];
                c[i * n + j] += dot(a0, b0);
                c[(i + 1) * n + j] += dot(a1, b0);
            }
            i += 2;
        }
        if i < m {
            let a0 = &a[i * k..(i + 1) * k];
            for j in 0..n {
                c[i * n + j] += dot(a0, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// Scalar `C[m×n] += Aᵀ · B`: axpy over the shared `k` dimension.
    pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        if n == 1 {
            // Matrix-transpose-vector fast path (`Dense` backward): one
            // axpy over a contiguous A row per reduction step.
            for p in 0..k {
                let s = b[p];
                if s != 0.0 {
                    let a_row = &a[p * m..(p + 1) * m];
                    for (ci, &av) in c.iter_mut().zip(a_row) {
                        *ci += av * s;
                    }
                }
            }
            return;
        }

        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            for p in p0..p1 {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for i in 0..m {
                    let av = a_row[i];
                    if av == 0.0 {
                        continue;
                    }
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += av * bj;
                    }
                }
            }
            p0 = p1;
        }
    }

    /// Scalar batched matrix-vector products; loop nest inverted so each
    /// weight row streams once per block. Reduces with [`dot`], matching
    /// the `n = 1` path of [`gemm_nt`] bit-for-bit.
    pub fn gemm_nt_batched(m: usize, batch: usize, k: usize, a: &[f32], xs: &[f32], c: &mut [f32]) {
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..batch {
                c[j * m + i] += dot(a_row, &xs[j * k..(j + 1) * k]);
            }
        }
    }

    /// Unrolled dot product with four independent accumulators.
    ///
    /// `chunks_exact` traversal keeps the loop body free of bounds checks;
    /// the accumulator layout (lane `i` sums elements `p ≡ i mod 4`,
    /// combined as `(s0+s1)+(s2+s3)`) is the historical order, so results
    /// stay bit-identical.
    #[inline]
    fn dot(x: &[f32], y: &[f32]) -> f32 {
        debug_assert_eq!(x.len(), y.len());
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut xc = x.chunks_exact(4);
        let mut yc = y.chunks_exact(4);
        for (xv, yv) in (&mut xc).zip(&mut yc) {
            s0 += xv[0] * yv[0];
            s1 += xv[1] * yv[1];
            s2 += xv[2] * yv[2];
            s3 += xv[3] * yv[3];
        }
        for (&xv, &yv) in xc.remainder().iter().zip(yc.remainder()) {
            s0 += xv * yv;
        }
        (s0 + s1) + (s2 + s3)
    }
}

/// AVX2 + FMA micro-kernels (256-bit lanes, 4×16 register tile).
///
/// Per output element the reduction runs over `k` in order, one FMA per
/// step — numerically tighter than the scalar kernel's split-accumulator
/// orders but not bit-identical to them; the ULP proptests bound the
/// divergence.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Safe shim: the dispatch table is only built after
    /// `is_x86_feature_detected!("avx2")` + `fma` succeeded.
    pub fn gemm_nn_shim(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        unsafe { gemm_nn(m, n, k, a, b, c) }
    }

    pub fn gemm_nt_shim(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        unsafe { gemm_nt(m, n, k, a, b, c) }
    }

    pub fn gemm_nt_batched_shim(
        m: usize,
        batch: usize,
        k: usize,
        a: &[f32],
        xs: &[f32],
        c: &mut [f32],
    ) {
        // C[j][i] += Σ_p A[i][p]·X[j][p] is exactly gemm_nt with the
        // sample block as the left operand: C[batch×m] = X[batch×k]·Aᵀ.
        unsafe { gemm_nt(batch, m, k, xs, a, c) }
    }

    /// 4 rows × 16 columns of `C` held in 8 YMM accumulators; B rows are
    /// loaded once per `k` step and shared across the 4 A broadcasts.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert!(a.len() == m * k && b.len() == k * n && c.len() == m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= m {
            let mut j = 0;
            while j + 16 <= n {
                let mut c00 = _mm256_loadu_ps(cp.add(i * n + j));
                let mut c01 = _mm256_loadu_ps(cp.add(i * n + j + 8));
                let mut c10 = _mm256_loadu_ps(cp.add((i + 1) * n + j));
                let mut c11 = _mm256_loadu_ps(cp.add((i + 1) * n + j + 8));
                let mut c20 = _mm256_loadu_ps(cp.add((i + 2) * n + j));
                let mut c21 = _mm256_loadu_ps(cp.add((i + 2) * n + j + 8));
                let mut c30 = _mm256_loadu_ps(cp.add((i + 3) * n + j));
                let mut c31 = _mm256_loadu_ps(cp.add((i + 3) * n + j + 8));
                for p in 0..k {
                    let b0 = _mm256_loadu_ps(bp.add(p * n + j));
                    let b1 = _mm256_loadu_ps(bp.add(p * n + j + 8));
                    let a0 = _mm256_set1_ps(*ap.add(i * k + p));
                    c00 = _mm256_fmadd_ps(a0, b0, c00);
                    c01 = _mm256_fmadd_ps(a0, b1, c01);
                    let a1 = _mm256_set1_ps(*ap.add((i + 1) * k + p));
                    c10 = _mm256_fmadd_ps(a1, b0, c10);
                    c11 = _mm256_fmadd_ps(a1, b1, c11);
                    let a2 = _mm256_set1_ps(*ap.add((i + 2) * k + p));
                    c20 = _mm256_fmadd_ps(a2, b0, c20);
                    c21 = _mm256_fmadd_ps(a2, b1, c21);
                    let a3 = _mm256_set1_ps(*ap.add((i + 3) * k + p));
                    c30 = _mm256_fmadd_ps(a3, b0, c30);
                    c31 = _mm256_fmadd_ps(a3, b1, c31);
                }
                _mm256_storeu_ps(cp.add(i * n + j), c00);
                _mm256_storeu_ps(cp.add(i * n + j + 8), c01);
                _mm256_storeu_ps(cp.add((i + 1) * n + j), c10);
                _mm256_storeu_ps(cp.add((i + 1) * n + j + 8), c11);
                _mm256_storeu_ps(cp.add((i + 2) * n + j), c20);
                _mm256_storeu_ps(cp.add((i + 2) * n + j + 8), c21);
                _mm256_storeu_ps(cp.add((i + 3) * n + j), c30);
                _mm256_storeu_ps(cp.add((i + 3) * n + j + 8), c31);
                j += 16;
            }
            while j < n {
                for r in 0..4 {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += *ap.add((i + r) * k + p) * *bp.add(p * n + j);
                    }
                    *cp.add((i + r) * n + j) += acc;
                }
                j += 1;
            }
            i += 4;
        }
        while i < m {
            let mut j = 0;
            while j + 8 <= n {
                let mut acc = _mm256_loadu_ps(cp.add(i * n + j));
                for p in 0..k {
                    let bv = _mm256_loadu_ps(bp.add(p * n + j));
                    acc = _mm256_fmadd_ps(_mm256_set1_ps(*ap.add(i * k + p)), bv, acc);
                }
                _mm256_storeu_ps(cp.add(i * n + j), acc);
                j += 8;
            }
            while j < n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += *ap.add(i * k + p) * *bp.add(p * n + j);
                }
                *cp.add(i * n + j) += acc;
                j += 1;
            }
            i += 1;
        }
    }

    /// Vector dot with two independent YMM accumulators; the horizontal
    /// reduction order is fixed, so the kernel is deterministic.
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot(x: *const f32, y: *const f32, k: usize) -> f32 {
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut p = 0;
        while p + 16 <= k {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x.add(p)), _mm256_loadu_ps(y.add(p)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(x.add(p + 8)),
                _mm256_loadu_ps(y.add(p + 8)),
                acc1,
            );
            p += 16;
        }
        if p + 8 <= k {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(x.add(p)), _mm256_loadu_ps(y.add(p)), acc0);
            p += 8;
        }
        let acc = _mm256_add_ps(acc0, acc1);
        let hi = _mm256_extractf128_ps(acc, 1);
        let lo = _mm256_castps256_ps128(acc);
        let q = _mm_add_ps(lo, hi);
        let q = _mm_add_ps(q, _mm_movehl_ps(q, q));
        let q = _mm_add_ss(q, _mm_shuffle_ps(q, q, 1));
        let mut s = _mm_cvtss_f32(q);
        while p < k {
            s += *x.add(p) * *y.add(p);
            p += 1;
        }
        s
    }

    #[target_feature(enable = "avx2,fma")]
    unsafe fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert!(a.len() == m * k && b.len() == n * k && c.len() == m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let a_row = ap.add(i * k);
            for j in 0..n {
                c[i * n + j] += dot(a_row, bp.add(j * k), k);
            }
        }
    }
}

/// AVX-512F micro-kernels (512-bit lanes, 8×32 register tile, masked
/// tails).
///
/// Same numeric contract as [`avx2`]: in-order `k` reduction with FMA per
/// lane, bounded-ULP against the scalar oracle.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use std::arch::x86_64::*;

    /// Safe shim: the dispatch table is only built after
    /// `is_x86_feature_detected!("avx512f")` succeeded.
    pub fn gemm_nn_shim(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        unsafe { gemm_nn(m, n, k, a, b, c) }
    }

    pub fn gemm_nt_shim(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        unsafe { gemm_nt(m, n, k, a, b, c) }
    }

    pub fn gemm_nt_batched_shim(
        m: usize,
        batch: usize,
        k: usize,
        a: &[f32],
        xs: &[f32],
        c: &mut [f32],
    ) {
        unsafe { gemm_nt_batched(m, batch, k, a, xs, c) }
    }

    /// Batched matrix-vector products with the weight-row loads shared
    /// across a block of four samples.
    ///
    /// The naive mapping (`gemm_nt` with the sample block as the left
    /// operand) re-streams the entire `m×k` weight matrix from cache once
    /// per sample; for the paper network's fc1 (250×288 ≈ 288 KiB) that
    /// read traffic dominates the dense layers. Here each weight chunk is
    /// loaded once and FMA'd against every sample in the block, cutting
    /// weight bandwidth by the block factor.
    ///
    /// Bit-compatibility: for each (sample, row) pair the FMA sequence —
    /// two independent accumulators fed by alternating 16-lane chunks, a
    /// masked remainder into the second accumulator, then
    /// `reduce_add(acc0 + acc1)` — is exactly the [`dot`] kernel's, so the
    /// result is bit-identical to per-sample `gemm_nt`, which the batched
    /// executor pins against the per-window path.
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_nt_batched(
        m: usize,
        batch: usize,
        k: usize,
        a: &[f32],
        xs: &[f32],
        c: &mut [f32],
    ) {
        debug_assert!(a.len() == m * k && xs.len() == batch * k && c.len() == batch * m);
        let ap = a.as_ptr();
        let xp = xs.as_ptr();
        let rem = k % 16;
        let rem_mask: u16 = if rem == 0 { 0 } else { (1u16 << rem) - 1 };
        let mut bb = 0;
        // Full blocks of four samples, manually unrolled: the eight
        // accumulators must be distinct locals — a runtime-indexed array
        // defeats LLVM's scalar replacement and spills them to the stack.
        while bb + 4 <= batch {
            let x0 = xp.add(bb * k);
            let x1 = xp.add((bb + 1) * k);
            let x2 = xp.add((bb + 2) * k);
            let x3 = xp.add((bb + 3) * k);
            for j in 0..m {
                let w_row = ap.add(j * k);
                let mut a00 = _mm512_setzero_ps();
                let mut a01 = _mm512_setzero_ps();
                let mut a02 = _mm512_setzero_ps();
                let mut a03 = _mm512_setzero_ps();
                let mut a10 = _mm512_setzero_ps();
                let mut a11 = _mm512_setzero_ps();
                let mut a12 = _mm512_setzero_ps();
                let mut a13 = _mm512_setzero_ps();
                let mut p = 0;
                while p + 32 <= k {
                    let w0 = _mm512_loadu_ps(w_row.add(p));
                    let w1 = _mm512_loadu_ps(w_row.add(p + 16));
                    a00 = _mm512_fmadd_ps(_mm512_loadu_ps(x0.add(p)), w0, a00);
                    a10 = _mm512_fmadd_ps(_mm512_loadu_ps(x0.add(p + 16)), w1, a10);
                    a01 = _mm512_fmadd_ps(_mm512_loadu_ps(x1.add(p)), w0, a01);
                    a11 = _mm512_fmadd_ps(_mm512_loadu_ps(x1.add(p + 16)), w1, a11);
                    a02 = _mm512_fmadd_ps(_mm512_loadu_ps(x2.add(p)), w0, a02);
                    a12 = _mm512_fmadd_ps(_mm512_loadu_ps(x2.add(p + 16)), w1, a12);
                    a03 = _mm512_fmadd_ps(_mm512_loadu_ps(x3.add(p)), w0, a03);
                    a13 = _mm512_fmadd_ps(_mm512_loadu_ps(x3.add(p + 16)), w1, a13);
                    p += 32;
                }
                if p + 16 <= k {
                    let w0 = _mm512_loadu_ps(w_row.add(p));
                    a00 = _mm512_fmadd_ps(_mm512_loadu_ps(x0.add(p)), w0, a00);
                    a01 = _mm512_fmadd_ps(_mm512_loadu_ps(x1.add(p)), w0, a01);
                    a02 = _mm512_fmadd_ps(_mm512_loadu_ps(x2.add(p)), w0, a02);
                    a03 = _mm512_fmadd_ps(_mm512_loadu_ps(x3.add(p)), w0, a03);
                    p += 16;
                }
                if p < k {
                    let w0 = _mm512_maskz_loadu_ps(rem_mask, w_row.add(p));
                    a10 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(rem_mask, x0.add(p)), w0, a10);
                    a11 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(rem_mask, x1.add(p)), w0, a11);
                    a12 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(rem_mask, x2.add(p)), w0, a12);
                    a13 = _mm512_fmadd_ps(_mm512_maskz_loadu_ps(rem_mask, x3.add(p)), w0, a13);
                }
                c[bb * m + j] += _mm512_reduce_add_ps(_mm512_add_ps(a00, a10));
                c[(bb + 1) * m + j] += _mm512_reduce_add_ps(_mm512_add_ps(a01, a11));
                c[(bb + 2) * m + j] += _mm512_reduce_add_ps(_mm512_add_ps(a02, a12));
                c[(bb + 3) * m + j] += _mm512_reduce_add_ps(_mm512_add_ps(a03, a13));
            }
            bb += 4;
        }
        // Ragged sample tail: plain per-sample dots (same kernel the
        // per-window path uses, so bits still match).
        while bb < batch {
            let x_row = xp.add(bb * k);
            for j in 0..m {
                c[bb * m + j] += dot(x_row, ap.add(j * k), k);
            }
            bb += 1;
        }
    }

    /// 8 rows × 32 columns of `C` held in 16 ZMM accumulators; ragged `n`
    /// tails fall back to a masked 16-wide column strip, ragged `m` tails
    /// to a single-row masked loop.
    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert!(a.len() == m * k && b.len() == k * n && c.len() == m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let cp = c.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= m {
            let mut j = 0;
            while j + 32 <= n {
                let mut acc = [[_mm512_setzero_ps(); 2]; 8];
                for (r, row) in acc.iter_mut().enumerate() {
                    row[0] = _mm512_loadu_ps(cp.add((i + r) * n + j));
                    row[1] = _mm512_loadu_ps(cp.add((i + r) * n + j + 16));
                }
                for p in 0..k {
                    let b0 = _mm512_loadu_ps(bp.add(p * n + j));
                    let b1 = _mm512_loadu_ps(bp.add(p * n + j + 16));
                    for (r, row) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                        row[0] = _mm512_fmadd_ps(av, b0, row[0]);
                        row[1] = _mm512_fmadd_ps(av, b1, row[1]);
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    _mm512_storeu_ps(cp.add((i + r) * n + j), row[0]);
                    _mm512_storeu_ps(cp.add((i + r) * n + j + 16), row[1]);
                }
                j += 32;
            }
            while j < n {
                let rem = (n - j).min(16);
                let mask: u16 = if rem == 16 { !0 } else { (1u16 << rem) - 1 };
                let mut acc = [_mm512_setzero_ps(); 8];
                for (r, accr) in acc.iter_mut().enumerate() {
                    *accr = _mm512_maskz_loadu_ps(mask, cp.add((i + r) * n + j));
                }
                for p in 0..k {
                    let b0 = _mm512_maskz_loadu_ps(mask, bp.add(p * n + j));
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                        *accr = _mm512_fmadd_ps(av, b0, *accr);
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    _mm512_mask_storeu_ps(cp.add((i + r) * n + j), mask, *accr);
                }
                j += rem;
            }
            i += 8;
        }
        while i < m {
            let mut j = 0;
            while j < n {
                let rem = (n - j).min(16);
                let mask: u16 = if rem == 16 { !0 } else { (1u16 << rem) - 1 };
                let mut acc = _mm512_maskz_loadu_ps(mask, cp.add(i * n + j));
                for p in 0..k {
                    let b0 = _mm512_maskz_loadu_ps(mask, bp.add(p * n + j));
                    let av = _mm512_set1_ps(*ap.add(i * k + p));
                    acc = _mm512_fmadd_ps(av, b0, acc);
                }
                _mm512_mask_storeu_ps(cp.add(i * n + j), mask, acc);
                j += rem;
            }
            i += 1;
        }
    }

    /// Vector dot with two independent ZMM accumulators and a masked
    /// remainder; `_mm512_reduce_add_ps` has a fixed reduction tree, so
    /// the kernel is deterministic.
    #[target_feature(enable = "avx512f")]
    unsafe fn dot(x: *const f32, y: *const f32, k: usize) -> f32 {
        let mut acc0 = _mm512_setzero_ps();
        let mut acc1 = _mm512_setzero_ps();
        let mut p = 0;
        while p + 32 <= k {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(x.add(p)), _mm512_loadu_ps(y.add(p)), acc0);
            acc1 = _mm512_fmadd_ps(
                _mm512_loadu_ps(x.add(p + 16)),
                _mm512_loadu_ps(y.add(p + 16)),
                acc1,
            );
            p += 32;
        }
        if p + 16 <= k {
            acc0 = _mm512_fmadd_ps(_mm512_loadu_ps(x.add(p)), _mm512_loadu_ps(y.add(p)), acc0);
            p += 16;
        }
        if p < k {
            let rem = k - p;
            let mask: u16 = (1u16 << rem) - 1;
            acc1 = _mm512_fmadd_ps(
                _mm512_maskz_loadu_ps(mask, x.add(p)),
                _mm512_maskz_loadu_ps(mask, y.add(p)),
                acc1,
            );
        }
        _mm512_reduce_add_ps(_mm512_add_ps(acc0, acc1))
    }

    #[target_feature(enable = "avx512f")]
    unsafe fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        debug_assert!(a.len() == m * k && b.len() == n * k && c.len() == m * n);
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        for i in 0..m {
            let a_row = ap.add(i * k);
            for j in 0..n {
                c[i * n + j] += dot(a_row, bp.add(j * k), k);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp::assert_ulp_close;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    /// Reference triple loop: `C += op(A) · op(B)` with explicit index
    /// functions.
    fn reference(
        (m, n, k): (usize, usize, usize),
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        a_at: impl Fn(&[f32], usize, usize) -> f32,
        b_at: impl Fn(&[f32], usize, usize) -> f32,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a_at(a, i, p) as f64 * b_at(b, p, j) as f64;
                }
                c[i * n + j] += acc as f32;
            }
        }
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                "element {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn nn_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Includes k spanning multiple KC blocks and non-multiple-of-4
        // remainders in every dimension.
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (32, 144, 288), (2, 9, 600), (5, 1, 4)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_nn(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[i * k + p],
                |b, p, j| b[p * n + j],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn nt_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, n, k) in &[(1, 1, 1), (2, 2, 8), (3, 5, 7), (32, 144, 144), (7, 3, 600)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, n * k);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_nt(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[i * k + p],
                |b, p, j| b[j * k + p],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn tn_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n, k) in &[(1, 1, 1), (4, 1, 9), (144, 144, 32), (5, 7, 3), (3, 4, 600)] {
            let a = random_matrix(&mut rng, k * m);
            let b = random_matrix(&mut rng, k * n);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_tn(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[p * m + i],
                |b, p, j| b[p * n + j],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // 2×2 identity
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [100.0f32; 4];
        gemm_nn(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn repeated_calls_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, n, k) = (9, 13, 300);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let run = |f: &dyn Fn(&mut [f32])| {
            let mut c = vec![0.0f32; m * n];
            f(&mut c);
            c
        };
        let nn = |c: &mut [f32]| gemm_nn(m, n, k, &a, &b, c);
        assert_eq!(run(&nn), run(&nn));
        let a2 = random_matrix(&mut rng, n * k);
        let nt = |c: &mut [f32]| gemm_nt(m, n, k, &a, &a2, c);
        assert_eq!(run(&nt), run(&nt));
    }

    #[test]
    fn nt_batched_is_bit_identical_to_per_sample_nt() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, batch, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 2, 288),
            (250, 13, 288),
            (2, 64, 9),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let xs = random_matrix(&mut rng, batch * k);
            let seed = random_matrix(&mut rng, batch * m);
            let mut got = seed.clone();
            gemm_nt_batched(m, batch, k, &a, &xs, &mut got);
            let mut want = seed;
            for j in 0..batch {
                gemm_nt(
                    m,
                    1,
                    k,
                    &a,
                    &xs[j * k..(j + 1) * k],
                    &mut want[j * m..(j + 1) * m],
                );
            }
            assert_eq!(got, want, "m={m} batch={batch} k={k}");
        }
    }

    #[test]
    fn nt_batched_fused_matches_unfused_plus_epilogue() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, batch, k) = (5, 4, 11);
        let a = random_matrix(&mut rng, m * k);
        let xs = random_matrix(&mut rng, batch * k);
        for ep in [Epilogue::Relu, Epilogue::Sigmoid, Epilogue::Tanh] {
            let mut fused = vec![0.0f32; batch * m];
            gemm_nt_batched_fused(m, batch, k, &a, &xs, &mut fused, Some(ep));
            let mut plain = vec![0.0f32; batch * m];
            gemm_nt_batched(m, batch, k, &a, &xs, &mut plain);
            ep.apply(&mut plain);
            assert_eq!(fused, plain);
        }
    }

    #[test]
    fn gemm_call_counter_is_monotone() {
        let before = gemm_call_count();
        let mut c = [0.0f32; 1];
        gemm_nn(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_nt(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_tn(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_nt_batched(1, 1, 1, &[1.0], &[1.0], &mut c);
        // Other tests run concurrently, so assert a lower bound only.
        assert!(gemm_call_count() >= before + 4);
    }

    #[test]
    #[should_panic(expected = "gemm_nn: A must be m×k")]
    fn mismatched_dimensions_panic() {
        let mut c = [0.0f32; 4];
        gemm_nn(2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }

    #[test]
    fn zero_sized_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm_nn(0, 0, 0, &[], &[], &mut c);
        gemm_tn(0, 0, 0, &[], &[], &mut c);
        let mut c2 = [3.0f32; 2];
        gemm_nn(1, 2, 0, &[], &[], &mut c2);
        assert_eq!(c2, [3.0, 3.0]); // k = 0 contributes nothing
    }

    #[test]
    fn backend_resolution_is_stable_and_named() {
        let b = kernel_backend();
        assert_eq!(b, kernel_backend());
        assert!(matches!(b.name(), "scalar" | "avx2" | "avx512"));
        assert_eq!(b.is_simd(), b.name() != "scalar");
    }

    #[test]
    fn override_parser_accepts_known_values() {
        assert_eq!(parse_override(""), None);
        assert_eq!(parse_override("auto"), None);
        assert_eq!(parse_override(" AVX2 "), Some(KernelBackend::Avx2));
        assert_eq!(parse_override("avx512"), Some(KernelBackend::Avx512));
        assert_eq!(parse_override("scalar"), Some(KernelBackend::Scalar));
    }

    #[test]
    #[should_panic(expected = "not recognised")]
    fn override_parser_rejects_typos() {
        let _ = parse_override("sclar");
    }

    /// Every compiled backend must agree with the scalar oracle within the
    /// crate-wide ULP envelope, on shapes exercising full tiles and ragged
    /// m/n/k tails.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn simd_backends_match_scalar_oracle_within_ulp() {
        let mut rng = StdRng::seed_from_u64(11);
        let shapes = [
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (8, 32, 16),
            (16, 576, 288), // conv1 at score-block 4
            (32, 144, 288), // conv4 at score-block 4
            (9, 33, 289),   // ragged everything
            (250, 4, 288),  // dense batched as nt
        ];
        for &(m, n, k) in &shapes {
            let a = random_matrix(&mut rng, m * k);
            let b_nn = random_matrix(&mut rng, k * n);
            let b_nt = random_matrix(&mut rng, n * k);
            let seed = random_matrix(&mut rng, m * n);

            let mut want = seed.clone();
            scalar::gemm_nn(m, n, k, &a, &b_nn, &mut want);
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                let mut got = seed.clone();
                avx2::gemm_nn_shim(m, n, k, &a, &b_nn, &mut got);
                assert_ulp_close(&got, &want, 128, 1e-4);
            }
            if is_x86_feature_detected!("avx512f") {
                let mut got = seed.clone();
                avx512::gemm_nn_shim(m, n, k, &a, &b_nn, &mut got);
                assert_ulp_close(&got, &want, 128, 1e-4);
            }

            let mut want = seed.clone();
            scalar::gemm_nt(m, n, k, &a, &b_nt, &mut want);
            if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
                let mut got = seed.clone();
                avx2::gemm_nt_shim(m, n, k, &a, &b_nt, &mut got);
                assert_ulp_close(&got, &want, 128, 1e-4);
            }
            if is_x86_feature_detected!("avx512f") {
                let mut got = seed.clone();
                avx512::gemm_nt_shim(m, n, k, &a, &b_nt, &mut got);
                assert_ulp_close(&got, &want, 128, 1e-4);
            }
        }
    }
}
