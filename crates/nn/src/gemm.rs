//! Cache-blocked f32 matrix-multiply kernels.
//!
//! These three kernels carry all dense linear algebra in the crate: the
//! im2col convolution ([`crate::layers::Conv2d`]) and the fully-connected
//! layer ([`crate::layers::Dense`]) both lower their forward and backward
//! passes onto them.
//!
//! All kernels **accumulate** (`C += …`) so layers can seed `C` with the
//! bias or chain into existing gradient buffers, and all operate on plain
//! row-major `&[f32]` slices:
//!
//! * [`gemm_nn`] — `C[m×n] += A[m×k] · B[k×n]`. Row-oriented axpy form:
//!   streams rows of `B` against one scalar of `A` at a time, which keeps
//!   the inner loop a contiguous fused multiply-add that LLVM
//!   auto-vectorises.
//! * [`gemm_nt`] — `C[m×n] += A[m×k] · Bᵀ` with `B` stored `n×k`
//!   row-major. Storing the *right* operand with its reduction dimension
//!   contiguous is exactly a column-major `B`, so each output element is a
//!   dot product of two contiguous rows — the dot micro-kernel below uses
//!   four independent accumulators to break the floating-point dependency
//!   chain.
//! * [`gemm_tn`] — `C[m×n] += Aᵀ · B` with `A` stored `k×m` row-major.
//!   Axpy over the shared `k` dimension; used for backpropagating through
//!   a row-major weight matrix without materialising its transpose.
//!
//! The `k` dimension is processed in [`KC`]-sized blocks so the slice of
//! `B` (or `A` for [`gemm_tn`]) touched by one block stays resident in L1/L2
//! while every row of the output is updated.
//!
//! Determinism: for fixed operand shapes each output element is computed
//! by a fixed sequence of floating-point operations, independent of
//! threading or call history — repeated calls are bit-identical, which the
//! batch-inference contract of [`crate::Network::forward_batch`] relies on.

/// Block size over the shared `k` dimension. 256 f32 rows of a 144-wide
/// `B` panel is ≈144 KiB — small enough to stay L2-resident on anything
/// this crate targets, and the paper's shapes (`k ≤ 288`) usually fit in
/// a single block anyway.
const KC: usize = 256;

use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of GEMM kernel invocations (all four kernels).
///
/// Benchmarks read deltas of this counter to report *GEMM calls per
/// window* — the quantity the batched scoring path shrinks, since one
/// batched call replaces B per-window calls while streaming each weight
/// matrix once. A relaxed increment per kernel call costs nanoseconds
/// against kernels that move kilobytes, so the counter stays on
/// unconditionally.
static GEMM_CALLS: AtomicU64 = AtomicU64::new(0);

/// Total GEMM kernel calls since process start (monotone; read deltas).
pub fn gemm_call_count() -> u64 {
    GEMM_CALLS.load(Ordering::Relaxed)
}

#[inline]
fn count_call() {
    GEMM_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nn: A must be m×k");
    assert_eq!(b.len(), k * n, "gemm_nn: B must be k×n");
    assert_eq!(c.len(), m * n, "gemm_nn: C must be m×n");
    count_call();
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + KC).min(k);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            let mut p = p0;
            // Four B rows per pass: one load of c_row amortises four
            // scalar-times-row updates. Iterator traversal keeps the inner
            // loop free of bounds checks so it auto-vectorises cleanly;
            // the accumulation expression (and therefore every output bit)
            // is unchanged.
            while p + 4 <= p1 {
                let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                let (b0, rest) = b[p * n..].split_at(n);
                let (b1, rest) = rest.split_at(n);
                let (b2, rest) = rest.split_at(n);
                let b3 = &rest[..n];
                for ((((cj, &b0j), &b1j), &b2j), &b3j) in
                    c_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
                {
                    *cj += a0 * b0j + a1 * b1j + a2 * b2j + a3 * b3j;
                }
                p += 4;
            }
            while p < p1 {
                let av = a_row[p];
                if av != 0.0 {
                    let b_row = &b[p * n..p * n + n];
                    for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                        *cj += av * bj;
                    }
                }
                p += 1;
            }
        }
        p0 = p1;
    }
}

/// `C[m×n] += A[m×k] · Bᵀ`, with `B` stored `n×k` row-major (i.e. a
/// column-major `k×n` matrix): `C[i][j] += Σ_p A[i][p] · B[j][p]`.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: A must be m×k");
    assert_eq!(b.len(), n * k, "gemm_nt: B must be n×k (Bᵀ of k×n)");
    assert_eq!(c.len(), m * n, "gemm_nt: C must be m×n");
    count_call();

    // 2×2 register tile: each A row is read once for two B rows and vice
    // versa, halving memory traffic versus independent dot products.
    let mut i = 0;
    while i + 2 <= m {
        let a0 = &a[i * k..(i + 1) * k];
        let a1 = &a[(i + 1) * k..(i + 2) * k];
        let mut j = 0;
        while j + 2 <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let (mut s00, mut s01, mut s10, mut s11) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (((&x0, &x1), &y0), &y1) in a0.iter().zip(a1).zip(b0).zip(b1) {
                s00 += x0 * y0;
                s01 += x0 * y1;
                s10 += x1 * y0;
                s11 += x1 * y1;
            }
            c[i * n + j] += s00;
            c[i * n + j + 1] += s01;
            c[(i + 1) * n + j] += s10;
            c[(i + 1) * n + j + 1] += s11;
            j += 2;
        }
        if j < n {
            let b0 = &b[j * k..(j + 1) * k];
            c[i * n + j] += dot(a0, b0);
            c[(i + 1) * n + j] += dot(a1, b0);
        }
        i += 2;
    }
    if i < m {
        let a0 = &a[i * k..(i + 1) * k];
        for j in 0..n {
            c[i * n + j] += dot(a0, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C[m×n] += Aᵀ · B`, with `A` stored `k×m` row-major and `B` stored
/// `k×n` row-major: `C[i][j] += Σ_p A[p][i] · B[p][j]`.
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`n`/`k` dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: A must be k×m (Aᵀ of m×k)");
    assert_eq!(b.len(), k * n, "gemm_tn: B must be k×n");
    assert_eq!(c.len(), m * n, "gemm_tn: C must be m×n");
    count_call();
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    if n == 1 {
        // Matrix-transpose-vector fast path (`Dense` backward): one axpy
        // over a contiguous A row per reduction step.
        for p in 0..k {
            let s = b[p];
            if s != 0.0 {
                let a_row = &a[p * m..(p + 1) * m];
                for (ci, &av) in c.iter_mut().zip(a_row) {
                    *ci += av * s;
                }
            }
        }
        return;
    }

    let mut p0 = 0;
    while p0 < k {
        let p1 = (p0 + KC).min(k);
        for p in p0..p1 {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for i in 0..m {
                let av = a_row[i];
                if av == 0.0 {
                    continue;
                }
                let c_row = &mut c[i * n..(i + 1) * n];
                for (cj, &bj) in c_row.iter_mut().zip(b_row) {
                    *cj += av * bj;
                }
            }
        }
        p0 = p1;
    }
}

/// An element-wise activation fused into a GEMM call as an output
/// epilogue: it runs over the `C` tile immediately after the last
/// `k`-block has been accumulated, while the tile is still cache-hot,
/// instead of as a separate layer traversing a freshly allocated tensor.
///
/// Determinism contract: the epilogue is applied to each fully-accumulated
/// output element in index order, with exactly the same scalar expression
/// the standalone activation layers use — so a fused `conv → relu` pair is
/// bit-identical to the unfused two-layer sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Epilogue {
    /// `max(x, 0)` — same predicate (`x > 0.0`) as [`crate::layers::Relu`].
    Relu,
    /// `1 / (1 + e^{-x})` — same expression as [`crate::layers::Sigmoid`].
    Sigmoid,
    /// `tanh(x)` — same expression as [`crate::layers::Tanh`].
    Tanh,
}

impl Epilogue {
    /// Applies the activation over `c` in place, in index order.
    #[inline]
    pub fn apply(self, c: &mut [f32]) {
        match self {
            Epilogue::Relu => {
                for v in c.iter_mut() {
                    *v = if *v > 0.0 { *v } else { 0.0 };
                }
            }
            Epilogue::Sigmoid => {
                for v in c.iter_mut() {
                    *v = 1.0 / (1.0 + (-*v).exp());
                }
            }
            Epilogue::Tanh => {
                for v in c.iter_mut() {
                    *v = v.tanh();
                }
            }
        }
    }

    /// Backward of the fused epilogue: rescales the incoming gradient `g`
    /// in place using the *post-activation* output `y` (all three
    /// activations admit a derivative expressed in their output alone).
    ///
    /// Matches the standalone layers bit-for-bit: `relu` keeps `g` where
    /// `y > 0` (equivalent to the pre-activation `x > 0` mask, since
    /// `y = x` exactly there), `sigmoid` uses `g·y·(1−y)`, `tanh` uses
    /// `g·(1−y²)`.
    #[inline]
    pub fn grad_from_output(self, y: &[f32], g: &mut [f32]) {
        assert_eq!(y.len(), g.len(), "epilogue grad length mismatch");
        match self {
            Epilogue::Relu => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    *gi = if yi > 0.0 { *gi } else { 0.0 };
                }
            }
            Epilogue::Sigmoid => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    // Same association as the standalone layer: (g·y)·(1−y).
                    *gi = *gi * yi * (1.0 - yi);
                }
            }
            Epilogue::Tanh => {
                for (gi, &yi) in g.iter_mut().zip(y) {
                    *gi *= 1.0 - yi * yi;
                }
            }
        }
    }
}

/// [`gemm_nn`] with an optional fused activation over the finished `C`
/// tile (conv forward epilogue).
pub fn gemm_nn_fused(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nn(m, n, k, a, b, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// Batched matrix-vector products against one shared weight matrix:
/// `C[j][i] += Σ_p A[i][p] · X[j][p]` for every sample `j`, with `A`
/// stored `m×k` row-major, `xs` holding `batch` sample-major vectors of
/// length `k`, and `c` holding `batch` sample-major outputs of length `m`.
///
/// This is `batch` independent [`gemm_nt`]`(m, 1, k, …)` calls, but with
/// the loop nest inverted so each weight row `A[i]` is streamed from
/// memory **once per block** instead of once per sample — the whole point
/// of batched scoring. Every output element is still a single [`dot`] of
/// the same two contiguous rows the per-sample path would use, so results
/// are **bit-identical** to scoring samples one at a time (the per-sample
/// `n = 1` path of [`gemm_nt`] also reduces via `dot`).
///
/// # Panics
///
/// Panics when a slice length does not match its `m`/`batch`/`k`
/// dimensions.
pub fn gemm_nt_batched(m: usize, batch: usize, k: usize, a: &[f32], xs: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt_batched: A must be m×k");
    assert_eq!(xs.len(), batch * k, "gemm_nt_batched: X must be batch×k");
    assert_eq!(c.len(), batch * m, "gemm_nt_batched: C must be batch×m");
    count_call();
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..batch {
            c[j * m + i] += dot(a_row, &xs[j * k..(j + 1) * k]);
        }
    }
}

/// [`gemm_nt_batched`] with an optional fused activation over the
/// finished batch of outputs (batched dense forward epilogue). The
/// epilogue is element-wise, so applying it over the whole `batch×m`
/// block is bit-identical to applying it per sample.
pub fn gemm_nt_batched_fused(
    m: usize,
    batch: usize,
    k: usize,
    a: &[f32],
    xs: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nt_batched(m, batch, k, a, xs, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// [`gemm_nt`] with an optional fused activation over the finished `C`
/// tile (dense forward epilogue).
pub fn gemm_nt_fused(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    epilogue: Option<Epilogue>,
) {
    gemm_nt(m, n, k, a, b, c);
    if let Some(ep) = epilogue {
        ep.apply(c);
    }
}

/// Unrolled dot product with four independent accumulators.
///
/// `chunks_exact` traversal keeps the loop body free of bounds checks;
/// the accumulator layout (lane `i` sums elements `p ≡ i mod 4`, combined
/// as `(s0+s1)+(s2+s3)`) is the historical order, so results stay
/// bit-identical.
#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xv, yv) in (&mut xc).zip(&mut yc) {
        s0 += xv[0] * yv[0];
        s1 += xv[1] * yv[1];
        s2 += xv[2] * yv[2];
        s3 += xv[3] * yv[3];
    }
    for (&xv, &yv) in xc.remainder().iter().zip(yc.remainder()) {
        s0 += xv * yv;
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_matrix(rng: &mut StdRng, len: usize) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
    }

    /// Reference triple loop: `C += op(A) · op(B)` with explicit index
    /// functions.
    fn reference(
        (m, n, k): (usize, usize, usize),
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        a_at: impl Fn(&[f32], usize, usize) -> f32,
        b_at: impl Fn(&[f32], usize, usize) -> f32,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += a_at(a, i, p) as f64 * b_at(b, p, j) as f64;
                }
                c[i * n + j] += acc as f32;
            }
        }
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!(
                (g - w).abs() <= 1e-3 * w.abs().max(1.0),
                "element {i}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn nn_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        // Includes k spanning multiple KC blocks and non-multiple-of-4
        // remainders in every dimension.
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (32, 144, 288), (2, 9, 600), (5, 1, 4)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, k * n);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_nn(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[i * k + p],
                |b, p, j| b[p * n + j],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn nt_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(2);
        for &(m, n, k) in &[(1, 1, 1), (2, 2, 8), (3, 5, 7), (32, 144, 144), (7, 3, 600)] {
            let a = random_matrix(&mut rng, m * k);
            let b = random_matrix(&mut rng, n * k);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_nt(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[i * k + p],
                |b, p, j| b[j * k + p],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn tn_matches_reference_across_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, n, k) in &[(1, 1, 1), (4, 1, 9), (144, 144, 32), (5, 7, 3), (3, 4, 600)] {
            let a = random_matrix(&mut rng, k * m);
            let b = random_matrix(&mut rng, k * n);
            let mut c = random_matrix(&mut rng, m * n);
            let mut want = c.clone();
            gemm_tn(m, n, k, &a, &b, &mut c);
            reference(
                (m, n, k),
                &a,
                &b,
                &mut want,
                |a, i, p| a[p * m + i],
                |b, p, j| b[p * n + j],
            );
            assert_close(&c, &want);
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let a = [1.0f32, 0.0, 0.0, 1.0]; // 2×2 identity
        let b = [5.0f32, 6.0, 7.0, 8.0];
        let mut c = [100.0f32; 4];
        gemm_nn(2, 2, 2, &a, &b, &mut c);
        assert_eq!(c, [105.0, 106.0, 107.0, 108.0]);
    }

    #[test]
    fn repeated_calls_are_bit_identical() {
        let mut rng = StdRng::seed_from_u64(4);
        let (m, n, k) = (9, 13, 300);
        let a = random_matrix(&mut rng, m * k);
        let b = random_matrix(&mut rng, k * n);
        let run = |f: &dyn Fn(&mut [f32])| {
            let mut c = vec![0.0f32; m * n];
            f(&mut c);
            c
        };
        let nn = |c: &mut [f32]| gemm_nn(m, n, k, &a, &b, c);
        assert_eq!(run(&nn), run(&nn));
        let a2 = random_matrix(&mut rng, n * k);
        let nt = |c: &mut [f32]| gemm_nt(m, n, k, &a, &a2, c);
        assert_eq!(run(&nt), run(&nt));
    }

    #[test]
    fn nt_batched_is_bit_identical_to_per_sample_nt() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, batch, k) in &[
            (1, 1, 1),
            (3, 5, 7),
            (8, 2, 288),
            (250, 13, 288),
            (2, 64, 9),
        ] {
            let a = random_matrix(&mut rng, m * k);
            let xs = random_matrix(&mut rng, batch * k);
            let seed = random_matrix(&mut rng, batch * m);
            let mut got = seed.clone();
            gemm_nt_batched(m, batch, k, &a, &xs, &mut got);
            let mut want = seed;
            for j in 0..batch {
                gemm_nt(
                    m,
                    1,
                    k,
                    &a,
                    &xs[j * k..(j + 1) * k],
                    &mut want[j * m..(j + 1) * m],
                );
            }
            assert_eq!(got, want, "m={m} batch={batch} k={k}");
        }
    }

    #[test]
    fn nt_batched_fused_matches_unfused_plus_epilogue() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, batch, k) = (5, 4, 11);
        let a = random_matrix(&mut rng, m * k);
        let xs = random_matrix(&mut rng, batch * k);
        for ep in [Epilogue::Relu, Epilogue::Sigmoid, Epilogue::Tanh] {
            let mut fused = vec![0.0f32; batch * m];
            gemm_nt_batched_fused(m, batch, k, &a, &xs, &mut fused, Some(ep));
            let mut plain = vec![0.0f32; batch * m];
            gemm_nt_batched(m, batch, k, &a, &xs, &mut plain);
            ep.apply(&mut plain);
            assert_eq!(fused, plain);
        }
    }

    #[test]
    fn gemm_call_counter_is_monotone() {
        let before = gemm_call_count();
        let mut c = [0.0f32; 1];
        gemm_nn(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_nt(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_tn(1, 1, 1, &[1.0], &[1.0], &mut c);
        gemm_nt_batched(1, 1, 1, &[1.0], &[1.0], &mut c);
        // Other tests run concurrently, so assert a lower bound only.
        assert!(gemm_call_count() >= before + 4);
    }

    #[test]
    #[should_panic(expected = "gemm_nn: A must be m×k")]
    fn mismatched_dimensions_panic() {
        let mut c = [0.0f32; 4];
        gemm_nn(2, 2, 3, &[0.0; 5], &[0.0; 6], &mut c);
    }

    #[test]
    fn zero_sized_dimensions_are_noops() {
        let mut c: Vec<f32> = vec![];
        gemm_nn(0, 0, 0, &[], &[], &mut c);
        gemm_tn(0, 0, 0, &[], &[], &mut c);
        let mut c2 = [3.0f32; 2];
        gemm_nn(1, 2, 0, &[], &[], &mut c2);
        assert_eq!(c2, [3.0, 3.0]); // k = 0 contributes nothing
    }
}
