//! Dense CHW tensors.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense tensor of `f32` values with an explicit shape.
///
/// Rank-3 tensors use CHW layout (`[channels, height, width]`), matching the
/// feature-tensor representation and the convolution layers; rank-1 tensors
/// are plain vectors for the dense head of a network.
///
/// # Examples
///
/// ```
/// use hotspot_nn::Tensor;
///
/// let t = Tensor::zeros(vec![2, 3, 3]);
/// assert_eq!(t.len(), 18);
/// assert_eq!(t.shape(), &[2, 3, 3]);
/// let mut u = t.clone();
/// *u.at3_mut(1, 2, 0) = 5.0;
/// assert_eq!(u.at3(1, 2, 0), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// A zero-filled tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or its product overflows.
    pub fn zeros(shape: Vec<usize>) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        let len = match shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)) {
            Some(len) => len,
            None => panic!("shape product overflow: {shape:?}"),
        };
        Tensor {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape product.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The flat mutable backing buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Rank-3 element access `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 3 or the index is out of bounds.
    #[inline]
    pub fn at3(&self, c: usize, y: usize, x: usize) -> f32 {
        debug_assert_eq!(
            self.shape.len(),
            3,
            "at3 on rank-{} tensor",
            self.shape.len()
        );
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Rank-3 mutable element access `(c, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Tensor::at3`].
    #[inline]
    pub fn at3_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        debug_assert_eq!(
            self.shape.len(),
            3,
            "at3_mut on rank-{} tensor",
            self.shape.len()
        );
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        &mut self.data[(c * h + y) * w + x]
    }

    /// Returns the tensor reshaped (same element count).
    ///
    /// # Panics
    ///
    /// Panics if the new shape's product differs from the current length.
    pub fn reshaped(mut self, shape: Vec<usize>) -> Tensor {
        let len: usize = shape.iter().product();
        assert_eq!(
            len,
            self.data.len(),
            "reshape {:?} -> {shape:?}",
            self.shape
        );
        self.shape = shape;
        self
    }

    /// Largest-magnitude element (0.0 for empty tensors) — handy in
    /// gradient-sanity assertions.
    pub fn abs_max(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(vec![4, 5]);
        assert_eq!(t.len(), 20);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_shape_panics() {
        let _ = Tensor::zeros(vec![]);
    }

    #[test]
    fn from_vec_validates() {
        let t = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.as_slice()[3], 4.0);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(vec![2, 2], vec![1.0]);
    }

    #[test]
    fn chw_indexing() {
        let mut t = Tensor::zeros(vec![2, 3, 4]);
        *t.at3_mut(1, 2, 3) = 9.0;
        assert_eq!(t.at3(1, 2, 3), 9.0);
        // Flat position: (1*3 + 2)*4 + 3 = 23.
        assert_eq!(t.as_slice()[23], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        let r = t.clone().reshaped(vec![6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[6]);
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_wrong_size() {
        let _ = Tensor::zeros(vec![4]).reshaped(vec![5]);
    }

    #[test]
    fn abs_max_works() {
        let t = Tensor::from_vec(vec![3], vec![1.0, -7.0, 2.0]);
        assert_eq!(t.abs_max(), 7.0);
    }
}
