//! Shape-planned execution: arena-allocated forward/backward passes.
//!
//! A [`ShapePlan`] is computed once per (network, input shape) and records,
//! for every layer, where its input, output, f32 scratch, and index scratch
//! live inside a single [`Workspace`] arena — plus which standalone
//! activation layers get *fused* into the preceding GEMM layer's epilogue
//! ([`crate::gemm::Epilogue`]). Running a planned pass then touches no
//! allocator at all: after the workspace warms up, a full-layout scan
//! scores every window with zero allocations.
//!
//! # Arena layout
//!
//! ```text
//! acts:    [ input | out L0 | out L1 | ... | out L(n-1) ]   (f32)
//! scratch: [ L0 region | L1 region | ... ]                  (f32; im2col col+dcol, dropout masks)
//! idx:     [ L0 region | L1 region | ... ]                  (usize; maxpool argmax)
//! g_cur / g_nxt: two ping-pong gradient buffers, each as large as the
//!                largest single activation
//! ```
//!
//! Aliasing rules: each step's input region strictly precedes its output
//! region in `acts` (layers are sequential), so the executor can hand a
//! layer `&x` and `&mut y` via `split_at_mut` — no copies, no `unsafe`.
//! In *training* mode, scratch and index regions are per-layer disjoint,
//! which is what lets `backward_with` replay the exact buffers the forward
//! pass wrote. In *inference* mode no step ever re-reads another step's
//! scratch, so every step overlays one shared region at offset 0, sized to
//! the largest single forward footprint
//! ([`crate::Layer::scratch_infer_len`]) — for the paper network that
//! shrinks the scratch arena ~4× and keeps the im2col buffer cache-hot
//! across the whole conv stack. Consequently `backward_with` must follow a
//! `forward_train_with` with no intervening `forward_with` on the same
//! workspace.
//!
//! # Determinism and bit-identity
//!
//! The planned path is bit-identical to the allocating [`crate::Layer`]
//! wrappers by construction: both call the very same `forward_into` /
//! `backward_into` implementations, and a fused epilogue applies the very
//! same per-element expression *after* the GEMM accumulation finished, in
//! index order — exactly what the standalone activation layer would have
//! done one call later. Dropout draws its mask stream in strict element
//! order on both paths, so checkpoint/resume stays bit-identical too.
//!
//! # Examples
//!
//! ```
//! use hotspot_nn::engine::Executor;
//! use hotspot_nn::layers::{Dense, Relu};
//! use hotspot_nn::{Network, Tensor};
//!
//! let mut net = Network::new();
//! net.push(Dense::new(4, 8, 0));
//! net.push(Relu::new()); // fused into the dense GEMM epilogue
//! net.push(Dense::new(8, 2, 1));
//!
//! let mut ex = Executor::new();
//! let x = Tensor::from_vec(vec![4], vec![0.1, -0.2, 0.3, -0.4]);
//! let logits = ex.infer(&net, &x).to_vec();
//! assert_eq!(logits.len(), 2);
//! // Bit-identical to the allocating path.
//! assert_eq!(logits, net.forward_inference(&x).as_slice());
//! ```

use crate::gemm::Epilogue;
use crate::layers::BackwardCtx;
use crate::{Network, Tensor};

/// One planned layer execution: which layer runs, where its buffers live,
/// and whether a following activation is fused into its epilogue.
#[derive(Debug, Clone)]
struct PlanStep {
    /// Index into the network's layer list.
    layer: usize,
    in_off: usize,
    in_len: usize,
    in_shape: Vec<usize>,
    out_off: usize,
    out_len: usize,
    scratch_off: usize,
    scratch_len: usize,
    /// Forward-only scratch footprint ([`crate::Layer::scratch_infer_len`]);
    /// inference overlays every step's scratch at offset 0 of one shared
    /// region this long or shorter.
    scratch_infer_len: usize,
    idx_off: usize,
    idx_len: usize,
    /// Scratch footprint of the batched forward path
    /// ([`crate::Layer::scratch_batch_len`]) at the plan's batch size;
    /// equals `scratch_infer_len` for single-sample plans.
    scratch_batch_len: usize,
    /// A following element-wise activation fused into this layer's GEMM
    /// tail; the activation layer itself is skipped.
    epilogue: Option<Epilogue>,
}

/// The execution plan for one (network architecture, input shape) pair:
/// arena offsets for every intermediate buffer plus the fusion schedule.
///
/// Plans depend only on layer *types and shapes*, never on parameter
/// values, so one plan stays valid across training steps. Rebuild it only
/// when the input shape or the layer stack changes.
#[derive(Debug, Clone)]
pub struct ShapePlan {
    in_shape: Vec<usize>,
    in_len: usize,
    out_shape: Vec<usize>,
    steps: Vec<PlanStep>,
    acts_len: usize,
    scratch_len: usize,
    idx_len: usize,
    /// Inference-mode scratch length: the *maximum* single-step forward
    /// footprint, since inference steps never re-read earlier scratch and
    /// can all share one region (training needs the disjoint sum above).
    shared_scratch_len: usize,
    /// Inference-mode index scratch length (maximum, shared as above).
    shared_idx_len: usize,
    /// Size of each gradient ping-pong buffer: the largest single
    /// activation the backward pass moves.
    grad_len: usize,
    /// Layer count of the network the plan was built for (sanity check).
    layer_count: usize,
    /// Number of samples one planned pass scores at once. Plans with
    /// `batch > 1` drive [`Network::forward_batch_with`] only — the
    /// single-sample and training entry points reject them. Activation
    /// regions in `acts` hold `batch` samples back to back (per-step
    /// offsets/lengths in `steps` stay per-sample and are scaled by
    /// `batch` at execution time).
    batch: usize,
}

impl ShapePlan {
    /// The input shape the plan was built for.
    pub fn in_shape(&self) -> &[usize] {
        &self.in_shape
    }

    /// The network's output shape under this plan.
    pub fn out_shape(&self) -> &[usize] {
        &self.out_shape
    }

    /// Number of output elements.
    pub fn out_len(&self) -> usize {
        self.out_shape.iter().product()
    }

    /// Number of executed steps (fused activations collapse into their
    /// producer, so this can be smaller than the layer count).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// How many steps carry a fused activation epilogue.
    pub fn fused_count(&self) -> usize {
        self.steps.iter().filter(|s| s.epilogue.is_some()).count()
    }

    /// Total f32 activation arena length (input + every layer output,
    /// times the plan's batch size).
    pub fn arena_len(&self) -> usize {
        self.acts_len
    }

    /// Number of samples one planned pass scores at once (1 for plans
    /// built with [`Network::plan`]).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// A batch-block size sized from this plan's arena footprint: as many
    /// samples as keep one block's activations + scratch within a ~1 MiB
    /// f32 budget (so the batched im2col column matrix stays roughly
    /// L2-resident — larger blocks amortise fewer GEMM calls per window
    /// but thrash the cache and measure *slower*), clamped to `1..=64`.
    pub fn suggested_batch(&self) -> usize {
        const BLOCK_BUDGET_F32: usize = 1 << 18;
        let b = self.batch.max(1);
        let per_sample = (self.acts_len / b + self.shared_scratch_len / b).max(1);
        (BLOCK_BUDGET_F32 / per_sample).clamp(1, 64)
    }

    fn out_off(&self) -> usize {
        self.steps.last().map_or(0, |s| s.out_off)
    }
}

/// The reusable buffers a planned pass writes into. Create once (or
/// [`Workspace::default`]) and reuse across calls; buffers grow to the
/// largest plan seen and are never shrunk, so steady-state execution does
/// zero allocations.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    acts: Vec<f32>,
    scratch: Vec<f32>,
    idx: Vec<usize>,
    g_cur: Vec<f32>,
    g_nxt: Vec<f32>,
}

impl Workspace {
    /// An empty workspace; buffers are sized on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Grows the buffers to `plan`'s requirements (`train` also sizes the
    /// gradient ping-pong buffers). Never shrinks.
    pub fn prepare(&mut self, plan: &ShapePlan, train: bool) {
        if self.acts.len() < plan.acts_len {
            self.acts.resize(plan.acts_len, 0.0);
        }
        // Inference shares one scratch overlay across steps, so a
        // forward-only workspace stays ~4x smaller (and cache-hotter) than
        // a training one for conv stacks.
        let (s_need, i_need) = if train {
            (plan.scratch_len, plan.idx_len)
        } else {
            (plan.shared_scratch_len, plan.shared_idx_len)
        };
        if self.scratch.len() < s_need {
            self.scratch.resize(s_need, 0.0);
        }
        if self.idx.len() < i_need {
            self.idx.resize(i_need, 0);
        }
        if train {
            if self.g_cur.len() < plan.grad_len {
                self.g_cur.resize(plan.grad_len, 0.0);
            }
            if self.g_nxt.len() < plan.grad_len {
                self.g_nxt.resize(plan.grad_len, 0.0);
            }
        }
    }
}

impl Network {
    /// Builds the execution plan for `in_shape`: computes every
    /// intermediate shape via [`crate::Layer::out_shape`], lays all
    /// buffers out in one arena, and fuses each standalone element-wise
    /// activation that directly follows a GEMM-backed layer
    /// ([`crate::Layer::accepts_epilogue`]) into that layer's epilogue.
    ///
    /// # Panics
    ///
    /// Panics if `in_shape` is incompatible with any layer (same panics as
    /// the forward pass itself).
    pub fn plan(&self, in_shape: &[usize]) -> ShapePlan {
        self.plan_batch(in_shape, 1)
    }

    /// [`Network::plan`] with a batch dimension: the resulting plan drives
    /// [`Network::forward_batch_with`], scoring `batch` same-shaped
    /// samples per pass. Every activation region holds `batch` samples
    /// back to back and the inference scratch overlay is sized to the
    /// largest batched step footprint ([`crate::Layer::scratch_batch_len`]
    /// — the batched conv column matrix plus its staging buffer). A
    /// `batch` of 1 is exactly [`Network::plan`].
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `in_shape` is incompatible with any
    /// layer.
    pub fn plan_batch(&self, in_shape: &[usize], batch: usize) -> ShapePlan {
        assert!(batch > 0, "plan batch must be nonzero");
        let layers = self.layers_ref();
        let in_len: usize = in_shape.iter().product();
        let mut steps = Vec::with_capacity(layers.len());
        let mut cur_shape = in_shape.to_vec();
        let mut cur_off = 0usize;
        let mut cur_len = in_len;
        let mut acts_len = in_len;
        let mut scratch_len = 0usize;
        let mut idx_len = 0usize;
        let mut shared_scratch_len = 0usize;
        let mut shared_idx_len = 0usize;
        let mut grad_len = in_len;
        let mut i = 0usize;
        while i < layers.len() {
            let layer = &layers[i];
            let mut out_shape = layer.out_shape(&cur_shape);
            let mut epilogue = None;
            let mut consumed = 1;
            if layer.accepts_epilogue() {
                if let Some(next) = layers.get(i + 1) {
                    if let Some(ep) = next.as_epilogue() {
                        // The activation is element-wise: validate and keep
                        // its (identical) output shape, then skip the layer.
                        out_shape = next.out_shape(&out_shape);
                        epilogue = Some(ep);
                        consumed = 2;
                    }
                }
            }
            let out_len: usize = out_shape.iter().product();
            let s_len = layer.scratch_len(&cur_shape);
            let s_inf = layer.scratch_infer_len(&cur_shape);
            let s_batch = layer.scratch_batch_len(&cur_shape, batch);
            let x_len = layer.idx_len(&cur_shape);
            steps.push(PlanStep {
                layer: i,
                in_off: cur_off,
                in_len: cur_len,
                in_shape: cur_shape,
                out_off: acts_len,
                out_len,
                scratch_off: scratch_len,
                scratch_len: s_len,
                scratch_infer_len: s_inf,
                idx_off: idx_len,
                idx_len: x_len,
                scratch_batch_len: s_batch,
                epilogue,
            });
            scratch_len += s_len;
            idx_len += x_len;
            shared_scratch_len = shared_scratch_len.max(s_batch);
            shared_idx_len = shared_idx_len.max(x_len);
            cur_off = acts_len;
            cur_len = out_len;
            cur_shape = out_shape;
            acts_len += out_len;
            grad_len = grad_len.max(out_len);
            i += consumed;
        }
        ShapePlan {
            in_shape: in_shape.to_vec(),
            in_len,
            out_shape: cur_shape,
            steps,
            // The activation arena holds `batch` samples per region;
            // per-step offsets stay per-sample and are scaled at execution
            // time.
            acts_len: acts_len * batch,
            scratch_len,
            idx_len,
            shared_scratch_len,
            shared_idx_len,
            grad_len,
            layer_count: layers.len(),
            batch,
        }
    }

    fn check_plan(&self, plan: &ShapePlan, input_len: usize) {
        assert_eq!(
            plan.layer_count,
            self.len(),
            "plan was built for a different network"
        );
        assert_eq!(
            plan.batch, 1,
            "single-sample entry point given a batched plan"
        );
        assert_eq!(input_len, plan.in_len, "input length does not match plan");
    }

    /// Inference-mode planned forward pass: writes every activation into
    /// `ws` and returns the output slice (borrowed from the workspace).
    /// Callable through `&self`, so worker threads can share one network
    /// with per-worker workspaces. Bit-identical to
    /// [`Network::forward_inference`].
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match this network or `input` does not
    /// match `plan`.
    pub fn forward_with<'ws>(
        &self,
        plan: &ShapePlan,
        ws: &'ws mut Workspace,
        input: &[f32],
    ) -> &'ws [f32] {
        self.check_plan(plan, input.len());
        ws.prepare(plan, false);
        if plan.steps.is_empty() {
            // Degenerate empty network: the output *is* the input region.
            ws.acts[..plan.in_len].copy_from_slice(input);
        }
        let layers = self.layers_ref();
        for (si, step) in plan.steps.iter().enumerate() {
            // The input region strictly precedes the output region, so the
            // two disjoint borrows come from one split. Scratch is a single
            // shared overlay (offset 0): no inference step re-reads an
            // earlier step's scratch, and reusing one hot region keeps the
            // im2col buffers resident in cache across the conv stack. The
            // first step reads the caller's slice in place — inference
            // never replays activations, so the input is not copied into
            // the arena at all.
            let (lo, hi) = ws.acts.split_at_mut(step.out_off);
            let x = if si == 0 {
                input
            } else {
                &lo[step.in_off..step.in_off + step.in_len]
            };
            layers[step.layer].forward_into(
                x,
                &step.in_shape,
                &mut hi[..step.out_len],
                &mut ws.scratch[..step.scratch_infer_len],
                &mut ws.idx[..step.idx_len],
                step.epilogue,
            );
        }
        let off = plan.out_off();
        &ws.acts[off..off + plan.out_len()]
    }

    /// Batched planned inference over a plan built with
    /// [`Network::plan_batch`]: `input` holds `plan.batch()` sample-major
    /// inputs back to back, and the returned slice holds the same number
    /// of sample-major outputs. One pass per *layer* scores the whole
    /// block — conv runs one GEMM with `batch·oh·ow` columns, dense one
    /// batched GEMM streaming each weight row once — while each sample's
    /// arithmetic is exactly the per-sample path's, so the result is
    /// **bit-identical** to `plan.batch()` separate
    /// [`Network::forward_with`] calls (see
    /// [`crate::Layer::forward_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match this network or `input` does not
    /// hold exactly `plan.batch()` samples.
    pub fn forward_batch_with<'ws>(
        &self,
        plan: &ShapePlan,
        ws: &'ws mut Workspace,
        input: &[f32],
    ) -> &'ws [f32] {
        assert_eq!(
            plan.layer_count,
            self.len(),
            "plan was built for a different network"
        );
        let b = plan.batch;
        assert_eq!(
            input.len(),
            plan.in_len * b,
            "input length does not match plan batch"
        );
        ws.prepare(plan, false);
        if plan.steps.is_empty() {
            ws.acts[..plan.in_len * b].copy_from_slice(input);
        }
        let layers = self.layers_ref();
        for (si, step) in plan.steps.iter().enumerate() {
            // Same split discipline as `forward_with`, with every arena
            // offset scaled by the batch size (regions are consecutive, so
            // per-sample offsets × batch are exactly the batched offsets).
            let (lo, hi) = ws.acts.split_at_mut(step.out_off * b);
            let x = if si == 0 {
                input
            } else {
                &lo[step.in_off * b..(step.in_off + step.in_len) * b]
            };
            layers[step.layer].forward_batch_into(
                x,
                &step.in_shape,
                b,
                &mut hi[..step.out_len * b],
                &mut ws.scratch[..step.scratch_batch_len],
                &mut ws.idx[..step.idx_len],
                step.epilogue,
            );
        }
        let off = plan.out_off() * b;
        &ws.acts[off..off + plan.out_len() * b]
    }

    /// Training-mode planned forward pass (dropout draws masks from its
    /// RNG stream, exactly one draw per element in order — the same stream
    /// consumption as the allocating `forward(input, true)`). The arena
    /// then holds everything [`Network::backward_with`] needs.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match this network or `input` does not
    /// match `plan`.
    pub fn forward_train_with<'ws>(
        &mut self,
        plan: &ShapePlan,
        ws: &'ws mut Workspace,
        input: &[f32],
    ) -> &'ws [f32] {
        self.check_plan(plan, input.len());
        ws.prepare(plan, true);
        ws.acts[..plan.in_len].copy_from_slice(input);
        let layers = self.layers_mut();
        for step in &plan.steps {
            let (lo, hi) = ws.acts.split_at_mut(step.out_off);
            layers[step.layer].forward_train_into(
                &lo[step.in_off..step.in_off + step.in_len],
                &step.in_shape,
                &mut hi[..step.out_len],
                &mut ws.scratch[step.scratch_off..step.scratch_off + step.scratch_len],
                &mut ws.idx[step.idx_off..step.idx_off + step.idx_len],
                step.epilogue,
            );
        }
        let off = plan.out_off();
        &ws.acts[off..off + plan.out_len()]
    }

    /// Planned backward pass over the activations a matching
    /// [`Network::forward_train_with`] left in `ws`: accumulates parameter
    /// gradients layer by layer and returns ∂loss/∂input (borrowed from
    /// the workspace). Fused epilogue gradients are rescaled through
    /// [`Epilogue::grad_from_output`] before the producing layer's
    /// backward runs — the same arithmetic the standalone activation's
    /// backward would have applied.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not match this network or `loss_grad` does
    /// not match the plan's output length.
    pub fn backward_with<'ws>(
        &mut self,
        plan: &ShapePlan,
        ws: &'ws mut Workspace,
        loss_grad: &[f32],
    ) -> &'ws [f32] {
        assert_eq!(
            plan.layer_count,
            self.len(),
            "plan was built for a different network"
        );
        assert_eq!(
            plan.batch, 1,
            "single-sample entry point given a batched plan"
        );
        assert_eq!(
            loss_grad.len(),
            plan.out_len(),
            "loss gradient does not match plan output"
        );
        ws.prepare(plan, true);
        ws.g_cur[..plan.out_len()].copy_from_slice(loss_grad);
        let layers = self.layers_mut();
        for step in plan.steps.iter().rev() {
            let y = &ws.acts[step.out_off..step.out_off + step.out_len];
            let g = &mut ws.g_cur[..step.out_len];
            if let Some(ep) = step.epilogue {
                ep.grad_from_output(y, g);
            }
            let grad_in = &mut ws.g_nxt[..step.in_len];
            grad_in.fill(0.0);
            layers[step.layer].backward_into(
                BackwardCtx {
                    x: &ws.acts[step.in_off..step.in_off + step.in_len],
                    in_shape: &step.in_shape,
                    y,
                    grad: g,
                    scratch: &mut ws.scratch[step.scratch_off..step.scratch_off + step.scratch_len],
                    idx: &ws.idx[step.idx_off..step.idx_off + step.idx_len],
                },
                grad_in,
            );
            std::mem::swap(&mut ws.g_cur, &mut ws.g_nxt);
        }
        &ws.g_cur[..plan.in_len]
    }
}

/// A (plan, workspace) pair bound lazily to whatever input shape it sees:
/// the convenient front door to planned execution. The plan is rebuilt
/// only when the input shape or layer count changes; otherwise every call
/// reuses the warm arena.
///
/// # Examples
///
/// ```
/// use hotspot_nn::engine::Executor;
/// use hotspot_nn::layers::Dense;
/// use hotspot_nn::{Network, Tensor};
///
/// let mut net = Network::new();
/// net.push(Dense::new(3, 2, 0));
/// let mut ex = Executor::new();
/// let p = ex.infer(&net, &Tensor::zeros(vec![3])).to_vec();
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Executor {
    plan: Option<ShapePlan>,
    /// Separate slot for the batched plan so alternating single/batched
    /// calls (e.g. a ragged scan tail after full blocks) never replan.
    batch_plan: Option<ShapePlan>,
    ws: Workspace,
}

impl Executor {
    /// An empty executor; the plan is built on first use.
    pub fn new() -> Self {
        Executor::default()
    }

    /// The current plan, if one has been built.
    pub fn plan(&self) -> Option<&ShapePlan> {
        self.plan.as_ref()
    }

    fn ensure_plan(&mut self, net: &Network, in_shape: &[usize]) {
        let stale = match &self.plan {
            Some(p) => p.in_shape() != in_shape || p.layer_count != net.len(),
            None => true,
        };
        if stale {
            self.plan = Some(net.plan(in_shape));
        }
    }

    /// Planned inference; see [`Network::forward_with`].
    pub fn infer(&mut self, net: &Network, input: &Tensor) -> &[f32] {
        self.ensure_plan(net, input.shape());
        // `ensure_plan` guarantees the plan exists.
        let plan = self.plan.as_ref().unwrap_or_else(|| unreachable!());
        net.forward_with(plan, &mut self.ws, input.as_slice())
    }

    /// Batched planned inference; see [`Network::forward_batch_with`].
    /// `input` holds `batch` sample-major inputs of `in_shape` back to
    /// back; the returned slice holds `batch` sample-major outputs,
    /// bit-identical to `batch` separate [`Executor::infer`] calls. The
    /// batched plan is cached separately from the single-sample one, so a
    /// scan loop can interleave full blocks and a ragged tail (through a
    /// second executor) without replanning.
    pub fn infer_batch(
        &mut self,
        net: &Network,
        input: &[f32],
        in_shape: &[usize],
        batch: usize,
    ) -> &[f32] {
        let stale = match &self.batch_plan {
            Some(p) => p.in_shape() != in_shape || p.batch() != batch || p.layer_count != net.len(),
            None => true,
        };
        if stale {
            self.batch_plan = Some(net.plan_batch(in_shape, batch));
        }
        let plan = self.batch_plan.as_ref().unwrap_or_else(|| unreachable!());
        net.forward_batch_with(plan, &mut self.ws, input)
    }

    /// Planned training forward; see [`Network::forward_train_with`].
    pub fn forward_train(&mut self, net: &mut Network, input: &Tensor) -> &[f32] {
        self.ensure_plan(net, input.shape());
        let plan = self.plan.as_ref().unwrap_or_else(|| unreachable!());
        net.forward_train_with(plan, &mut self.ws, input.as_slice())
    }

    /// Planned backward over the last [`Executor::forward_train`] pass;
    /// see [`Network::backward_with`].
    ///
    /// # Panics
    ///
    /// Panics if no plan has been built yet.
    pub fn backward(&mut self, net: &mut Network, loss_grad: &[f32]) -> &[f32] {
        let plan = match &self.plan {
            Some(p) => p,
            // A misuse of the API, not a recoverable state: the workspace
            // holds no activations to differentiate through.
            None => panic!("Executor::backward called before forward_train"),
        };
        net.backward_with(plan, &mut self.ws, loss_grad)
    }
}

/// Batched inference over *ragged* batch sizes: the entry point for
/// callers whose batch size varies call to call (the serve daemon's
/// micro-batcher coalesces however many requests are queued, so every
/// cycle can be a different size).
///
/// [`Executor::infer_batch`] keeps exactly one batched plan and replans
/// whenever the size changes — fine for a scan loop that runs one fixed
/// block size plus one tail, pathological for a server seeing sizes
/// 3, 7, 1, 12, ... This scorer instead splits each request into blocks
/// of at most [`ShapePlan::suggested_batch`] samples and keeps one plan
/// *per distinct block size* (at most the cap of them, each a few hundred
/// bytes of offsets), so steady-state serving replans never and
/// allocates nothing.
///
/// Scores are **bit-identical** to per-sample [`Executor::infer`] for
/// every batch size and split, because batched execution is per-sample
/// exact ([`Network::forward_batch_with`]); how requests are grouped can
/// therefore never change a score.
#[derive(Debug, Clone, Default)]
pub struct BatchScorer {
    /// Cache key: the input shape and layer count the plans were built
    /// for; any change drops every plan.
    in_shape: Vec<usize>,
    layer_count: usize,
    /// Per-sample arena cap from `suggested_batch`, computed once per key.
    cap: usize,
    /// Cached plans, one per distinct block size seen (found by linear
    /// scan — there are at most `cap` of them).
    plans: Vec<ShapePlan>,
    ws: Workspace,
    out: Vec<f32>,
}

impl BatchScorer {
    /// An empty scorer; plans are built on first use.
    pub fn new() -> Self {
        BatchScorer::default()
    }

    /// The block-size cap applied to `in_shape` (blocks larger than this
    /// are split). Builds and caches the sizing plan.
    pub fn block_cap(&mut self, net: &Network, in_shape: &[usize]) -> usize {
        self.ensure_key(net, in_shape);
        self.cap
    }

    /// Number of distinct block-size plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    fn ensure_key(&mut self, net: &Network, in_shape: &[usize]) {
        if self.in_shape != in_shape || self.layer_count != net.len() {
            self.in_shape = in_shape.to_vec();
            self.layer_count = net.len();
            self.plans.clear();
            self.cap = net.plan(in_shape).suggested_batch();
        }
    }

    fn plan_for(&mut self, net: &Network, block: usize) -> usize {
        if let Some(idx) = self.plans.iter().position(|p| p.batch() == block) {
            return idx;
        }
        self.plans.push(net.plan_batch(&self.in_shape, block));
        self.plans.len() - 1
    }

    /// Scores `batch` sample-major inputs of `in_shape` held back to back
    /// in `input`, returning `batch` sample-major outputs. Splits into
    /// blocks of at most [`ShapePlan::suggested_batch`] samples; each
    /// block runs one GEMM per layer. Bit-identical to `batch` separate
    /// [`Executor::infer`] calls regardless of how the split lands.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero or `input` does not hold exactly `batch`
    /// samples of `in_shape`.
    pub fn infer_ragged(
        &mut self,
        net: &Network,
        input: &[f32],
        in_shape: &[usize],
        batch: usize,
    ) -> &[f32] {
        assert!(batch > 0, "ragged batch must be nonzero");
        let in_len: usize = in_shape.iter().product();
        assert_eq!(
            input.len(),
            in_len * batch,
            "input length does not match batch"
        );
        self.ensure_key(net, in_shape);
        let cap = self.cap;
        let out_len = {
            let idx = self.plan_for(net, batch.min(cap));
            self.plans[idx].out_len()
        };
        if self.out.len() < out_len * batch {
            self.out.resize(out_len * batch, 0.0);
        }
        let mut done = 0;
        while done < batch {
            let block = (batch - done).min(cap);
            let idx = self.plan_for(net, block);
            let scores = net.forward_batch_with(
                &self.plans[idx],
                &mut self.ws,
                &input[done * in_len..(done + block) * in_len],
            );
            self.out[done * out_len..(done + block) * out_len].copy_from_slice(scores);
            done += block;
        }
        &self.out[..out_len * batch]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2, Relu, Sigmoid, Tanh};

    fn paper_like_net() -> Network {
        let mut net = Network::new();
        net.push(Conv2d::new(2, 4, 3, 1, 5));
        net.push(Relu::new());
        net.push(MaxPool2::new());
        net.push(Flatten::new());
        net.push(Dense::new(4 * 3 * 3, 8, 6));
        net.push(Relu::new());
        net.push(Dropout::new(0.5, 7));
        net.push(Dense::new(8, 2, 8));
        net
    }

    fn wavy_input(len: usize, shape: Vec<usize>) -> Tensor {
        Tensor::from_vec(shape, (0..len).map(|i| (i as f32 * 0.37).sin()).collect())
    }

    #[test]
    fn plan_fuses_gemm_activation_pairs() {
        let net = paper_like_net();
        let plan = net.plan(&[2, 6, 6]);
        // 8 layers, 2 fused relus -> 6 steps.
        assert_eq!(plan.step_count(), 6);
        assert_eq!(plan.fused_count(), 2);
        assert_eq!(plan.out_shape(), &[2]);
    }

    #[test]
    fn inference_scratch_is_a_shared_overlay() {
        let net = paper_like_net();
        let plan = net.plan(&[2, 6, 6]);
        // Conv scratch is col+dcol when training, col alone at inference;
        // inference additionally shares one region instead of summing.
        let conv_col = 2 * 9 * 6 * 6;
        assert_eq!(plan.shared_scratch_len, conv_col);
        assert_eq!(plan.scratch_len, 2 * conv_col + 8); // + dropout mask
        assert!(plan.shared_scratch_len < plan.scratch_len);
        // An inference-only workspace allocates the small overlay.
        let mut ws = Workspace::new();
        ws.prepare(&plan, false);
        assert_eq!(ws.scratch.len(), plan.shared_scratch_len);
        // Training afterwards grows it to the disjoint layout.
        ws.prepare(&plan, true);
        assert_eq!(ws.scratch.len(), plan.scratch_len);
    }

    #[test]
    fn sigmoid_and_tanh_fuse_too() {
        for (net, expect) in [
            {
                let mut n = Network::new();
                n.push(Dense::new(3, 4, 0));
                n.push(Sigmoid::new());
                n.push(Dense::new(4, 2, 1));
                n.push(Tanh::new());
                (n, 2)
            },
            {
                // Activation after a non-GEMM layer stays standalone.
                let mut n = Network::new();
                n.push(Flatten::new());
                n.push(Relu::new());
                (n, 2)
            },
        ] {
            let plan = net.plan(&[3]);
            assert_eq!(plan.step_count(), expect);
        }
    }

    #[test]
    fn planned_inference_is_bit_identical_to_legacy() {
        let mut net = paper_like_net();
        let x = wavy_input(2 * 6 * 6, vec![2, 6, 6]);
        let legacy = net.forward(&x, false);
        let plan = net.plan(&[2, 6, 6]);
        let mut ws = Workspace::new();
        let planned = net.forward_with(&plan, &mut ws, x.as_slice()).to_vec();
        assert_eq!(planned.as_slice(), legacy.as_slice());
        // And through the executor front door.
        let mut ex = Executor::new();
        assert_eq!(ex.infer(&net, &x), legacy.as_slice());
    }

    #[test]
    fn planned_training_step_matches_legacy_gradients_bitwise() {
        // Run one forward/backward on two identical networks — one through
        // the legacy wrappers, one through the planned path — and compare
        // every accumulated gradient bit-for-bit.
        let mut legacy_net = paper_like_net();
        let mut planned_net = paper_like_net();
        let x = wavy_input(2 * 6 * 6, vec![2, 6, 6]);
        let loss_grad = vec![0.7f32, -0.3];

        let y_legacy = legacy_net.forward(&x, true);
        let gin_legacy = legacy_net.backward(&Tensor::from_vec(vec![2], loss_grad.clone()));

        let plan = planned_net.plan(&[2, 6, 6]);
        let mut ws = Workspace::new();
        let y_planned = planned_net
            .forward_train_with(&plan, &mut ws, x.as_slice())
            .to_vec();
        let gin_planned = planned_net
            .backward_with(&plan, &mut ws, &loss_grad)
            .to_vec();

        assert_eq!(y_planned.as_slice(), y_legacy.as_slice());
        assert_eq!(gin_planned.as_slice(), gin_legacy.as_slice());

        let mut grads_legacy = Vec::new();
        legacy_net.visit_params(&mut |_, g| grads_legacy.push(g.to_vec()));
        let mut grads_planned = Vec::new();
        planned_net.visit_params(&mut |_, g| grads_planned.push(g.to_vec()));
        assert_eq!(grads_legacy, grads_planned);

        // Both consumed the dropout stream identically.
        assert_eq!(legacy_net.rng_states(), planned_net.rng_states());
    }

    #[test]
    fn repeated_training_steps_stay_bit_identical() {
        let mut legacy_net = paper_like_net();
        let mut planned_net = paper_like_net();
        let plan = planned_net.plan(&[2, 6, 6]);
        let mut ws = Workspace::new();
        for step in 0..4 {
            let x = Tensor::from_vec(
                vec![2, 6, 6],
                (0..72)
                    .map(|i| ((i + step * 72) as f32 * 0.21).cos())
                    .collect(),
            );
            legacy_net.zero_grads();
            let yl = legacy_net.forward(&x, true);
            let (_, gl) = crate::loss::softmax_cross_entropy(&yl, &[1.0, 0.0]);
            legacy_net.backward(&gl);
            legacy_net.apply_gradients(0.05);

            planned_net.zero_grads();
            let yp = planned_net
                .forward_train_with(&plan, &mut ws, x.as_slice())
                .to_vec();
            let (_, gp) =
                crate::loss::softmax_cross_entropy(&Tensor::from_vec(vec![2], yp), &[1.0, 0.0]);
            planned_net.backward_with(&plan, &mut ws, gp.as_slice());
            planned_net.apply_gradients(0.05);
        }
        let mut wl = Vec::new();
        legacy_net.visit_params(&mut |w, _| wl.push(w.to_vec()));
        let mut wp = Vec::new();
        planned_net.visit_params(&mut |w, _| wp.push(w.to_vec()));
        assert_eq!(wl, wp);
    }

    #[test]
    fn batched_planned_inference_is_bit_identical_to_per_window() {
        let net = paper_like_net();
        let plan1 = net.plan(&[2, 6, 6]);
        let in_len = 2 * 6 * 6;
        for &batch in &[1usize, 2, 3, 7] {
            let xs: Vec<f32> = (0..in_len * batch)
                .map(|i| (i as f32 * 0.29).sin())
                .collect();
            let planb = net.plan_batch(&[2, 6, 6], batch);
            assert_eq!(planb.batch(), batch);
            let mut wsb = Workspace::new();
            let batched = net.forward_batch_with(&planb, &mut wsb, &xs).to_vec();
            let mut ws1 = Workspace::new();
            let mut single = Vec::new();
            for b in 0..batch {
                single.extend_from_slice(net.forward_with(
                    &plan1,
                    &mut ws1,
                    &xs[b * in_len..(b + 1) * in_len],
                ));
            }
            assert_eq!(batched, single, "batch={batch}");
        }
    }

    #[test]
    fn executor_infer_batch_matches_per_sample_infer() {
        let net = paper_like_net();
        let in_len = 2 * 6 * 6;
        let batch = 4;
        let xs: Vec<f32> = (0..in_len * batch)
            .map(|i| (i as f32 * 0.53).cos())
            .collect();
        let mut ex = Executor::new();
        let batched = ex.infer_batch(&net, &xs, &[2, 6, 6], batch).to_vec();
        let mut single = Vec::new();
        for b in 0..batch {
            let x = Tensor::from_vec(vec![2, 6, 6], xs[b * in_len..(b + 1) * in_len].to_vec());
            single.extend_from_slice(ex.infer(&net, &x));
        }
        assert_eq!(batched, single);
        // Alternating batched and single calls must not disturb either
        // cached plan (both slots stay warm).
        let again = ex.infer_batch(&net, &xs, &[2, 6, 6], batch).to_vec();
        assert_eq!(again, batched);
    }

    #[test]
    fn ragged_scorer_is_bit_identical_for_every_size_and_split() {
        let net = paper_like_net();
        let in_shape = [2usize, 6, 6];
        let in_len = 2 * 6 * 6;
        let max_batch = 9;
        let xs: Vec<f32> = (0..in_len * max_batch)
            .map(|i| (i as f32 * 0.53).cos())
            .collect();
        // Per-sample reference.
        let mut ex = Executor::new();
        let mut reference = Vec::new();
        for b in 0..max_batch {
            let x = Tensor::from_vec(in_shape.to_vec(), xs[b * in_len..(b + 1) * in_len].to_vec());
            reference.extend_from_slice(ex.infer(&net, &x));
        }
        let out_len = reference.len() / max_batch;
        let mut scorer = BatchScorer::new();
        // Every prefix size, scored in one ragged call, matches the
        // per-sample reference bitwise — independent of scoring order.
        for batch in 1..=max_batch {
            let scores = scorer
                .infer_ragged(&net, &xs[..batch * in_len], &in_shape, batch)
                .to_vec();
            assert_eq!(scores.len(), batch * out_len);
            for (i, (a, b)) in scores.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "batch {batch} output {i}");
            }
        }
    }

    #[test]
    fn ragged_scorer_splits_oversized_batches_and_caches_plans() {
        // A fat dense layer drives suggested_batch down to a small cap, so
        // a modest batch exercises the splitting path.
        let mut net = Network::new();
        net.push(Dense::new(6000, 50, 3));
        net.push(Relu::new());
        net.push(Dense::new(50, 2, 4));
        let mut scorer = BatchScorer::new();
        let cap = scorer.block_cap(&net, &[6000]);
        assert!(cap >= 1);
        let batch = 2 * cap + 1; // two full blocks plus a ragged tail
        let xs: Vec<f32> = (0..6000 * batch).map(|i| (i as f32 * 0.11).sin()).collect();
        let scores = scorer.infer_ragged(&net, &xs, &[6000], batch).to_vec();
        // Bit-identical to per-sample inference.
        let mut ex = Executor::new();
        for b in 0..batch {
            let x = Tensor::from_vec(vec![6000], xs[b * 6000..(b + 1) * 6000].to_vec());
            let single = ex.infer(&net, &x);
            for (i, (a, r)) in scores[b * 2..b * 2 + 2].iter().zip(single).enumerate() {
                assert_eq!(a.to_bits(), r.to_bits(), "sample {b} output {i}");
            }
        }
        // Steady state keeps at most two plans (full block + this tail),
        // and re-scoring the same sizes builds no more.
        let cached = scorer.cached_plans();
        assert!(cached <= 2, "cached {cached} plans");
        let _ = scorer.infer_ragged(&net, &xs, &[6000], batch);
        assert_eq!(scorer.cached_plans(), cached);
    }

    #[test]
    #[should_panic(expected = "ragged batch must be nonzero")]
    fn ragged_scorer_rejects_zero_batch() {
        let net = paper_like_net();
        let mut scorer = BatchScorer::new();
        let _ = scorer.infer_ragged(&net, &[], &[2, 6, 6], 0);
    }

    #[test]
    fn batched_plan_scales_arena_and_keeps_batch1_identical() {
        let net = paper_like_net();
        let p1 = net.plan(&[2, 6, 6]);
        let p4 = net.plan_batch(&[2, 6, 6], 4);
        assert_eq!(p1.batch(), 1);
        assert_eq!(p4.arena_len(), 4 * p1.arena_len());
        // Batched conv needs col + staging per block, strictly more than
        // four shared single-sample overlays would.
        assert!(p4.shared_scratch_len > 4 * p1.shared_scratch_len / 2);
        // suggested_batch is sane on both.
        assert!((1..=64).contains(&p1.suggested_batch()));
        assert!((1..=64).contains(&p4.suggested_batch()));
    }

    #[test]
    #[should_panic(expected = "single-sample entry point")]
    fn single_sample_entry_points_reject_batched_plans() {
        let net = paper_like_net();
        let plan = net.plan_batch(&[2, 6, 6], 2);
        let mut ws = Workspace::new();
        let _ = net.forward_with(&plan, &mut ws, &[0.0; 2 * 6 * 6]);
    }

    #[test]
    #[should_panic(expected = "batch must be nonzero")]
    fn zero_batch_plan_is_rejected() {
        let net = paper_like_net();
        let _ = net.plan_batch(&[2, 6, 6], 0);
    }

    #[test]
    fn empty_network_batched_is_identity() {
        let net = Network::new();
        let plan = net.plan_batch(&[2], 3);
        let mut ws = Workspace::new();
        let y = net.forward_batch_with(&plan, &mut ws, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(y, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn executor_replans_on_shape_change() {
        let mut net = Network::new();
        net.push(Conv2d::new(1, 2, 3, 1, 0));
        net.push(Relu::new());
        let mut ex = Executor::new();
        let a = ex.infer(&net, &Tensor::zeros(vec![1, 4, 4])).len();
        assert_eq!(a, 2 * 4 * 4);
        let b = ex.infer(&net, &Tensor::zeros(vec![1, 6, 6])).len();
        assert_eq!(b, 2 * 6 * 6);
        let c = ex.infer(&net, &Tensor::zeros(vec![1, 4, 4])).len();
        assert_eq!(c, 2 * 4 * 4);
    }

    #[test]
    fn empty_network_is_identity() {
        let net = Network::new();
        let plan = net.plan(&[3]);
        assert_eq!(plan.out_shape(), &[3]);
        let mut ws = Workspace::new();
        let y = net.forward_with(&plan, &mut ws, &[1.0, 2.0, 3.0]);
        assert_eq!(y, &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "different network")]
    fn plan_from_other_network_is_rejected() {
        let net = paper_like_net();
        let other = Network::new();
        let plan = other.plan(&[5]);
        let mut ws = Workspace::new();
        let _ = net.forward_with(&plan, &mut ws, &[0.0; 5]);
    }

    #[test]
    fn gradcheck_fused_epilogues_against_finite_difference() {
        // Gradient-check the fused conv+relu and dense+sigmoid blocks: the
        // analytic planned gradient must match central differences on the
        // unfused (legacy, standalone-activation) forward — pinning that
        // fusion changed neither forward values nor gradients.
        let mut net = Network::new();
        net.push(Conv2d::new(1, 2, 3, 1, 3));
        net.push(Relu::new());
        net.push(Flatten::new());
        net.push(Dense::new(2 * 4 * 4, 3, 4));
        net.push(Sigmoid::new());
        net.push(Dense::new(3, 2, 5));
        let x = wavy_input(16, vec![1, 4, 4]);
        let target = [0.0f32, 1.0];

        let plan = net.plan(&[1, 4, 4]);
        let mut ws = Workspace::new();
        net.zero_grads();
        let y = net
            .forward_train_with(&plan, &mut ws, x.as_slice())
            .to_vec();
        let (_, g) = crate::loss::softmax_cross_entropy(&Tensor::from_vec(vec![2], y), &target);
        net.backward_with(&plan, &mut ws, g.as_slice());

        let mut analytic = Vec::new();
        net.visit_params(&mut |_, g| analytic.push(g.to_vec()));

        // Finite differences through the legacy unfused forward.
        let eps = 1e-2f32;
        let mut numeric: Vec<Vec<f32>> = Vec::new();
        let mut slot = 0usize;
        loop {
            let mut lens = Vec::new();
            net.visit_params(&mut |w, _| lens.push(w.len()));
            if slot >= lens.len() {
                break;
            }
            let mut grads = vec![0.0f32; lens[slot]];
            for j in 0..lens[slot] {
                let mut eval = |delta: f32| {
                    let mut s = 0usize;
                    net.visit_params(&mut |w, _| {
                        if s == slot {
                            w[j] += delta;
                        }
                        s += 1;
                    });
                    let logits = net.forward_inference(&x);
                    let (l, _) = crate::loss::softmax_cross_entropy(&logits, &target);
                    let mut s = 0usize;
                    net.visit_params(&mut |w, _| {
                        if s == slot {
                            w[j] -= delta;
                        }
                        s += 1;
                    });
                    l
                };
                let lp = eval(eps);
                let lm = eval(-eps);
                grads[j] = (lp - lm) / (2.0 * eps);
            }
            numeric.push(grads);
            slot += 1;
        }
        assert_eq!(analytic.len(), numeric.len());
        for (a, n) in analytic.iter().zip(&numeric) {
            for (&av, &nv) in a.iter().zip(n) {
                assert!(
                    (av - nv).abs() <= 2e-2_f32.max(5e-2 * nv.abs()),
                    "analytic {av} vs numeric {nv}"
                );
            }
        }
    }
}
