//! Softmax cross-entropy with soft targets.
//!
//! Biased learning (paper §4.3) trains the non-hotspot class towards the
//! *soft* ground truth `y*_n = [1-ε, ε]` instead of the hard `[1, 0]`. The
//! cross-entropy gradient w.r.t. the logits is `softmax(x) - y*` for any
//! probability-vector target, so soft labels drop out of the same code
//! path.

use crate::Tensor;

/// Numerically-stable softmax of a logit slice.
///
/// # Panics
///
/// Panics on an empty slice.
///
/// # Examples
///
/// ```
/// let p = hotspot_nn::loss::softmax(&[0.0, 0.0]);
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// let q = hotspot_nn::loss::softmax(&[1000.0, 0.0]);
/// assert!((q[0] - 1.0).abs() < 1e-6); // no overflow
/// ```
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Numerically-stable softmax written into a caller-provided slice —
/// the allocation-free core [`softmax`] wraps, used by the planned scan
/// path so window scoring stays allocation-free. Bit-identical to
/// [`softmax`]: same max, same exponentials, same summation order, same
/// division.
///
/// # Panics
///
/// Panics on an empty slice or a length mismatch.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    assert!(!logits.is_empty(), "softmax of empty logits");
    assert_eq!(logits.len(), out.len(), "softmax output length mismatch");
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    for (o, &v) in out.iter_mut().zip(logits) {
        *o = (v - max).exp();
    }
    let sum: f32 = out.iter().sum();
    for o in out.iter_mut() {
        *o /= sum;
    }
}

/// Softmax cross-entropy loss and its gradient w.r.t. the logits.
///
/// `target` must be a probability vector of the same length as `logits`
/// (hard one-hot labels and biased soft labels are both probability
/// vectors). Returns `(loss, dloss/dlogits)`. The convention
/// `lim_{x→0} x·log x = 0` of paper Eq. (8) is respected because target
/// entries of exactly zero contribute nothing.
///
/// # Panics
///
/// Panics if lengths differ or `logits` is empty.
///
/// # Examples
///
/// ```
/// use hotspot_nn::Tensor;
///
/// let logits = Tensor::from_vec(vec![2], vec![2.0, -1.0]);
/// let (loss, grad) = hotspot_nn::loss::softmax_cross_entropy(&logits, &[1.0, 0.0]);
/// assert!(loss > 0.0);
/// // Gradient = p - y*.
/// let p = hotspot_nn::loss::softmax(logits.as_slice());
/// assert!((grad.as_slice()[0] - (p[0] - 1.0)).abs() < 1e-6);
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, target: &[f32]) -> (f32, Tensor) {
    let x = logits.as_slice();
    let mut grad = vec![0.0f32; x.len()];
    let loss = softmax_cross_entropy_into(x, target, &mut grad);
    (loss, Tensor::from_vec(vec![x.len()], grad))
}

/// Slice-based core of [`softmax_cross_entropy`]: writes `dloss/dlogits`
/// into `grad` and returns the loss, allocating nothing. Bit-identical to
/// the tensor wrapper (same softmax, same loss accumulation order, same
/// `p - y*` subtraction).
///
/// # Panics
///
/// Panics if lengths differ or `logits` is empty.
pub fn softmax_cross_entropy_into(logits: &[f32], target: &[f32], grad: &mut [f32]) -> f32 {
    assert_eq!(logits.len(), target.len(), "logits/target length mismatch");
    // `grad` temporarily holds the softmax probabilities.
    softmax_into(logits, grad);
    let mut loss = 0.0f32;
    for (pi, ti) in grad.iter().zip(target.iter()) {
        if *ti > 0.0 {
            loss -= ti * pi.max(1e-12).ln();
        }
    }
    for (gi, ti) in grad.iter_mut().zip(target.iter()) {
        *gi -= ti;
    }
    loss
}

/// Numerically-stable logistic sigmoid.
///
/// # Examples
///
/// ```
/// assert!((hotspot_nn::loss::sigmoid(0.0) - 0.5).abs() < 1e-6);
/// assert!(hotspot_nn::loss::sigmoid(-1000.0) >= 0.0); // no overflow
/// ```
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Multi-label sigmoid binary cross-entropy and its gradient w.r.t. the
/// logits: the per-corner hotspot head's loss, one independent Bernoulli
/// per process corner.
///
/// `target` entries must lie in `[0, 1]` (hard 0/1 corner labels or soft
/// targets). Returns `(mean loss, dloss/dlogits)`; the gradient of the
/// *mean* is `(σ(x) - y) / n`.
///
/// # Panics
///
/// Panics if lengths differ or `logits` is empty.
pub fn sigmoid_bce(logits: &Tensor, target: &[f32]) -> (f32, Tensor) {
    let x = logits.as_slice();
    let mut grad = vec![0.0f32; x.len()];
    let loss = sigmoid_bce_into(x, target, &mut grad);
    (loss, Tensor::from_vec(vec![x.len()], grad))
}

/// Slice-based core of [`sigmoid_bce`]: writes the gradient into `grad`
/// and returns the mean loss, allocating nothing. Uses the
/// `max(x, 0) - x·y + ln(1 + e^{-|x|})` stable form, so large positive or
/// negative logits never overflow.
///
/// # Panics
///
/// Panics if lengths differ or `logits` is empty.
pub fn sigmoid_bce_into(logits: &[f32], target: &[f32], grad: &mut [f32]) -> f32 {
    assert!(!logits.is_empty(), "sigmoid BCE of empty logits");
    assert_eq!(logits.len(), target.len(), "logits/target length mismatch");
    assert_eq!(logits.len(), grad.len(), "logits/grad length mismatch");
    let n = logits.len() as f32;
    let mut loss = 0.0f32;
    for ((gi, &xi), &ti) in grad.iter_mut().zip(logits).zip(target) {
        loss += xi.max(0.0) - xi * ti + (-xi.abs()).exp().ln_1p();
        *gi = (sigmoid(xi) - ti) / n;
    }
    loss / n
}

/// The paper's hotspot ground truth `y*_h = [0, 1]` (index 1 = hotspot
/// probability, matching Eq. (6)).
pub const HOTSPOT_TARGET: [f32; 2] = [0.0, 1.0];

/// The *unbiased* non-hotspot ground truth `y*_n = [1, 0]`.
pub const NON_HOTSPOT_TARGET: [f32; 2] = [1.0, 0.0];

/// The biased non-hotspot ground truth `y^ε_n = [1-ε, ε]` (paper Theorem 1).
///
/// # Panics
///
/// Panics unless `0.0 <= epsilon < 0.5`, the validity range of Theorem 1.
pub fn biased_non_hotspot_target(epsilon: f32) -> [f32; 2] {
    assert!(
        (0.0..0.5).contains(&epsilon),
        "bias ε must be in [0, 0.5), got {epsilon}"
    );
    [1.0 - epsilon, epsilon]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&[1.0, 2.0]);
        let b = softmax(&[101.0, 102.0]);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![2], vec![20.0, -20.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &NON_HOTSPOT_TARGET);
        assert!(loss < 1e-6);
    }

    #[test]
    fn uniform_target_minimised_at_uniform_logits() {
        let (l_uniform, g) =
            softmax_cross_entropy(&Tensor::from_vec(vec![2], vec![0.0, 0.0]), &[0.5, 0.5]);
        assert!(g.abs_max() < 1e-6, "gradient vanishes at the optimum");
        let (l_skewed, _) =
            softmax_cross_entropy(&Tensor::from_vec(vec![2], vec![3.0, 0.0]), &[0.5, 0.5]);
        assert!(l_skewed > l_uniform);
    }

    #[test]
    fn gradient_is_p_minus_target() {
        let logits = Tensor::from_vec(vec![2], vec![0.7, -0.3]);
        let target = biased_non_hotspot_target(0.2);
        let (_, grad) = softmax_cross_entropy(&logits, &target);
        let p = softmax(logits.as_slice());
        assert!((grad.as_slice()[0] - (p[0] - 0.8)).abs() < 1e-6);
        assert!((grad.as_slice()[1] - (p[1] - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let target = [0.3f32, 0.7];
        let x0 = vec![0.4f32, -0.9];
        let (_, grad) = softmax_cross_entropy(&Tensor::from_vec(vec![2], x0.clone()), &target);
        let eps = 1e-3f32;
        for i in 0..2 {
            let mut xp = x0.clone();
            xp[i] += eps;
            let (lp, _) = softmax_cross_entropy(&Tensor::from_vec(vec![2], xp), &target);
            let mut xm = x0.clone();
            xm[i] -= eps;
            let (lm, _) = softmax_cross_entropy(&Tensor::from_vec(vec![2], xm), &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "fd {fd} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn biased_target_bounds() {
        assert_eq!(biased_non_hotspot_target(0.0), NON_HOTSPOT_TARGET);
        let t = biased_non_hotspot_target(0.3);
        assert!((t[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bias ε")]
    fn bias_half_rejected() {
        let _ = biased_non_hotspot_target(0.5);
    }

    #[test]
    fn sigmoid_bce_gradient_is_sigma_minus_target_over_n() {
        let logits = Tensor::from_vec(vec![3], vec![0.5, -1.2, 2.0]);
        let target = [1.0f32, 0.0, 1.0];
        let (_, grad) = sigmoid_bce(&logits, &target);
        for i in 0..3 {
            let expect = (sigmoid(logits.as_slice()[i]) - target[i]) / 3.0;
            assert!((grad.as_slice()[i] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn sigmoid_bce_matches_finite_difference() {
        let target = [1.0f32, 0.2, 0.0];
        let x0 = vec![0.4f32, -0.9, 1.7];
        let (_, grad) = sigmoid_bce(&Tensor::from_vec(vec![3], x0.clone()), &target);
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut xp = x0.clone();
            xp[i] += eps;
            let (lp, _) = sigmoid_bce(&Tensor::from_vec(vec![3], xp), &target);
            let mut xm = x0.clone();
            xm[i] -= eps;
            let (lm, _) = sigmoid_bce(&Tensor::from_vec(vec![3], xm), &target);
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < 1e-3,
                "fd {fd} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn sigmoid_bce_is_overflow_safe() {
        let logits = Tensor::from_vec(vec![2], vec![1000.0, -1000.0]);
        let (loss, grad) = sigmoid_bce(&logits, &[1.0, 0.0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.as_slice().iter().all(|g| g.is_finite()));
        let (loss_bad, _) = sigmoid_bce(&logits, &[0.0, 1.0]);
        assert!(loss_bad.is_finite() && loss_bad > 100.0);
    }

    #[test]
    fn perfect_multi_label_prediction_has_near_zero_loss() {
        let logits = Tensor::from_vec(vec![3], vec![20.0, -20.0, 20.0]);
        let (loss, grad) = sigmoid_bce(&logits, &[1.0, 0.0, 1.0]);
        assert!(loss < 1e-6);
        assert!(grad.abs_max() < 1e-6);
    }
}
