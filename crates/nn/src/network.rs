//! Sequential network container.

use crate::layers::Layer;
use crate::Tensor;
use std::fmt;

/// A sequential stack of [`Layer`]s.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Dense, Relu};
/// use hotspot_nn::{Network, Tensor};
///
/// let mut net = Network::new();
/// net.push(Dense::new(4, 8, 0));
/// net.push(Relu::new());
/// net.push(Dense::new(8, 2, 1));
/// let logits = net.forward(&Tensor::zeros(vec![4]), false);
/// assert_eq!(logits.shape(), &[2]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl Network {
    /// An empty network.
    pub fn new() -> Self {
        Network { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Shared view of the layer stack for the execution planner.
    pub(crate) fn layers_ref(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Mutable view of the layer stack for planned training passes.
    pub(crate) fn layers_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Full forward pass. `train` toggles dropout behaviour.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Full forward pass in inference mode without mutating any layer
    /// state — the shared-reference counterpart of `forward(input, false)`.
    ///
    /// Bit-identical to `forward(input, false)` (each layer guarantees
    /// this for [`Layer::forward_inference`]), but callable through `&self`
    /// so many worker threads can score against one network concurrently
    /// instead of cloning per-worker replicas.
    pub fn forward_inference(&self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_inference(&x);
        }
        x
    }

    /// Inference over a batch of same-shaped inputs on the **batched
    /// planner** ([`Network::forward_batch_with`]): each worker packs its
    /// inputs into sample-major blocks (block size from
    /// [`crate::engine::ShapePlan::suggested_batch`]) and scores a whole
    /// block per planned pass, streaming every weight matrix once per
    /// block instead of once per input. Workers all share `&self` — no
    /// replica cloning — and results come back in input order.
    ///
    /// Bit-identical to the serial [`Network::forward_inference`] loop for
    /// any worker policy: GEMM batch columns are computed independently
    /// (see [`crate::Layer::forward_batch_into`]) and per-input work is
    /// pure. Training-mode batching is deliberately not offered here —
    /// stochastic layers draw per-replica streams; use
    /// [`crate::parallel`].
    ///
    /// # Panics
    ///
    /// Panics when the inputs do not all share one shape.
    pub fn forward_batch(&self, inputs: &[Tensor], parallelism: crate::Parallelism) -> Vec<Tensor> {
        if inputs.is_empty() {
            // Nothing to score: avoid planning a degenerate workspace.
            return Vec::new();
        }
        let in_shape = inputs[0].shape().to_vec();
        for x in inputs {
            assert_eq!(
                x.shape(),
                in_shape.as_slice(),
                "forward_batch inputs must share one shape"
            );
        }
        let in_len: usize = in_shape.iter().product();
        let probe = self.plan(&in_shape);
        let out_len = probe.out_len();
        if in_len == 0 || out_len == 0 {
            // Zero-length samples cannot be packed into flat sample-major
            // blocks; score the degenerate shapes one by one.
            return inputs.iter().map(|x| self.forward_inference(x)).collect();
        }
        let out_shape = probe.out_shape().to_vec();
        let block = probe.suggested_batch().min(inputs.len());
        let block_plan = self.plan_batch(&in_shape, block);
        let workers = parallelism.workers().min(inputs.len()).max(1);

        let score_chunk = |slice: &[Tensor]| -> Vec<Tensor> {
            let mut ws = crate::engine::Workspace::new();
            let mut flat = vec![0.0f32; block * in_len];
            // The last chunk of a worker's slice can be ragged
            // (`slice.len() % block != 0`); its plan is built lazily, once.
            let mut tail_plan: Option<crate::engine::ShapePlan> = None;
            let mut out = Vec::with_capacity(slice.len());
            for chunk in slice.chunks(block) {
                let b = chunk.len();
                for (j, x) in chunk.iter().enumerate() {
                    flat[j * in_len..(j + 1) * in_len].copy_from_slice(x.as_slice());
                }
                let plan = if b == block {
                    &block_plan
                } else {
                    tail_plan.get_or_insert_with(|| self.plan_batch(&in_shape, b))
                };
                let y = self.forward_batch_with(plan, &mut ws, &flat[..b * in_len]);
                for ys in y.chunks_exact(out_len) {
                    out.push(Tensor::from_vec(out_shape.clone(), ys.to_vec()));
                }
            }
            out
        };
        if workers == 1 {
            return score_chunk(inputs);
        }
        let chunk = inputs.len().div_ceil(workers);
        let mut outputs: Vec<Vec<Tensor>> = vec![Vec::new(); workers];
        let score_chunk = &score_chunk;
        if let Err(payload) = crossbeam::thread::scope(|scope| {
            for (worker, slot) in outputs.iter_mut().enumerate() {
                // Ceil-division chunking can leave trailing workers past
                // the end (13 inputs / 8 workers); clamp them to empty.
                let start = (worker * chunk).min(inputs.len());
                let slice = &inputs[start..(start + chunk).min(inputs.len())];
                scope.spawn(move |_| {
                    *slot = score_chunk(slice);
                });
            }
        }) {
            // A worker panic is a bug in layer code, not a recoverable
            // condition: propagate the original payload instead of wrapping
            // it in a second panic message.
            std::panic::resume_unwind(payload);
        }
        outputs.into_iter().flatten().collect()
    }

    /// Full backward pass from a loss gradient; parameter gradients
    /// accumulate inside each layer. Returns the gradient at the input
    /// (rarely needed, but exposed per C-INTERMEDIATE).
    pub fn backward(&mut self, loss_grad: &Tensor) -> Tensor {
        let mut g = loss_grad.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Applies one vanilla gradient-descent step: `w -= lr * g`.
    ///
    /// Callers accumulating over an `m`-sample mini-batch pass
    /// `lr / m` to average (paper Algorithm 1 line 9).
    pub fn apply_gradients(&mut self, lr: f32) {
        self.visit_params(&mut |w, g| {
            for (wi, gi) in w.iter_mut().zip(g.iter()) {
                *wi -= lr * gi;
            }
        });
    }

    /// Visits every (parameters, gradients) pair in layer order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(visitor);
        }
    }

    /// RNG states of every stochastic layer, in layer order (deterministic
    /// layers are skipped). Together with the parameters this makes a
    /// training state fully resumable: see [`Network::restore_rng_states`].
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        self.layers.iter().filter_map(|l| l.rng_state()).collect()
    }

    /// Restores RNG states captured by [`Network::rng_states`] into this
    /// network's stochastic layers, in the same layer order.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::Format`] when `states` does not hold
    /// exactly one entry per stochastic layer — the checkpoint was produced
    /// by a differently-shaped network.
    pub fn restore_rng_states(&mut self, states: &[[u64; 4]]) -> Result<(), crate::NnError> {
        let expected = self
            .layers
            .iter()
            .filter(|l| l.rng_state().is_some())
            .count();
        if states.len() != expected {
            return Err(crate::NnError::Format(format!(
                "checkpoint holds {} RNG states but the network has {expected} stochastic layers",
                states.len()
            )));
        }
        let mut it = states.iter();
        for layer in &mut self.layers {
            if layer.rng_state().is_some() {
                // `it` yields exactly `expected` items and we just checked
                // the count, so `next()` cannot fail here.
                if let Some(&s) = it.next() {
                    layer.set_rng_state(s);
                }
            }
        }
        Ok(())
    }

    /// Total trainable parameter count.
    pub fn parameter_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |w, _| count += w.len());
        count
    }

    /// Largest-magnitude accumulated gradient (for debugging/telemetry).
    pub fn grad_abs_max(&mut self) -> f32 {
        let mut m = 0.0f32;
        self.visit_params(&mut |_, g| {
            for &v in g.iter() {
                m = m.max(v.abs());
            }
        });
        m
    }

    /// Architecture summary rows: `(name, output shape)` for the given
    /// input shape — regenerates the paper's Table 1.
    pub fn summary(&self, input_shape: &[usize]) -> Vec<(String, Vec<usize>)> {
        let mut rows = Vec::with_capacity(self.layers.len());
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.out_shape(&shape);
            rows.push((layer.name().to_string(), shape.clone()));
        }
        rows
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Network[{} layers]", self.layers.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Flatten, MaxPool2, Relu};
    use crate::loss;

    fn tiny_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(3, 4, 0));
        net.push(Relu::new());
        net.push(Dense::new(4, 2, 1));
        net
    }

    #[test]
    fn forward_shape() {
        let mut net = tiny_net();
        let y = net.forward(&Tensor::zeros(vec![3]), false);
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn parameter_count_sums_layers() {
        let mut net = tiny_net();
        assert_eq!(net.parameter_count(), (3 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        let mut net = tiny_net();
        let x = Tensor::from_vec(vec![3], vec![0.5, -0.2, 0.8]);
        let target = [0.0f32, 1.0];
        let (l0, g) = loss::softmax_cross_entropy(&net.forward(&x, true), &target);
        net.zero_grads();
        let _ = net.forward(&x, true);
        net.backward(&g);
        net.apply_gradients(0.1);
        let (l1, _) = loss::softmax_cross_entropy(&net.forward(&x, false), &target);
        assert!(l1 < l0, "loss should decrease: {l0} -> {l1}");
    }

    #[test]
    fn summary_tracks_shapes() {
        let mut net = Network::new();
        net.push(MaxPool2::new());
        net.push(Flatten::new());
        net.push(Dense::new(4, 2, 0));
        let rows = net.summary(&[1, 4, 4]);
        assert_eq!(rows[0], ("maxpool".to_string(), vec![1, 2, 2]));
        assert_eq!(rows[1], ("flatten".to_string(), vec![4]));
        assert_eq!(rows[2], ("fc".to_string(), vec![2]));
    }

    #[test]
    fn forward_batch_is_bit_identical_to_serial() {
        use crate::Parallelism;
        let mut net = tiny_net();
        // 70 inputs: tiny_net's suggested block is 64, so every worker
        // partition exercises full blocks plus a ragged tail.
        let inputs: Vec<Tensor> = (0..70)
            .map(|i| {
                Tensor::from_vec(
                    vec![3],
                    (0..3)
                        .map(|j| ((i * 5 + j * 3) % 7) as f32 / 7.0 - 0.5)
                        .collect(),
                )
            })
            .collect();
        let serial: Vec<Tensor> = inputs.iter().map(|x| net.forward(x, false)).collect();
        for workers in [1, 2, 3, 8, 64] {
            let batched = net.forward_batch(&inputs, Parallelism::fixed(workers).unwrap());
            assert_eq!(batched, serial, "workers = {workers}");
        }
        let batched = net.forward_batch(&inputs, Parallelism::auto());
        assert_eq!(batched, serial);
        // Empty batches are fine.
        assert!(net.forward_batch(&[], Parallelism::auto()).is_empty());
    }

    #[test]
    fn concurrent_forward_batch_on_shared_network_agrees_with_serial() {
        use crate::Parallelism;
        // Regression for the PR 3 `&self`/`Parallelism` convention:
        // several threads batch-scoring through ONE shared `&Network`
        // must compile (no `&mut self`) and agree with the serial loop.
        let mut net = tiny_net();
        let inputs: Vec<Tensor> = (0..9)
            .map(|i| Tensor::from_vec(vec![3], vec![i as f32 * 0.1, -0.2, 0.3]))
            .collect();
        let serial: Vec<Tensor> = inputs.iter().map(|x| net.forward(x, false)).collect();
        let shared = &net;
        let inputs = &inputs;
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(move |_| {
                        shared.forward_batch(inputs, Parallelism::fixed(2).unwrap())
                    })
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), serial);
            }
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "share one shape")]
    fn forward_batch_rejects_mixed_shapes() {
        let net = tiny_net();
        let _ = net.forward_batch(
            &[Tensor::zeros(vec![3]), Tensor::zeros(vec![1, 3])],
            crate::Parallelism::serial(),
        );
    }

    #[test]
    fn forward_inference_is_bit_identical_to_eval_forward() {
        use crate::layers::{Conv2d, Dropout, Flatten, MaxPool2};
        // Cover every layer kind that appears in the paper architecture,
        // dropout included (identity at inference, no RNG draw).
        let mut net = Network::new();
        net.push(Conv2d::new(2, 3, 3, 1, 5));
        net.push(Relu::new());
        net.push(MaxPool2::new());
        net.push(Flatten::new());
        net.push(Dense::new(3 * 3 * 3, 8, 6));
        net.push(Dropout::new(0.5, 7));
        net.push(Dense::new(8, 2, 8));
        let x = Tensor::from_vec(
            vec![2, 6, 6],
            (0..72).map(|i| (i as f32 * 0.37).sin()).collect(),
        );
        let rng_before = net.rng_states();
        let inferred = net.forward_inference(&x);
        assert_eq!(net.rng_states(), rng_before, "inference must not draw RNG");
        let reference = net.forward(&x, false);
        assert_eq!(inferred, reference);
    }

    #[test]
    fn rng_states_roundtrip_resumes_dropout_stream() {
        use crate::layers::Dropout;
        let mut net = Network::new();
        net.push(Dense::new(8, 8, 0));
        net.push(Dropout::new(0.5, 7));
        net.push(Dense::new(8, 2, 1));
        net.push(Dropout::new(0.3, 9));
        let x = Tensor::from_vec(vec![8], vec![0.25; 8]);
        // Advance the streams, snapshot, advance further.
        let _ = net.forward(&x, true);
        let states = net.rng_states();
        assert_eq!(states.len(), 2);
        let after: Vec<Tensor> = (0..3).map(|_| net.forward(&x, true)).collect();
        // Rewind and replay: identical mask sequence.
        net.restore_rng_states(&states).unwrap();
        let replay: Vec<Tensor> = (0..3).map(|_| net.forward(&x, true)).collect();
        assert_eq!(after, replay);
        // Wrong cardinality is rejected.
        assert!(net.restore_rng_states(&states[..1]).is_err());
        assert!(tiny_net().restore_rng_states(&states).is_err());
    }

    #[test]
    fn zero_grads_clears() {
        let mut net = tiny_net();
        let x = Tensor::zeros(vec![3]);
        let y = net.forward(&x, true);
        let (_, g) = loss::softmax_cross_entropy(&y, &[1.0, 0.0]);
        net.backward(&g);
        assert!(net.grad_abs_max() > 0.0);
        net.zero_grads();
        assert_eq!(net.grad_abs_max(), 0.0);
    }
}
