//! Mini-batch index sampling.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Draws random mini-batches of indices over a dataset of `len` items.
///
/// [`BatchSampler::sample`] draws *with replacement* (the "randomly
/// sample m instances" of paper Algorithm 1 line 5);
/// [`BatchSampler::epoch`] yields a shuffled full pass for SGD-style
/// training and deterministic evaluation orders.
///
/// # Examples
///
/// ```
/// use hotspot_nn::data::BatchSampler;
/// use rand::SeedableRng;
///
/// let mut sampler = BatchSampler::new(100, rand::rngs::StdRng::seed_from_u64(4));
/// let batch = sampler.sample(16);
/// assert_eq!(batch.len(), 16);
/// assert!(batch.iter().all(|&i| i < 100));
/// ```
#[derive(Debug, Clone)]
pub struct BatchSampler {
    len: usize,
    rng: StdRng,
}

impl BatchSampler {
    /// Creates a sampler over `len` items.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize, rng: StdRng) -> Self {
        assert!(len > 0, "cannot sample from an empty dataset");
        BatchSampler { len, rng }
    }

    /// Draws `m` indices uniformly with replacement.
    pub fn sample(&mut self, m: usize) -> Vec<usize> {
        (0..m).map(|_| self.rng.gen_range(0..self.len)).collect()
    }

    /// A shuffled permutation of all indices (one epoch).
    pub fn epoch(&mut self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len).collect();
        idx.shuffle(&mut self.rng);
        idx
    }

    /// The sampler's RNG state, for checkpoint/resume support.
    #[inline]
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores an RNG state captured by [`BatchSampler::rng_state`],
    /// continuing the draw sequence exactly where the snapshot left off.
    #[inline]
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sampler(len: usize, seed: u64) -> BatchSampler {
        BatchSampler::new(len, StdRng::seed_from_u64(seed))
    }

    #[test]
    fn sample_bounds_and_size() {
        let mut s = sampler(10, 1);
        let b = s.sample(100);
        assert_eq!(b.len(), 100);
        assert!(b.iter().all(|&i| i < 10));
        // With replacement: 100 draws from 10 items must repeat.
        let mut uniq = b.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() <= 10);
    }

    #[test]
    fn epoch_is_a_permutation() {
        let mut s = sampler(50, 2);
        let mut e = s.epoch();
        assert_eq!(e.len(), 50);
        e.sort_unstable();
        assert_eq!(e, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_determinism() {
        assert_eq!(sampler(20, 3).sample(8), sampler(20, 3).sample(8));
        assert_ne!(sampler(20, 3).sample(8), sampler(20, 4).sample(8));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_rejected() {
        let _ = sampler(0, 0);
    }

    #[test]
    fn rng_state_roundtrip_resumes_draw_sequence() {
        let mut s = sampler(64, 5);
        let _ = s.sample(17);
        let state = s.rng_state();
        let expected: Vec<Vec<usize>> = (0..3).map(|_| s.sample(9)).collect();
        s.set_rng_state(state);
        let replayed: Vec<Vec<usize>> = (0..3).map(|_| s.sample(9)).collect();
        assert_eq!(expected, replayed);
    }

    #[test]
    fn coverage_is_roughly_uniform() {
        let mut s = sampler(4, 9);
        let mut counts = [0usize; 4];
        for i in s.sample(4000) {
            counts[i] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts {counts:?}");
        }
    }
}
