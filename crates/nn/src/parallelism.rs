//! Worker-count policy for batch inference.
//!
//! Earlier releases threaded a raw `threads: usize` through every batch
//! entry point (the since-removed `predict_batch_threaded`,
//! `evaluate_threaded`, `predict_all_parallel`, and
//! `forward_batch_inference` shims), forcing each call site to invent a
//! worker count and each API to re-validate it. [`Parallelism`]
//! centralises the policy: it is configured once, validated at
//! construction, and resolved to a concrete worker count only where
//! threads are actually spawned. Inference is pure (see
//! `Network::forward_inference`), so the chosen worker count never
//! changes results — only latency.
//!
//! The type lives here (rather than in the detector crate) because
//! [`crate::Network::forward_batch`] is the lowest-level API that takes
//! one; downstream crates re-export it.

use crate::NnError;
use serde::{Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
enum Mode {
    Auto,
    Fixed(usize),
}

/// How many workers batch scoring fans out over.
///
/// Construct with [`Parallelism::auto`] (one worker per available core —
/// the default), [`Parallelism::serial`], or [`Parallelism::fixed`]
/// (validated: a zero worker count is rejected at construction instead of
/// surfacing at every call site).
///
/// # Examples
///
/// ```
/// use hotspot_nn::Parallelism;
///
/// assert_eq!(Parallelism::serial().workers(), 1);
/// assert_eq!(Parallelism::fixed(4).unwrap().workers(), 4);
/// assert!(Parallelism::fixed(0).is_err());
/// assert!(Parallelism::default().workers() >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Parallelism(Mode);

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism(Mode::Auto)
    }
}

impl Parallelism {
    /// One worker per available CPU core, resolved at use time.
    pub fn auto() -> Self {
        Parallelism(Mode::Auto)
    }

    /// Exactly one worker (no threads spawned).
    pub fn serial() -> Self {
        Parallelism(Mode::Fixed(1))
    }

    /// Exactly `workers` workers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] when `workers == 0`.
    pub fn fixed(workers: usize) -> Result<Self, NnError> {
        if workers == 0 {
            return Err(NnError::InvalidConfig(
                "parallelism requires at least one worker",
            ));
        }
        Ok(Parallelism(Mode::Fixed(workers)))
    }

    /// The concrete worker count: the fixed count, or the number of
    /// available cores (at least 1) for [`Parallelism::auto`].
    pub fn workers(&self) -> usize {
        match self.0 {
            Mode::Auto => std::thread::available_parallelism().map_or(1, |n| n.get()),
            Mode::Fixed(n) => n,
        }
    }

    /// Whether this policy never spawns worker threads.
    pub fn is_serial(&self) -> bool {
        matches!(self.0, Mode::Fixed(1))
    }
}

impl fmt::Display for Parallelism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Mode::Auto => write!(f, "auto"),
            Mode::Fixed(n) => write!(f, "{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_resolution() {
        assert_eq!(Parallelism::serial().workers(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::fixed(3).unwrap().workers(), 3);
        assert!(!Parallelism::fixed(3).unwrap().is_serial());
        assert!(Parallelism::auto().workers() >= 1);
        assert_eq!(Parallelism::default(), Parallelism::auto());
        assert!(matches!(
            Parallelism::fixed(0),
            Err(NnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn displays_policy() {
        assert_eq!(Parallelism::auto().to_string(), "auto");
        assert_eq!(Parallelism::fixed(8).unwrap().to_string(), "8");
    }
}
