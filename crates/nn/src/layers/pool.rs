//! 2×2 max pooling.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// 2×2 max pooling with stride 2 on CHW tensors (the paper's pooling
/// configuration, Table 1).
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// common deep-learning default. The argmax indices backward needs live in
/// the caller-provided index scratch ([`Layer::idx_len`]), so planned
/// training reuses one buffer across steps.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, MaxPool2};
/// use hotspot_nn::Tensor;
///
/// let mut pool = MaxPool2::new();
/// let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
/// let y = pool.forward(&x, true);
/// assert_eq!(y.as_slice(), &[5.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    cache: LegacyCache,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }

    fn check_input(in_shape: &[usize]) -> (usize, usize, usize) {
        assert_eq!(in_shape.len(), 3, "maxpool input must be CHW");
        let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
        assert!(h >= 2 && w >= 2, "maxpool needs at least 2x2 spatial input");
        (c, h, w)
    }
}

impl Layer for MaxPool2 {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (c, h, w) = Self::check_input(in_shape);
        vec![c, h / 2, w / 2]
    }

    fn idx_len(&self, in_shape: &[usize]) -> usize {
        let (c, h, w) = Self::check_input(in_shape);
        c * (h / 2) * (w / 2)
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        let (c, h, w) = Self::check_input(in_shape);
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(y.len(), c * oh * ow, "maxpool output length");
        assert_eq!(idx.len(), c * oh * ow, "maxpool index scratch length");
        let mut o = 0usize;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Strict-`>` scan: earliest maximum wins ties, exactly
                    // like the historical per-tensor implementation.
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (iy, ix) = (oy * 2 + dy, ox * 2 + dx);
                            let flat = (ch * h + iy) * w + ix;
                            let v = x[flat];
                            if v > best {
                                best = v;
                                best_idx = flat;
                            }
                        }
                    }
                    y[o] = best;
                    idx[o] = best_idx;
                    o += 1;
                }
            }
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        assert_eq!(
            ctx.grad.len(),
            ctx.idx.len(),
            "maxpool backward before forward or shape mismatch"
        );
        // Scatter-add into the caller-zero-filled input gradient.
        for (&g, &i) in ctx.grad.iter().zip(ctx.idx) {
            grad_in[i] += g;
        }
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![2.5]));
        assert_eq!(g.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn channels_are_independent() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0, 40.0]);
    }

    #[test]
    fn odd_dimensions_floor() {
        let mut pool = MaxPool2::new();
        let y = pool.forward(&Tensor::zeros(vec![1, 5, 7]), true);
        assert_eq!(y.shape(), &[1, 2, 3]);
        assert_eq!(pool.out_shape(&[1, 5, 7]), vec![1, 2, 3]);
    }

    #[test]
    fn negative_values_pool_correctly() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![-5.0, -1.0, -3.0, -2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[-1.0]);
    }
}
