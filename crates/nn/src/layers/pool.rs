//! 2×2 max pooling.

use super::Layer;
use crate::Tensor;

/// 2×2 max pooling with stride 2 on CHW tensors (the paper's pooling
/// configuration, Table 1).
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// common deep-learning default.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, MaxPool2};
/// use hotspot_nn::Tensor;
///
/// let mut pool = MaxPool2::new();
/// let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
/// let y = pool.forward(&x, true);
/// assert_eq!(y.as_slice(), &[5.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "maxpool input must be CHW");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h >= 2 && w >= 2, "maxpool needs at least 2x2 spatial input");
        let (oh, ow) = (h / 2, w / 2);
        self.in_shape = s.to_vec();
        self.argmax = Vec::with_capacity(c * oh * ow);
        let mut out = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (iy, ix) = (oy * 2 + dy, ox * 2 + dx);
                            let v = input.at3(ch, iy, ix);
                            if v > best {
                                best = v;
                                best_idx = (ch * h + iy) * w + ix;
                            }
                        }
                    }
                    out.push(best);
                    self.argmax.push(best_idx);
                }
            }
        }
        Tensor::from_vec(vec![c, oh, ow], out)
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "maxpool input must be CHW");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h >= 2 && w >= 2, "maxpool needs at least 2x2 spatial input");
        let (oh, ow) = (h / 2, w / 2);
        // Same strict-`>` scan as `forward`, minus the argmax bookkeeping.
        let mut out = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let v = input.at3(ch, oy * 2 + dy, ox * 2 + dx);
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out.push(best);
                }
            }
        }
        Tensor::from_vec(vec![c, oh, ow], out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.len(),
            self.argmax.len(),
            "maxpool backward before forward or shape mismatch"
        );
        let mut out = Tensor::zeros(self.in_shape.clone());
        for (g, &idx) in grad.as_slice().iter().zip(self.argmax.iter()) {
            out.as_mut_slice()[idx] += g;
        }
        out
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input[0], input[1] / 2, input[2] / 2]
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![2.5]));
        assert_eq!(g.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn channels_are_independent() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0, 40.0]);
    }

    #[test]
    fn odd_dimensions_floor() {
        let mut pool = MaxPool2::new();
        let y = pool.forward(&Tensor::zeros(vec![1, 5, 7]), true);
        assert_eq!(y.shape(), &[1, 2, 3]);
        assert_eq!(pool.output_shape(&[1, 5, 7]), vec![1, 2, 3]);
    }

    #[test]
    fn negative_values_pool_correctly() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![-5.0, -1.0, -3.0, -2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[-1.0]);
    }
}
