//! 2×2 max pooling.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// 2×2 max pooling with stride 2 on CHW tensors (the paper's pooling
/// configuration, Table 1).
///
/// Odd trailing rows/columns are dropped (floor semantics), matching the
/// common deep-learning default. The argmax indices backward needs live in
/// the caller-provided index scratch ([`Layer::idx_len`]), so planned
/// training reuses one buffer across steps.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, MaxPool2};
/// use hotspot_nn::Tensor;
///
/// let mut pool = MaxPool2::new();
/// let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]);
/// let y = pool.forward(&x, true);
/// assert_eq!(y.as_slice(), &[5.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MaxPool2 {
    cache: LegacyCache,
}

impl MaxPool2 {
    /// Creates a 2×2/stride-2 max-pooling layer.
    pub fn new() -> Self {
        MaxPool2::default()
    }

    fn check_input(in_shape: &[usize]) -> (usize, usize, usize) {
        assert_eq!(in_shape.len(), 3, "maxpool input must be CHW");
        let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
        assert!(h >= 2 && w >= 2, "maxpool needs at least 2x2 spatial input");
        (c, h, w)
    }
}

impl Layer for MaxPool2 {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (c, h, w) = Self::check_input(in_shape);
        vec![c, h / 2, w / 2]
    }

    fn idx_len(&self, in_shape: &[usize]) -> usize {
        let (c, h, w) = Self::check_input(in_shape);
        c * (h / 2) * (w / 2)
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        let (c, h, w) = Self::check_input(in_shape);
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(y.len(), c * oh * ow, "maxpool output length");
        assert_eq!(idx.len(), c * oh * ow, "maxpool index scratch length");
        let mut o = 0usize;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Strict-`>` scan: earliest maximum wins ties, exactly
                    // like the historical per-tensor implementation.
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (iy, ix) = (oy * 2 + dy, ox * 2 + dx);
                            let flat = (ch * h + iy) * w + ix;
                            let v = x[flat];
                            if v > best {
                                best = v;
                                best_idx = flat;
                            }
                        }
                    }
                    y[o] = best;
                    idx[o] = best_idx;
                    o += 1;
                }
            }
        }
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        batch: usize,
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let (c, h, w) = Self::check_input(in_shape);
        let in_len = c * h * w;
        let out_len = c * (h / 2) * (w / 2);
        assert_eq!(x.len(), in_len * batch, "batched input length");
        assert_eq!(y.len(), out_len * batch, "batched output length");
        #[cfg(target_arch = "x86_64")]
        if w <= 16 && crate::gemm::kernel_backend() == crate::gemm::KernelBackend::Avx512 {
            // Inference-only fast path: argmax indices are not produced
            // (the per-sample default overwrites them sample-by-sample
            // anyway, so batched callers can never rely on them).
            for j in 0..batch {
                unsafe {
                    simd::pool_rows_avx512(
                        &x[j * in_len..(j + 1) * in_len],
                        c,
                        h,
                        w,
                        &mut y[j * out_len..(j + 1) * out_len],
                    );
                }
            }
            return;
        }
        let idx_len = self.idx_len(in_shape);
        for j in 0..batch {
            self.forward_into(
                &x[j * in_len..(j + 1) * in_len],
                in_shape,
                &mut y[j * out_len..(j + 1) * out_len],
                scratch,
                &mut idx[..idx_len],
                epilogue,
            );
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        assert_eq!(
            ctx.grad.len(),
            ctx.idx.len(),
            "maxpool backward before forward or shape mismatch"
        );
        // Scatter-add into the caller-zero-filled input gradient.
        for (&g, &i) in ctx.grad.iter().zip(ctx.idx) {
            grad_in[i] += g;
        }
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "maxpool"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// One sample of 2×2/stride-2 max pooling over CHW, vectorised along
    /// the row axis (requires `w ≤ 16` so an input row fits one register).
    ///
    /// Bit-compatibility: each output lane performs the scalar path's
    /// exact comparison sequence — a strict-`>` running best seeded with
    /// `-∞`, visiting top-left, top-right, bottom-left, bottom-right —
    /// via compare+blend, so the values are bit-identical to
    /// [`super::MaxPool2::forward_into`] for every input, including NaNs
    /// and signed zeros.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn pool_rows_avx512(x: &[f32], c: usize, h: usize, w: usize, y: &mut [f32]) {
        debug_assert!((2..=16).contains(&w) && h >= 2);
        let (oh, ow) = (h / 2, w / 2);
        debug_assert_eq!(x.len(), c * h * w);
        debug_assert_eq!(y.len(), c * oh * ow);
        // Only the 2·ow columns the pooling windows cover are loaded; an
        // odd trailing column is dropped exactly like the scalar path.
        let in_mask = ((1u32 << (2 * ow)) - 1) as __mmask16;
        let out_mask = ((1u32 << ow) - 1) as __mmask16;
        let even = _mm512_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14, 0, 0, 0, 0, 0, 0, 0, 0);
        let odd = _mm512_setr_epi32(1, 3, 5, 7, 9, 11, 13, 15, 1, 1, 1, 1, 1, 1, 1, 1);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        for ch in 0..c {
            for oy in 0..oh {
                let top = _mm512_maskz_loadu_ps(in_mask, xp.add((ch * h + oy * 2) * w));
                let bot = _mm512_maskz_loadu_ps(in_mask, xp.add((ch * h + oy * 2 + 1) * w));
                let mut m = _mm512_set1_ps(f32::NEG_INFINITY);
                let v = _mm512_permutexvar_ps(even, top);
                m = _mm512_mask_mov_ps(m, _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, m), v);
                let v = _mm512_permutexvar_ps(odd, top);
                m = _mm512_mask_mov_ps(m, _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, m), v);
                let v = _mm512_permutexvar_ps(even, bot);
                m = _mm512_mask_mov_ps(m, _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, m), v);
                let v = _mm512_permutexvar_ps(odd, bot);
                m = _mm512_mask_mov_ps(m, _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, m), v);
                _mm512_mask_storeu_ps(yp.add((ch * oh + oy) * ow), out_mask, m);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                1.0, 2.0, 3.0, 4.0, //
                5.0, 6.0, 7.0, 8.0, //
                9.0, 10.0, 11.0, 12.0, //
                13.0, 14.0, 15.0, 16.0,
            ],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.shape(), &[1, 2, 2]);
        assert_eq!(y.as_slice(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 9.0, 3.0, 2.0]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![2.5]));
        assert_eq!(g.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn channels_are_independent() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(
            vec![2, 2, 2],
            vec![1.0, 2.0, 3.0, 4.0, 40.0, 30.0, 20.0, 10.0],
        );
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0, 40.0]);
    }

    #[test]
    fn odd_dimensions_floor() {
        let mut pool = MaxPool2::new();
        let y = pool.forward(&Tensor::zeros(vec![1, 5, 7]), true);
        assert_eq!(y.shape(), &[1, 2, 3]);
        assert_eq!(pool.out_shape(&[1, 5, 7]), vec![1, 2, 3]);
    }

    #[test]
    fn negative_values_pool_correctly() {
        let mut pool = MaxPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![-5.0, -1.0, -3.0, -2.0]);
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[-1.0]);
    }

    /// The batched path (SIMD on AVX-512 hosts) must reproduce the
    /// per-sample scalar scan bit-for-bit, including NaN, signed-zero and
    /// infinity inputs and odd (floored) spatial dims.
    #[test]
    fn batched_pool_matches_per_sample_bitwise() {
        let pool = MaxPool2::new();
        for &(c, h, w) in &[(16, 12, 12), (32, 6, 6), (3, 5, 7), (2, 2, 16), (1, 4, 2)] {
            let batch = 3usize;
            let in_len = c * h * w;
            let out_len = c * (h / 2) * (w / 2);
            let mut x: Vec<f32> = (0..batch * in_len)
                .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f32 * 0.013 - 6.5)
                .collect();
            x[0] = f32::NAN;
            x[1] = -0.0;
            x[in_len / 2] = f32::NEG_INFINITY;
            let mut batched = vec![0.0f32; batch * out_len];
            let mut idx = vec![0usize; out_len];
            pool.forward_batch_into(&x, &[c, h, w], batch, &mut batched, &mut [], &mut idx, None);
            for j in 0..batch {
                let mut ys = vec![0.0f32; out_len];
                pool.forward_into(
                    &x[j * in_len..(j + 1) * in_len],
                    &[c, h, w],
                    &mut ys,
                    &mut [],
                    &mut idx,
                    None,
                );
                let got: Vec<u32> = batched[j * out_len..(j + 1) * out_len]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let want: Vec<u32> = ys.iter().map(|v| v.to_bits()).collect();
                assert_eq!(got, want, "shape {:?} sample {j}", (c, h, w));
            }
        }
    }
}
