//! Fully-connected layer.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;
use crate::{gemm, init};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A fully-connected (affine) layer `y = W·x + b` on rank-1 tensors.
///
/// Weight layout: `[out][in]`, row-major. Forward and backward are routed
/// through the shared [`crate::gemm`] kernels (`y = W·x` is
/// [`gemm::gemm_nt_fused`] with `x` as a 1-row right operand — optionally
/// applying a fused activation epilogue to the output while it is still
/// cache-hot — `dW += g⊗x` is the rank-1 [`gemm::gemm_nn`] update, and
/// `dX = Wᵀ·g` is [`gemm::gemm_tn`]'s matrix-transpose-vector fast path).
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Dense, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut fc = Dense::new(288, 250, 7);
/// let y = fc.forward(&Tensor::zeros(vec![288]), true);
/// assert_eq!(y.shape(), &[250]);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cache: LegacyCache,
}

impl Dense {
    /// Creates a dense layer with He-initialised weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        assert!(in_features > 0 && out_features > 0, "zero dense dimension");
        let mut rng = StdRng::seed_from_u64(seed);
        Dense {
            in_features,
            out_features,
            weights: init::he_normal(in_features * out_features, in_features, &mut rng),
            bias: vec![0.0; out_features],
            grad_weights: vec![0.0; in_features * out_features],
            grad_bias: vec![0.0; out_features],
            cache: LegacyCache::default(),
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

impl Layer for Dense {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let len: usize = in_shape.iter().product();
        assert_eq!(
            len, self.in_features,
            "dense expected {} inputs, got {:?}",
            self.in_features, in_shape
        );
        vec![self.out_features]
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let _ = self.out_shape(in_shape);
        assert_eq!(y.len(), self.out_features, "dense output length");
        // y = b, then y += W·x (an out×1 gemm against x as a 1×in Bᵀ).
        y.copy_from_slice(&self.bias);
        gemm::gemm_nt_fused(
            self.out_features,
            1,
            self.in_features,
            &self.weights,
            x,
            y,
            epilogue,
        );
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        batch: usize,
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let _ = self.out_shape(in_shape);
        assert_eq!(x.len(), self.in_features * batch, "dense batched input");
        assert_eq!(y.len(), self.out_features * batch, "dense batched output");
        // Seed every sample's output with the bias, then one batched GEMM
        // streams each weight row once for the whole block. Per-sample
        // arithmetic (one `dot` per output element, bias seeded first) is
        // exactly the n = 1 path of `forward_into`, so results are
        // bit-identical to scoring samples one at a time.
        for ys in y.chunks_exact_mut(self.out_features) {
            ys.copy_from_slice(&self.bias);
        }
        gemm::gemm_nt_batched_fused(
            self.out_features,
            batch,
            self.in_features,
            &self.weights,
            x,
            y,
            epilogue,
        );
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        assert_eq!(ctx.grad.len(), self.out_features, "dense grad shape");
        assert_eq!(grad_in.len(), self.in_features, "dense grad_in length");
        let g = ctx.grad;
        for (gb, &go) in self.grad_bias.iter_mut().zip(g) {
            *gb += go;
        }
        // dW += g ⊗ x: rank-1 update (k = 1) into the running gradient.
        gemm::gemm_nn(
            self.out_features,
            self.in_features,
            1,
            g,
            ctx.x,
            &mut self.grad_weights,
        );
        // dX = Wᵀ·g (grad_in arrives zero-filled).
        gemm::gemm_tn(
            self.in_features,
            1,
            self.out_features,
            &self.weights,
            g,
            grad_in,
        );
    }

    fn accepts_epilogue(&self) -> bool {
        true
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "fc"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixed_dense() -> Dense {
        // 2 -> 2 with W = [[1, 2], [3, 4]], b = [10, 20].
        let mut d = Dense::new(2, 2, 0);
        let mut call = 0;
        d.visit_params(&mut |w, _| {
            if call == 0 {
                w.copy_from_slice(&[1.0, 2.0, 3.0, 4.0]);
            } else {
                w.copy_from_slice(&[10.0, 20.0]);
            }
            call += 1;
        });
        d
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut d = fixed_dense();
        let y = d.forward(&Tensor::from_vec(vec![2], vec![1.0, 1.0]), false);
        assert_eq!(y.as_slice(), &[13.0, 27.0]);
    }

    #[test]
    fn backward_gradients_match_hand_computation() {
        let mut d = fixed_dense();
        let _ = d.forward(&Tensor::from_vec(vec![2], vec![5.0, -1.0]), true);
        let gin = d.backward(&Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        // dX = Wᵀ·g = [1*1+3*2, 2*1+4*2] = [7, 10].
        assert_eq!(gin.as_slice(), &[7.0, 10.0]);
        let mut seen = Vec::new();
        d.visit_params(&mut |_, g| seen.push(g.to_vec()));
        // dW = g ⊗ x = [[5,-1],[10,-2]]; db = g.
        assert_eq!(seen[0], vec![5.0, -1.0, 10.0, -2.0]);
        assert_eq!(seen[1], vec![1.0, 2.0]);
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut d = fixed_dense();
        for _ in 0..3 {
            let _ = d.forward(&Tensor::from_vec(vec![2], vec![1.0, 0.0]), true);
            let _ = d.backward(&Tensor::from_vec(vec![2], vec![1.0, 0.0]));
        }
        let mut gb = Vec::new();
        d.visit_params(&mut |_, g| gb.push(g.to_vec()));
        assert_eq!(gb[1][0], 3.0);
        d.zero_grads();
        let mut gb2 = Vec::new();
        d.visit_params(&mut |_, g| gb2.push(g.to_vec()));
        assert!(gb2[1].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn accepts_flattened_rank3_input() {
        let mut d = Dense::new(12, 3, 1);
        let y = d.forward(&Tensor::zeros(vec![3, 2, 2]), false);
        assert_eq!(y.shape(), &[3]);
    }

    #[test]
    #[should_panic(expected = "dense expected")]
    fn rejects_wrong_input_len() {
        let mut d = Dense::new(4, 2, 0);
        let _ = d.forward(&Tensor::zeros(vec![5]), false);
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_sample() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for &batch in &[1usize, 2, 7, 16] {
            let d = Dense::new(9, 5, 3);
            let x: Vec<f32> = (0..9 * batch)
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect();
            for ep in [None, Some(Epilogue::Relu), Some(Epilogue::Sigmoid)] {
                let mut batched = vec![0.0f32; 5 * batch];
                d.forward_batch_into(&x, &[9], batch, &mut batched, &mut [], &mut [], ep);
                let mut single = vec![0.0f32; 5 * batch];
                for b in 0..batch {
                    d.forward_into(
                        &x[b * 9..(b + 1) * 9],
                        &[9],
                        &mut single[b * 5..(b + 1) * 5],
                        &mut [],
                        &mut [],
                        ep,
                    );
                }
                assert_eq!(batched, single, "batch={batch} ep={ep:?}");
            }
        }
    }

    #[test]
    fn fused_sigmoid_epilogue_is_bit_identical_to_unfused() {
        use super::super::Sigmoid;
        let d = Dense::new(4, 3, 5);
        let x = Tensor::from_vec(vec![4], vec![0.3, -1.2, 0.7, 2.0]);
        let mut y_fused = vec![0.0f32; 3];
        d.forward_into(
            x.as_slice(),
            &[4],
            &mut y_fused,
            &mut [],
            &mut [],
            Some(Epilogue::Sigmoid),
        );
        let unfused = Sigmoid::new().forward_inference(&d.forward_inference(&x));
        assert_eq!(y_fused.as_slice(), unfused.as_slice());
    }
}
