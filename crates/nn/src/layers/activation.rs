//! Smooth activations: sigmoid and tanh.
//!
//! The paper replaces "the traditional sigmoid activation function" with
//! ReLU (§4.1); these layers exist so that claim can be tested — the
//! `activation_ablation` comparisons train the same architecture with each
//! nonlinearity.

use super::Layer;
use crate::Tensor;

/// Element-wise logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, Sigmoid};
/// use hotspot_nn::Tensor;
///
/// let mut s = Sigmoid::new();
/// let y = s.forward(&Tensor::from_vec(vec![1], vec![0.0]), true);
/// assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    output: Vec<f32>,
    shape: Vec<usize>,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        self.output = input
            .as_slice()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        Tensor::from_vec(self.shape.clone(), self.output.clone())
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let data = input
            .as_slice()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        Tensor::from_vec(input.shape().to_vec(), data)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.len(),
            self.output.len(),
            "sigmoid backward before forward or shape mismatch"
        );
        // dσ/dx = σ (1 - σ).
        let data = grad
            .as_slice()
            .iter()
            .zip(self.output.iter())
            .map(|(&g, &y)| g * y * (1.0 - y))
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Element-wise hyperbolic tangent.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    output: Vec<f32>,
    shape: Vec<usize>,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        self.output = input.as_slice().iter().map(|&v| v.tanh()).collect();
        Tensor::from_vec(self.shape.clone(), self.output.clone())
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let data = input.as_slice().iter().map(|&v| v.tanh()).collect();
        Tensor::from_vec(input.shape().to_vec(), data)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.len(),
            self.output.len(),
            "tanh backward before forward or shape mismatch"
        );
        // d tanh/dx = 1 - tanh².
        let data = grad
            .as_slice()
            .iter()
            .zip(self.output.iter())
            .map(|(&g, &y)| g * (1.0 - y * y))
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![3], vec![-3.0, 0.0, 3.0]), true);
        let v = y.as_slice();
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[0] + v[2] - 1.0).abs() < 1e-5, "σ(-x) = 1 - σ(x)");
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let x0 = 0.7f32;
        let mut s = Sigmoid::new();
        let _ = s.forward(&Tensor::from_vec(vec![1], vec![x0]), true);
        let g = s.backward(&Tensor::from_vec(vec![1], vec![1.0]));
        let eps = 1e-3f32;
        let f = |x: f32| 1.0 / (1.0 + (-x).exp());
        let fd = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
        assert!((g.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(vec![3], vec![-2.0, 0.0, 2.0]), true);
        let v = y.as_slice();
        assert!((v[1]).abs() < 1e-7);
        assert!((v[0] + v[2]).abs() < 1e-6, "tanh is odd");
        assert!(v.iter().all(|&x| x.abs() < 1.0));
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let x0 = -0.4f32;
        let mut t = Tanh::new();
        let _ = t.forward(&Tensor::from_vec(vec![1], vec![x0]), true);
        let g = t.backward(&Tensor::from_vec(vec![1], vec![1.0]));
        let eps = 1e-3f32;
        let fd = ((x0 + eps).tanh() - (x0 - eps).tanh()) / (2.0 * eps);
        assert!((g.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn shapes_preserved() {
        let mut s = Sigmoid::new();
        assert_eq!(
            s.forward(&Tensor::zeros(vec![2, 3, 4]), false).shape(),
            &[2, 3, 4]
        );
        assert_eq!(s.output_shape(&[5]), vec![5]);
        let mut t = Tanh::new();
        assert_eq!(t.forward(&Tensor::zeros(vec![7]), false).shape(), &[7]);
    }
}
