//! Smooth activations: sigmoid and tanh.
//!
//! The paper replaces "the traditional sigmoid activation function" with
//! ReLU (§4.1); these layers exist so that claim can be tested — the
//! `activation_ablation` comparisons train the same architecture with each
//! nonlinearity. Both report [`Layer::as_epilogue`] so an execution plan
//! can fuse them into a preceding conv/dense GEMM tail.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// Element-wise logistic sigmoid `σ(x) = 1 / (1 + e^{-x})`.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, Sigmoid};
/// use hotspot_nn::Tensor;
///
/// let mut s = Sigmoid::new();
/// let y = s.forward(&Tensor::from_vec(vec![1], vec![0.0]), true);
/// assert!((y.as_slice()[0] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Sigmoid {
    cache: LegacyCache,
}

impl Sigmoid {
    /// Creates a sigmoid activation.
    pub fn new() -> Self {
        Sigmoid::default()
    }
}

impl Layer for Sigmoid {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn forward_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = 1.0 / (1.0 + (-v).exp());
        }
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        _batch: usize,
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        // Element-wise over the whole block: bit-identical per sample.
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = 1.0 / (1.0 + (-v).exp());
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        // dσ/dx = σ (1 - σ), expressed from the cached output.
        for ((gi, &g), &y) in grad_in.iter_mut().zip(ctx.grad).zip(ctx.y) {
            *gi = g * y * (1.0 - y);
        }
    }

    fn as_epilogue(&self) -> Option<Epilogue> {
        Some(Epilogue::Sigmoid)
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Element-wise hyperbolic tangent.
#[derive(Debug, Clone, Default)]
pub struct Tanh {
    cache: LegacyCache,
}

impl Tanh {
    /// Creates a tanh activation.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn forward_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = v.tanh();
        }
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        _batch: usize,
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        // Element-wise over the whole block: bit-identical per sample.
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = v.tanh();
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        // d tanh/dx = 1 - tanh², expressed from the cached output.
        for ((gi, &g), &y) in grad_in.iter_mut().zip(ctx.grad).zip(ctx.y) {
            *gi = g * (1.0 - y * y);
        }
    }

    fn as_epilogue(&self) -> Option<Epilogue> {
        Some(Epilogue::Tanh)
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "tanh"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![3], vec![-3.0, 0.0, 3.0]), true);
        let v = y.as_slice();
        assert!(v.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((v[1] - 0.5).abs() < 1e-6);
        assert!((v[0] + v[2] - 1.0).abs() < 1e-5, "σ(-x) = 1 - σ(x)");
    }

    #[test]
    fn sigmoid_gradient_matches_finite_difference() {
        let x0 = 0.7f32;
        let mut s = Sigmoid::new();
        let _ = s.forward(&Tensor::from_vec(vec![1], vec![x0]), true);
        let g = s.backward(&Tensor::from_vec(vec![1], vec![1.0]));
        let eps = 1e-3f32;
        let f = |x: f32| 1.0 / (1.0 + (-x).exp());
        let fd = (f(x0 + eps) - f(x0 - eps)) / (2.0 * eps);
        assert!((g.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn tanh_is_odd_and_bounded() {
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(vec![3], vec![-2.0, 0.0, 2.0]), true);
        let v = y.as_slice();
        assert!((v[1]).abs() < 1e-7);
        assert!((v[0] + v[2]).abs() < 1e-6, "tanh is odd");
        assert!(v.iter().all(|&x| x.abs() < 1.0));
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let x0 = -0.4f32;
        let mut t = Tanh::new();
        let _ = t.forward(&Tensor::from_vec(vec![1], vec![x0]), true);
        let g = t.backward(&Tensor::from_vec(vec![1], vec![1.0]));
        let eps = 1e-3f32;
        let fd = ((x0 + eps).tanh() - (x0 - eps).tanh()) / (2.0 * eps);
        assert!((g.as_slice()[0] - fd).abs() < 1e-4);
    }

    #[test]
    fn shapes_preserved() {
        let mut s = Sigmoid::new();
        assert_eq!(
            s.forward(&Tensor::zeros(vec![2, 3, 4]), false).shape(),
            &[2, 3, 4]
        );
        assert_eq!(s.out_shape(&[5]), vec![5]);
        let mut t = Tanh::new();
        assert_eq!(t.forward(&Tensor::zeros(vec![7]), false).shape(), &[7]);
    }

    #[test]
    fn epilogue_gradients_match_standalone_backward() {
        let xs = [-2.0f32, -0.3, 0.0, 0.8, 2.5];
        let gs = [1.0f32, -2.0, 0.5, 3.0, -1.0];
        // Sigmoid.
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_vec(vec![5], xs.to_vec()), true);
        let standalone = s.backward(&Tensor::from_vec(vec![5], gs.to_vec()));
        let mut fused = gs.to_vec();
        Epilogue::Sigmoid.grad_from_output(y.as_slice(), &mut fused);
        assert_eq!(standalone.as_slice(), fused.as_slice());
        // Tanh.
        let mut t = Tanh::new();
        let y = t.forward(&Tensor::from_vec(vec![5], xs.to_vec()), true);
        let standalone = t.backward(&Tensor::from_vec(vec![5], gs.to_vec()));
        let mut fused = gs.to_vec();
        Epilogue::Tanh.grad_from_output(y.as_slice(), &mut fused);
        assert_eq!(standalone.as_slice(), fused.as_slice());
    }
}
