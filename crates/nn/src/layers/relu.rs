//! Rectified linear activation.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// Element-wise `ReLU(x) = max(x, 0)` (paper Eq. (5)).
///
/// Reports [`Layer::as_epilogue`] so an execution plan can fuse it into a
/// preceding conv/dense GEMM tail instead of running it as a separate
/// traversal; the fused and standalone paths are bit-identical because
/// both compute `if v > 0.0 { v } else { 0.0 }` per element.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, Relu};
/// use hotspot_nn::Tensor;
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]), true);
/// assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    cache: LegacyCache,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn forward_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = if v > 0.0 { v } else { 0.0 };
        }
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        _batch: usize,
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        // Element-wise over the whole block: bit-identical per sample.
        for (yi, &v) in y.iter_mut().zip(x) {
            *yi = if v > 0.0 { v } else { 0.0 };
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        // Subgradient convention: ReLU'(0) = 0, matching the forward
        // predicate `x > 0.0` (equivalently `y > 0.0`, which is what the
        // fused-epilogue gradient path uses).
        for ((gi, &g), &v) in grad_in.iter_mut().zip(ctx.grad).zip(ctx.x) {
            *gi = if v > 0.0 { g } else { 0.0 };
        }
    }

    fn as_epilogue(&self) -> Option<Epilogue> {
        Some(Epilogue::Relu)
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![4], vec![-2.0, -0.0, 0.5, 3.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::from_vec(vec![4], vec![-1.0, 2.0, -3.0, 4.0]), true);
        let g = r.backward(&Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: ReLU'(0) = 0.
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::from_vec(vec![1], vec![0.0]), true);
        let g = r.backward(&Tensor::from_vec(vec![1], vec![5.0]));
        assert_eq!(g.as_slice(), &[0.0]);
    }

    #[test]
    fn preserves_shape() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::zeros(vec![2, 3, 4]), false);
        assert_eq!(y.shape(), &[2, 3, 4]);
        assert_eq!(r.out_shape(&[2, 3, 4]), vec![2, 3, 4]);
    }

    #[test]
    fn epilogue_gradient_matches_standalone_backward() {
        // grad_from_output on y must equal the x-mask path: for ReLU the
        // post-activation predicate y > 0 is exactly the pre-activation
        // predicate x > 0 (y == x where x > 0, else y == 0).
        let x = [-1.5f32, 0.0, 0.5, 3.0];
        let g = [1.0f32, 2.0, 3.0, 4.0];
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::from_vec(vec![4], x.to_vec()), true);
        let standalone = r.backward(&Tensor::from_vec(vec![4], g.to_vec()));
        let y: Vec<f32> = x.iter().map(|&v| if v > 0.0 { v } else { 0.0 }).collect();
        let mut fused = g.to_vec();
        Epilogue::Relu.grad_from_output(&y, &mut fused);
        assert_eq!(standalone.as_slice(), fused.as_slice());
    }
}
