//! Rectified linear activation.

use super::Layer;
use crate::Tensor;

/// Element-wise `ReLU(x) = max(x, 0)` (paper Eq. (5)).
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Layer, Relu};
/// use hotspot_nn::Tensor;
///
/// let mut relu = Relu::new();
/// let y = relu.forward(&Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0]), true);
/// assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        self.mask = input.as_slice().iter().map(|&v| v > 0.0).collect();
        let data = input
            .as_slice()
            .iter()
            .map(|&v| if v > 0.0 { v } else { 0.0 })
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let data = input
            .as_slice()
            .iter()
            .map(|&v| if v > 0.0 { v } else { 0.0 })
            .collect();
        Tensor::from_vec(input.shape().to_vec(), data)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.len(),
            self.mask.len(),
            "relu backward before forward or shape mismatch"
        );
        let data = grad
            .as_slice()
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "relu"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::from_vec(vec![4], vec![-2.0, -0.0, 0.5, 3.0]), true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::from_vec(vec![4], vec![-1.0, 2.0, -3.0, 4.0]), true);
        let g = r.backward(&Tensor::from_vec(vec![4], vec![1.0, 1.0, 1.0, 1.0]));
        assert_eq!(g.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn zero_input_has_zero_gradient() {
        // Subgradient convention: ReLU'(0) = 0.
        let mut r = Relu::new();
        let _ = r.forward(&Tensor::from_vec(vec![1], vec![0.0]), true);
        let g = r.backward(&Tensor::from_vec(vec![1], vec![5.0]));
        assert_eq!(g.as_slice(), &[0.0]);
    }

    #[test]
    fn preserves_shape() {
        let mut r = Relu::new();
        let y = r.forward(&Tensor::zeros(vec![2, 3, 4]), false);
        assert_eq!(y.shape(), &[2, 3, 4]);
        assert_eq!(r.output_shape(&[2, 3, 4]), vec![2, 3, 4]);
    }
}
