//! Network layers with analytic gradients.
//!
//! Every layer implements [`Layer`]: `forward` caches whatever `backward`
//! needs; `backward` accumulates parameter gradients internally and returns
//! the gradient with respect to the layer input. Parameter/gradient pairs
//! are exposed through [`Layer::visit_params`], which the optimiser and the
//! serialiser both use — layers stay ignorant of the update rule.

mod activation;
mod avgpool;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod relu;

pub use activation::{Sigmoid, Tanh};
pub use avgpool::AvgPool2;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2;
pub use relu::Relu;

use crate::Tensor;
use std::fmt;

/// A differentiable network layer.
///
/// Layers are stateful across a forward/backward pair: `backward` may only
/// be called after the matching `forward`, and batching is expressed as
/// repeated forward/backward calls with gradients accumulated until
/// [`Layer::zero_grads`]. Layers must be [`Send`] so network replicas can
/// run on worker threads ([`crate::parallel`]) and [`Sync`] so a single
/// network can serve concurrent [`Layer::forward_inference`] calls.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Computes the layer output. `train` enables training-only behaviour
    /// (dropout masks); inference should pass `false`.
    ///
    /// # Panics
    ///
    /// Panics if `input` has an incompatible shape.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Computes the layer output in inference mode without mutating any
    /// layer state (no backward caches, no scratch reuse, no RNG draws).
    ///
    /// Must be **bit-identical** to `forward(input, false)`: same
    /// arithmetic in the same order, differing only in what gets cached.
    /// This is what lets many threads share one network during batch
    /// scoring instead of cloning per-worker replicas.
    ///
    /// # Panics
    ///
    /// Panics if `input` has an incompatible shape.
    fn forward_inference(&self, input: &Tensor) -> Tensor;

    /// Propagates `grad` (∂loss/∂output) backwards, accumulating parameter
    /// gradients, and returns ∂loss/∂input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    fn backward(&mut self, grad: &Tensor) -> Tensor;

    /// Visits every (parameters, gradients) slice pair of the layer.
    /// Parameter-free layers do nothing.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Clears accumulated parameter gradients.
    fn zero_grads(&mut self);

    /// A short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Output shape for a given input shape (used to print architecture
    /// tables like the paper's Table 1).
    fn output_shape(&self, input: &[usize]) -> Vec<usize>;

    /// Clones the layer behind the trait object (parameters, gradients and
    /// caches included) — the basis of [`crate::Network`]'s `Clone`, which
    /// parallel training uses to give each worker its own replica.
    fn boxed_clone(&self) -> Box<dyn Layer>;

    /// The layer's internal RNG state, if it has one (dropout masks).
    ///
    /// Checkpoint/resume uses this: restoring parameters alone is not
    /// enough to make a resumed training run bit-identical, because
    /// stochastic layers keep advancing their streams across steps.
    /// Deterministic layers return `None` (the default).
    fn rng_state(&self) -> Option<[u64; 4]> {
        None
    }

    /// Restores an RNG state captured by [`Layer::rng_state`]. A no-op for
    /// deterministic layers (the default).
    fn set_rng_state(&mut self, _state: [u64; 4]) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}
