//! Network layers with analytic gradients.
//!
//! Every layer implements [`Layer`] through the *planned* slice contract:
//! [`Layer::out_shape`] reports output shapes, [`Layer::scratch_len`] /
//! [`Layer::idx_len`] report workspace requirements, and
//! [`Layer::forward_into`] / [`Layer::backward_into`] write into
//! caller-provided slices so an execution plan ([`crate::engine`]) can run
//! a whole network without a single allocation. The classic allocating
//! [`Layer::forward`] / [`Layer::backward`] / [`Layer::forward_inference`]
//! API is provided as thin default-method wrappers over that contract, so
//! both paths share one numeric implementation and stay bit-identical by
//! construction.
//!
//! Parameter/gradient pairs are exposed through [`Layer::visit_params`],
//! which the optimiser and the serialiser both use — layers stay ignorant
//! of the update rule.

mod activation;
mod avgpool;
mod conv;
mod dense;
mod dropout;
mod flatten;
mod pool;
mod relu;

pub use activation::{Sigmoid, Tanh};
pub use avgpool::AvgPool2;
pub use conv::Conv2d;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use pool::MaxPool2;
pub use relu::Relu;

pub use crate::gemm::Epilogue;
use crate::Tensor;
use std::fmt;

/// Everything a layer's `backward_into` may need, borrowed from the
/// buffers its matching forward pass wrote (either a planned
/// [`crate::engine::Workspace`] arena or the layer's own [`LegacyCache`]).
///
/// Aliasing rules: `x` and `y` come from the activation arena (shared
/// borrows), `scratch` is the layer's private forward scratch region
/// (mutable — conv reuses it for the `dcol` buffer), `idx` the private
/// index region (maxpool argmax). All four are disjoint slices.
pub struct BackwardCtx<'a> {
    /// The layer's forward input.
    pub x: &'a [f32],
    /// The forward input's shape.
    pub in_shape: &'a [usize],
    /// The layer's forward output (post any fused epilogue).
    pub y: &'a [f32],
    /// ∂loss/∂output.
    pub grad: &'a [f32],
    /// The f32 scratch region this layer's forward wrote (im2col columns,
    /// dropout masks); conv's backward also writes its `dcol` half.
    pub scratch: &'a mut [f32],
    /// The index scratch region this layer's forward wrote (argmax).
    pub idx: &'a [usize],
}

/// Buffers backing the allocating compatibility API (`forward` /
/// `backward`): one cached copy of the last forward call's input, output,
/// and scratch, reused across calls so steady-state training does no
/// per-step allocation. The planned path ([`crate::engine`]) bypasses this
/// entirely and uses a caller-owned workspace instead.
#[derive(Debug, Clone, Default)]
pub struct LegacyCache {
    in_shape: Vec<usize>,
    x: Vec<f32>,
    y: Vec<f32>,
    scratch: Vec<f32>,
    idx: Vec<usize>,
    /// Whether a forward pass has populated the cache and not yet been
    /// consumed by `backward`.
    primed: bool,
}

impl LegacyCache {
    /// Capacity of the f32 scratch buffer — exposed so tests can pin the
    /// no-realloc steady-state contract.
    pub fn scratch_capacity(&self) -> usize {
        self.scratch.capacity()
    }
}

/// A differentiable network layer.
///
/// The required surface is the planned slice contract (`out_shape`,
/// `forward_into`, `backward_into`, plus workspace sizing); the stateful
/// tensor API (`forward` / `backward` / `forward_inference`) has default
/// implementations layered on top of it. Layers must be [`Send`] so
/// network replicas can run on worker threads ([`crate::parallel`]) and
/// [`Sync`] so a single network can serve concurrent inference calls
/// through caller-owned workspaces.
pub trait Layer: fmt::Debug + Send + Sync {
    /// Output shape for `in_shape`, validating the input shape with the
    /// same panics the forward pass would raise. Used by execution
    /// planning and architecture tables (the paper's Table 1).
    ///
    /// # Panics
    ///
    /// Panics if `in_shape` is incompatible with the layer.
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize>;

    /// Length of the f32 scratch region `forward_into`/`backward_into`
    /// need for this input shape (0 for most layers; conv's im2col `col`
    /// plus backward `dcol`, dropout's mask).
    fn scratch_len(&self, _in_shape: &[usize]) -> usize {
        0
    }

    /// Length of the index scratch region (maxpool argmax; 0 otherwise).
    fn idx_len(&self, _in_shape: &[usize]) -> usize {
        0
    }

    /// Length of the f32 scratch `forward_into` alone touches. Defaults to
    /// [`Layer::scratch_len`]; layers whose scratch is partly
    /// backward-only (conv's `dcol` half) report the smaller forward
    /// footprint so planned inference can overlay a single shared scratch
    /// region across all steps instead of disjoint per-layer regions.
    fn scratch_infer_len(&self, in_shape: &[usize]) -> usize {
        self.scratch_len(in_shape)
    }

    /// Inference-mode forward pass writing into caller-provided slices:
    /// `y` must hold `out_shape(in_shape)` elements, `scratch` / `idx`
    /// must be at least `scratch_len` / `idx_len` long. No layer state is
    /// mutated and no RNG is drawn, so `&self` calls may run concurrently
    /// with per-caller buffers.
    ///
    /// `epilogue` is a fused follow-on activation: layers that report
    /// [`Layer::accepts_epilogue`] apply it inside their GEMM tail
    /// ([`crate::gemm::gemm_nn_fused`]); for every other layer the planner
    /// never passes `Some`.
    ///
    /// Must be **bit-identical** to the allocating `forward(input, false)`
    /// path: same arithmetic in the same order, differing only in where
    /// results land.
    ///
    /// # Panics
    ///
    /// Panics if a slice length is inconsistent with `in_shape`.
    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    );

    /// Length of the f32 scratch region [`Layer::forward_batch_into`]
    /// needs to score `batch` samples of `in_shape` at once. Defaults to
    /// the single-sample [`Layer::scratch_infer_len`] (the default batched
    /// path loops over samples reusing one scratch region); layers with a
    /// genuinely batched kernel (conv) override this with their per-block
    /// footprint.
    fn scratch_batch_len(&self, in_shape: &[usize], _batch: usize) -> usize {
        self.scratch_infer_len(in_shape)
    }

    /// Inference-mode forward pass over a block of `batch` samples stored
    /// sample-major: `x` holds `batch` inputs of `in_shape` back to back,
    /// `y` receives `batch` outputs back to back. `scratch` must be at
    /// least [`Layer::scratch_batch_len`] long and `idx` at least
    /// [`Layer::idx_len`] long.
    ///
    /// Contract: **bit-identical per sample** to calling
    /// [`Layer::forward_into`] once per sample. The default implementation
    /// is exactly that loop (safe for every layer, including dropout,
    /// whose inference pass draws no RNG); GEMM-backed layers override it
    /// to run one batched kernel whose per-sample arithmetic is unchanged
    /// (conv batches over independent GEMM columns, dense streams each
    /// weight row once via [`crate::gemm::gemm_nt_batched`]).
    ///
    /// # Panics
    ///
    /// Panics if a slice length is inconsistent with `in_shape` × `batch`.
    #[allow(clippy::too_many_arguments)]
    fn forward_batch_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        batch: usize,
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let in_len: usize = in_shape.iter().product();
        assert_eq!(x.len(), in_len * batch, "batched input length");
        assert!(
            batch == 0 || y.len().is_multiple_of(batch),
            "batched output length must divide evenly"
        );
        let out_len = y.len().checked_div(batch).unwrap_or(0);
        let scratch_len = self.scratch_infer_len(in_shape);
        let idx_len = self.idx_len(in_shape);
        for j in 0..batch {
            self.forward_into(
                &x[j * in_len..(j + 1) * in_len],
                in_shape,
                &mut y[j * out_len..(j + 1) * out_len],
                &mut scratch[..scratch_len],
                &mut idx[..idx_len],
                epilogue,
            );
        }
    }

    /// Training-mode forward pass. Defaults to [`Layer::forward_into`];
    /// only stochastic layers (dropout) override it to draw masks from
    /// their RNG stream. Caches whatever `backward_into` will need in
    /// `scratch` / `idx`.
    fn forward_train_into(
        &mut self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        self.forward_into(x, in_shape, y, scratch, idx, epilogue);
    }

    /// Propagates `ctx.grad` (∂loss/∂output) backwards: accumulates
    /// parameter gradients internally and writes ∂loss/∂input into
    /// `grad_in`, which the caller provides **zero-filled** (scatter-add
    /// layers rely on this).
    ///
    /// A fused epilogue's gradient is *not* this layer's business: the
    /// planner rescales `ctx.grad` through
    /// [`Epilogue::grad_from_output`] before calling `backward_into`.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent slice lengths.
    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]);

    /// Whether this layer can fuse a following activation into its output
    /// epilogue (the GEMM-backed conv and dense layers).
    fn accepts_epilogue(&self) -> bool {
        false
    }

    /// If this layer *is* a pure element-wise activation, the epilogue it
    /// fuses into a preceding GEMM layer; `None` otherwise.
    fn as_epilogue(&self) -> Option<Epilogue> {
        None
    }

    /// The buffers backing the allocating compatibility API. Every layer
    /// owns one [`LegacyCache`] field and returns it here.
    fn legacy_cache(&mut self) -> &mut LegacyCache;

    /// Computes the layer output (allocating compatibility API). `train`
    /// enables training-only behaviour (dropout masks); inference should
    /// pass `false`. A thin wrapper over [`Layer::forward_into`] /
    /// [`Layer::forward_train_into`] using the layer-owned cache, whose
    /// buffers are reused across calls.
    ///
    /// # Panics
    ///
    /// Panics if `input` has an incompatible shape.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let out_shape = self.out_shape(input.shape());
        let out_len: usize = out_shape.iter().product();
        let scratch_len = self.scratch_len(input.shape());
        let idx_len = self.idx_len(input.shape());
        let mut c = std::mem::take(self.legacy_cache());
        c.in_shape.clear();
        c.in_shape.extend_from_slice(input.shape());
        c.x.clear();
        c.x.extend_from_slice(input.as_slice());
        c.y.clear();
        c.y.resize(out_len, 0.0);
        c.scratch.clear();
        c.scratch.resize(scratch_len, 0.0);
        c.idx.clear();
        c.idx.resize(idx_len, 0);
        if train {
            self.forward_train_into(
                &c.x,
                &c.in_shape,
                &mut c.y,
                &mut c.scratch,
                &mut c.idx,
                None,
            );
        } else {
            self.forward_into(
                &c.x,
                &c.in_shape,
                &mut c.y,
                &mut c.scratch,
                &mut c.idx,
                None,
            );
        }
        c.primed = true;
        let out = Tensor::from_vec(out_shape, c.y.clone());
        *self.legacy_cache() = c;
        out
    }

    /// Computes the layer output in inference mode without mutating any
    /// layer state (no backward caches, no scratch reuse, no RNG draws):
    /// a thin wrapper over [`Layer::forward_into`] with per-call local
    /// buffers.
    ///
    /// Bit-identical to `forward(input, false)` by construction — both
    /// run the same `forward_into`. This is what lets many threads share
    /// one network during batch scoring instead of cloning per-worker
    /// replicas.
    ///
    /// # Panics
    ///
    /// Panics if `input` has an incompatible shape.
    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let out_shape = self.out_shape(input.shape());
        let out_len: usize = out_shape.iter().product();
        let mut y = vec![0.0f32; out_len];
        let mut scratch = vec![0.0f32; self.scratch_len(input.shape())];
        let mut idx = vec![0usize; self.idx_len(input.shape())];
        self.forward_into(
            input.as_slice(),
            input.shape(),
            &mut y,
            &mut scratch,
            &mut idx,
            None,
        );
        Tensor::from_vec(out_shape, y)
    }

    /// Propagates `grad` (∂loss/∂output) backwards, accumulating
    /// parameter gradients, and returns ∂loss/∂input (allocating
    /// compatibility API over [`Layer::backward_into`]). Consumes the
    /// cached forward state: a second `backward` without a fresh
    /// `forward` panics.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let mut c = std::mem::take(self.legacy_cache());
        if !c.primed {
            // Restore the (unprimed) cache so the layer stays usable, then
            // report with the layer's name, e.g. "conv backward before
            // forward".
            let name = self.name();
            *self.legacy_cache() = c;
            panic!("{name} backward before forward");
        }
        assert_eq!(
            grad.len(),
            c.y.len(),
            "{} backward before forward or shape mismatch",
            self.name()
        );
        let mut grad_in = vec![0.0f32; c.x.len()];
        self.backward_into(
            BackwardCtx {
                x: &c.x,
                in_shape: &c.in_shape,
                y: &c.y,
                grad: grad.as_slice(),
                scratch: &mut c.scratch,
                idx: &c.idx,
            },
            &mut grad_in,
        );
        let shape = c.in_shape.clone();
        c.primed = false;
        *self.legacy_cache() = c;
        Tensor::from_vec(shape, grad_in)
    }

    /// Visits every (parameters, gradients) slice pair of the layer.
    /// Parameter-free layers do nothing.
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32]));

    /// Clears accumulated parameter gradients.
    fn zero_grads(&mut self);

    /// A short human-readable layer name for summaries.
    fn name(&self) -> &'static str;

    /// Clones the layer behind the trait object (parameters, gradients and
    /// caches included) — the basis of [`crate::Network`]'s `Clone`, which
    /// parallel training uses to give each worker its own replica.
    fn boxed_clone(&self) -> Box<dyn Layer>;

    /// The layer's internal RNG state, if it has one (dropout masks).
    ///
    /// Checkpoint/resume uses this: restoring parameters alone is not
    /// enough to make a resumed training run bit-identical, because
    /// stochastic layers keep advancing their streams across steps.
    /// Deterministic layers return `None` (the default).
    fn rng_state(&self) -> Option<[u64; 4]> {
        None
    }

    /// Restores an RNG state captured by [`Layer::rng_state`]. A no-op for
    /// deterministic layers (the default).
    fn set_rng_state(&mut self, _state: [u64; 4]) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}
