//! 2-D convolution, lowered onto GEMM via im2col — with an AVX-512
//! direct kernel for the paper's 3×3 "same" shape.
//!
//! The im2col lowering is the portable reference path and the only
//! *training* path (backward consumes the `col` matrix the training
//! forward leaves in scratch). Inference forwards additionally dispatch
//! on [`gemm::kernel_backend`]: when the AVX-512 backend is resolved and
//! the layer is a 3×3 / pad-1 convolution over an image at most
//! [`MAX_DIRECT_W`] pixels wide, [`Conv2d::forward_into`] skips im2col
//! entirely and convolves rows in registers (`zmm` lanes spanning the
//! output channels, one accumulator vector per output pixel — see the
//! `direct3x3` module). That removes the dominant cost of small-window scoring: the
//! unfold traffic, not the multiply itself. The direct kernel is
//! per-sample, so batched and per-window scoring stay bit-identical by
//! construction; across *backends* its outputs differ from the scalar
//! oracle only in summation order (see [`crate::ulp`]).

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;
use crate::{gemm, init};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Widest image the direct AVX-512 3×3 kernel handles (one output row of
/// per-pixel accumulators held entirely in registers).
pub const MAX_DIRECT_W: usize = 12;

/// A 2-D convolution over CHW tensors with configurable kernel size,
/// stride 1 and symmetric zero padding (the paper uses 3×3 kernels with
/// "same" padding, i.e. `padding = 1`).
///
/// Weight layout: `[out_c][in_c][ky][kx]`, bias per output channel.
///
/// Internally the spatial loops are lowered onto the [`crate::gemm`]
/// kernels: the input is unfolded into a column matrix
/// `col[in_c·k²][oh·ow]` (im2col) so that
///
/// * forward is `out = W · col` ([`gemm::gemm_nn_fused`], optionally with
///   a fused activation epilogue),
/// * the weight gradient is `dW = dY · colᵀ` ([`gemm::gemm_nt`]), and
/// * the input gradient is `dX = col2im(Wᵀ · dY)` ([`gemm::gemm_tn`]).
///
/// The `col` and `dcol` matrices live in caller-provided scratch
/// ([`Layer::scratch_len`] reports `2 · in_c·k²·oh·ow`), so a planned
/// executor reuses one arena across every call and steady-state training
/// and scanning do no per-step allocation here.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Conv2d, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut conv = Conv2d::new(3, 16, 3, 1, 42);
/// let out = conv.forward(&Tensor::zeros(vec![3, 12, 12]), true);
/// assert_eq!(out.shape(), &[16, 12, 12]); // "same" spatial size
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    ksize: usize,
    pad: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cache: LegacyCache,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel size is even (symmetric
    /// "same" padding needs odd kernels).
    pub fn new(in_c: usize, out_c: usize, ksize: usize, pad: usize, seed: u64) -> Self {
        assert!(in_c > 0 && out_c > 0 && ksize > 0, "zero conv dimension");
        assert!(ksize % 2 == 1, "kernel size must be odd, got {ksize}");
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * ksize * ksize;
        let count = out_c * fan_in;
        Conv2d {
            in_c,
            out_c,
            ksize,
            pad,
            weights: init::he_normal(count, fan_in, &mut rng),
            bias: vec![0.0; out_c],
            grad_weights: vec![0.0; count],
            grad_bias: vec![0.0; out_c],
            cache: LegacyCache::default(),
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.pad + 1 - self.ksize,
            w + 2 * self.pad + 1 - self.ksize,
        )
    }

    fn check_input(&self, in_shape: &[usize]) -> (usize, usize) {
        assert_eq!(in_shape.len(), 3, "conv input must be CHW");
        assert_eq!(
            in_shape[0], self.in_c,
            "conv expected {} channels",
            self.in_c
        );
        (in_shape[1], in_shape[2])
    }

    /// The im2col matrix length for one direction (`col` or `dcol`).
    fn col_len(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.out_hw(h, w);
        self.in_c * self.ksize * self.ksize * oh * ow
    }

    /// Unfolds `x` into `col`: row `(ic·k + ky)·k + kx` holds, for every
    /// output position `(oy, ox)`, the input sample
    /// `x[ic][oy+ky-pad][ox+kx-pad]` (zero outside the image).
    ///
    /// Writes into a caller-provided slice (a planned workspace region or
    /// the legacy cache). Every element of `col` is written exactly once —
    /// either a copy from `x` or an explicit padding zero — so no upfront
    /// full-buffer memset is needed and stale contents from a previous
    /// window never leak into the padding.
    #[allow(clippy::too_many_arguments)]
    fn im2col_into(
        col: &mut [f32],
        x: &[f32],
        in_c: usize,
        ksize: usize,
        pad: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
    ) {
        Self::im2col_strided_into(col, x, in_c, ksize, pad, h, w, oh, ow, oh * ow, 0);
    }

    /// [`Conv2d::im2col_into`] writing sample `col_off / (oh·ow)` of a
    /// batched column matrix whose rows are `row_stride` wide: row `r` of
    /// this sample's unfold lands at `col[r·row_stride + col_off ..]`.
    /// With `row_stride = batch·oh·ow` and `col_off = b·oh·ow` the batched
    /// matrix holds every window's columns side by side (window-major), so
    /// one [`gemm::gemm_nn`] call convolves the whole block while each
    /// column's arithmetic — and therefore each window's output — is
    /// unchanged.
    #[allow(clippy::too_many_arguments)]
    fn im2col_strided_into(
        col: &mut [f32],
        x: &[f32],
        in_c: usize,
        ksize: usize,
        pad: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        row_stride: usize,
        col_off: usize,
    ) {
        let k = ksize;
        let pad = pad as isize;
        assert_eq!(col.len(), in_c * k * k * row_stride, "im2col buffer length");
        assert!(col_off + oh * ow <= row_stride, "im2col column range");
        for ic in 0..in_c {
            let plane = &x[ic * h * w..(ic + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = ((ic * k + ky) * k + kx) * row_stride + col_off;
                    let dst = &mut col[row_base..row_base + oh * ow];
                    // Valid output-x range for this kernel column: the
                    // sampled ix = ox + kx - pad must land in [0, w).
                    let ox0 = 0isize.max(pad - kx as isize) as usize;
                    let ox1 = (ow as isize).min(w as isize + pad - kx as isize).max(0) as usize;
                    if ox0 >= ox1 {
                        dst.fill(0.0); // whole column samples the zero padding
                        continue;
                    }
                    let shift = kx as isize - pad; // ix = ox + shift
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        let row = &mut dst[oy * ow..(oy + 1) * ow];
                        if iy < 0 || iy >= h as isize {
                            row.fill(0.0); // fully above/below the image
                            continue;
                        }
                        let src_base = iy as usize * w;
                        let src = &plane[(src_base as isize + ox0 as isize + shift) as usize
                            ..(src_base as isize + ox1 as isize + shift) as usize];
                        row[..ox0].fill(0.0);
                        row[ox0..ox1].copy_from_slice(src);
                        row[ox1..].fill(0.0);
                    }
                }
            }
        }
    }

    /// Folds `dcol` back into an input-shaped gradient `grad_in`
    /// (scatter-add inverse of [`Conv2d::im2col_into`]; `grad_in` must be
    /// zero-filled by the caller).
    fn col2im(&self, dcol: &[f32], grad_in: &mut [f32], h: usize, w: usize, oh: usize, ow: usize) {
        let k = self.ksize;
        let pad = self.pad as isize;
        for ic in 0..self.in_c {
            let plane = &mut grad_in[ic * h * w..(ic + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = ((ic * k + ky) * k + kx) * oh * ow;
                    let src_row = &dcol[row_base..row_base + oh * ow];
                    let ox0 = 0isize.max(pad - kx as isize) as usize;
                    let ox1 = (ow as isize).min(w as isize + pad - kx as isize).max(0) as usize;
                    if ox0 >= ox1 {
                        continue;
                    }
                    let shift = kx as isize - pad;
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_base = (iy as usize * w) as isize + shift;
                        let dst = &mut plane[(dst_base + ox0 as isize) as usize
                            ..(dst_base + ox1 as isize) as usize];
                        for (d, s) in dst.iter_mut().zip(&src_row[oy * ow + ox0..oy * ow + ox1]) {
                            *d += s;
                        }
                    }
                }
            }
        }
    }

    /// Whether the shape alone qualifies for the direct AVX-512 3×3
    /// kernel: 3×3 kernel, "same" padding, stride 1, image width at most
    /// [`MAX_DIRECT_W`]. Split from [`Conv2d::direct_path`] because
    /// scratch *sizing* must not depend on the runtime backend (plans
    /// built under any backend stay valid under every other).
    fn direct_shape(&self, w: usize) -> bool {
        self.ksize == 3 && self.pad == 1 && (1..=MAX_DIRECT_W).contains(&w)
    }

    /// Scratch floats the direct kernel needs for this shape: the
    /// transposed tap matrix plus the position-major staging buffer.
    /// Zero when the shape is ineligible.
    fn direct_scratch_len(&self, h: usize, w: usize) -> usize {
        if self.direct_shape(w) {
            self.in_c * 9 * self.out_c + self.out_c * h * w
        } else {
            0
        }
    }

    /// Whether this call should take the direct AVX-512 3×3 kernel
    /// instead of im2col + GEMM. Shape-wise the kernel covers exactly the
    /// paper's convolutions ([`Conv2d::direct_shape`]). Backend-wise it
    /// rides the same runtime dispatch as the GEMM kernels, so
    /// `HOTSPOT_SIMD=scalar` disables it too and the scalar bit-identity
    /// pins keep meaning what they always meant.
    fn direct_path(&self, _h: usize, _w: usize) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            self.direct_shape(_w) && gemm::kernel_backend() == gemm::KernelBackend::Avx512
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Direct 3×3 forward for one sample (see [`Conv2d::direct_path`] for
    /// the eligibility contract), given an already-transposed tap matrix
    /// `wt` and a staging region of `out_c·h·w` floats. The ReLU epilogue
    /// is folded into the register tail (`max(acc, 0)` matches the scalar
    /// predicate bit-for-bit, including `-0.0` and NaN); other epilogues
    /// run the shared scalar [`Epilogue::apply`] over the finished output.
    #[cfg(target_arch = "x86_64")]
    #[allow(clippy::too_many_arguments)]
    fn forward_direct(
        &self,
        x: &[f32],
        h: usize,
        w: usize,
        y: &mut [f32],
        wt: &[f32],
        stage: &mut [f32],
        ep: Option<Epilogue>,
    ) {
        let relu = ep == Some(Epilogue::Relu);
        // Safety: `direct_path` returned true, so the resolved GEMM
        // backend is Avx512, which `gemm::resolve_backend` only permits
        // when avx512f is available at runtime.
        unsafe {
            direct3x3::conv_same_avx512(
                x, self.in_c, h, w, wt, &self.bias, self.out_c, relu, stage, y,
            );
        }
        match ep {
            None | Some(Epilogue::Relu) => {}
            Some(other) => other.apply(y),
        }
    }

    /// The im2col + GEMM forward pass — the portable path every backend
    /// shares, and the only one training may use (backward reads the
    /// `col` matrix this leaves in `scratch`).
    fn forward_im2col(
        &self,
        x: &[f32],
        h: usize,
        w: usize,
        y: &mut [f32],
        scratch: &mut [f32],
        epilogue: Option<Epilogue>,
    ) {
        let (oh, ow) = self.out_hw(h, w);
        let col = &mut scratch[..self.col_len(h, w)];
        Self::im2col_into(col, x, self.in_c, self.ksize, self.pad, h, w, oh, ow);
        for (oc, &b) in self.bias.iter().enumerate() {
            y[oc * oh * ow..(oc + 1) * oh * ow].fill(b);
        }
        gemm::gemm_nn_fused(
            self.out_c,
            oh * ow,
            self.in_c * self.ksize * self.ksize,
            &self.weights,
            col,
            y,
            epilogue,
        );
    }

    /// Reference direct-loop forward pass. Kept as the oracle the GEMM
    /// path is tested against; not compiled into release builds.
    #[cfg(test)]
    pub(crate) fn forward_naive(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        let pad = self.pad as isize;
        let k = self.ksize;
        let weight = |oc: usize, ic: usize, ky: usize, kx: usize| {
            self.weights[((oc * self.in_c + ic) * k + ky) * k + kx]
        };
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += weight(oc, ic, ky, kx)
                                    * input.at3(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    *out.at3_mut(oc, oy, ox) = acc;
                }
            }
        }
        out
    }
}

/// The AVX-512 direct 3×3 "same" convolution kernel.
///
/// Vectorisation axis: **output channels**. A `zmm` lane is one output
/// channel, the input pixel is an embedded scalar broadcast, and the
/// weights are pre-transposed once per call into `[ic·ky·kx][oc]` tap
/// vectors ([`transpose_weights`]) so each tap is a single contiguous
/// (masked) load. That keeps every lane doing useful work regardless of
/// image width — the bench host sustains one 512-bit FMA per cycle, so
/// lane occupancy is exactly throughput.
///
/// An output row is held as `w` accumulators (one vector per output
/// pixel, seeded with the bias vector), monomorphised over `w ≤
/// MAX_DIRECT_W` so the accumulator indexing is static and the whole row
/// stays in registers across the full `in_c × 3 × 3` reduction. Rows are
/// produced position-major (`[oy][ox][oc]`) into a staging buffer and
/// transposed to CHW afterwards — pure copies, no arithmetic.
///
/// For one output element the contributions arrive in exactly the naive
/// `(ic, ky, kx)` order into a single accumulator — the only difference
/// from the scalar oracle is FMA contraction and a different grouping of
/// elements into registers, which is what the bounded-ULP envelope
/// ([`crate::ulp`]) covers.
#[cfg(target_arch = "x86_64")]
mod direct3x3 {
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// Transposes conv weights `[oc][ic][ky][kx]` into tap-major
    /// `[ic·9 + ky·3 + kx][oc]` vectors for the direct kernel. Pure
    /// copies; runs once per forward call (shared across a whole batch).
    pub fn transpose_weights(weights: &[f32], in_c: usize, out_c: usize, wt: &mut [f32]) {
        assert_eq!(weights.len(), out_c * in_c * 9, "weight transpose input");
        assert!(wt.len() >= in_c * 9 * out_c, "weight transpose output");
        for oc in 0..out_c {
            let src = &weights[oc * in_c * 9..(oc + 1) * in_c * 9];
            for (t, &v) in src.iter().enumerate() {
                wt[t * out_c + oc] = v;
            }
        }
    }

    /// One output row for one 16-wide output-channel block.
    ///
    /// `W` (the image width) is a const generic so the per-pixel guards
    /// below fold at compile time and the `acc` array is indexed only by
    /// constants — LLVM then keeps all `W` accumulators in registers for
    /// the whole reduction, which a rolled loop (dynamic `acc[p]`) does
    /// not achieve.
    ///
    /// # Safety
    ///
    /// avx512f; `x` points at an `in_c × h × W` sample, `wt` at the
    /// block's first tap vector (stride `out_c` between taps), and
    /// `stage_row` at `W · out_c` writable floats; `mask` keeps every
    /// lane access within the `out_c` tail.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn row<const W: usize>(
        x: *const f32,
        in_c: usize,
        h: usize,
        oy: usize,
        wt: *const f32,
        out_c: usize,
        mask: __mmask16,
        bias_v: __m512,
        relu: bool,
        stage_row: *mut f32,
    ) {
        let zero = _mm512_setzero_ps();
        let mut acc = [bias_v; W];
        // Vertical taps hitting the zero padding contribute nothing and
        // are skipped outright (top row lacks ky = 0, bottom row ky = 2).
        let ky_lo = usize::from(oy == 0);
        let ky_hi = if oy + 1 == h { 1 } else { 2 };
        for ic in 0..in_c {
            let plane = x.add(ic * h * W);
            let taps = wt.add(ic * 9 * out_c);
            for ky in ky_lo..=ky_hi {
                let xrow = plane.add((oy + ky - 1) * W);
                for kx in 0..3usize {
                    let wv = _mm512_maskz_loadu_ps(mask, taps.add((ky * 3 + kx) * out_c));
                    // Pixel p samples xrow[p + kx - 1]; the two horizontal
                    // padding taps (kx = 0 at the left edge, kx = 2 at the
                    // right edge) are skipped by guards that fold away
                    // once W and the unrolled kx are constants.
                    macro_rules! pixels {
                        ($($p:literal),*) => { $(
                            if $p < W
                                && !(kx == 0 && $p == 0)
                                && !(kx == 2 && $p + 1 == W)
                            {
                                let xv = _mm512_set1_ps(*xrow.add(($p + kx) - 1));
                                acc[$p] = _mm512_fmadd_ps(xv, wv, acc[$p]);
                            }
                        )* };
                    }
                    pixels!(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11);
                }
            }
        }
        for (p, &a) in acc.iter().enumerate() {
            let v = if relu { _mm512_max_ps(a, zero) } else { a };
            _mm512_mask_storeu_ps(stage_row.add(p * out_c), mask, v);
        }
    }

    /// 3×3 / pad-1 / stride-1 convolution of one CHW sample, `w ≤ 12`.
    ///
    /// `wt` is the [`transpose_weights`] tap matrix, `stage` a scratch
    /// region of at least `h·w·out_c` floats; `y` receives the CHW
    /// output. A fused ReLU runs in-register (`max(acc, 0)` matches the
    /// scalar predicate bit-for-bit, including `-0.0` and NaN).
    ///
    /// # Safety
    ///
    /// Caller must guarantee avx512f is available. Slice lengths are
    /// checked with plain asserts before any raw pointer is formed.
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn conv_same_avx512(
        x: &[f32],
        in_c: usize,
        h: usize,
        w: usize,
        wt: &[f32],
        bias: &[f32],
        out_c: usize,
        relu: bool,
        stage: &mut [f32],
        y: &mut [f32],
    ) {
        assert!(
            (1..=super::MAX_DIRECT_W).contains(&w),
            "direct conv width {w}"
        );
        assert_eq!(x.len(), in_c * h * w, "direct conv input length");
        assert_eq!(y.len(), out_c * h * w, "direct conv output length");
        assert!(wt.len() >= in_c * 9 * out_c, "direct conv tap matrix");
        assert_eq!(bias.len(), out_c, "direct conv bias");
        assert!(stage.len() >= h * w * out_c, "direct conv staging");
        for ob in (0..out_c).step_by(16) {
            let lanes = 16.min(out_c - ob);
            let mask: __mmask16 = if lanes == 16 {
                0xffff
            } else {
                ((1u32 << lanes) - 1) as __mmask16
            };
            let bias_v = _mm512_maskz_loadu_ps(mask, bias.as_ptr().add(ob));
            for oy in 0..h {
                let stage_row = stage.as_mut_ptr().add(oy * w * out_c + ob);
                let wt_block = wt.as_ptr().add(ob);
                macro_rules! run {
                    ($w:literal) => {
                        row::<$w>(
                            x.as_ptr(),
                            in_c,
                            h,
                            oy,
                            wt_block,
                            out_c,
                            mask,
                            bias_v,
                            relu,
                            stage_row,
                        )
                    };
                }
                match w {
                    12 => run!(12),
                    11 => run!(11),
                    10 => run!(10),
                    9 => run!(9),
                    8 => run!(8),
                    7 => run!(7),
                    6 => run!(6),
                    5 => run!(5),
                    4 => run!(4),
                    3 => run!(3),
                    2 => run!(2),
                    1 => run!(1),
                    _ => unreachable!("width bounded by MAX_DIRECT_W"),
                }
            }
        }
        // Position-major staging → CHW output. Pure copies.
        let s = h * w;
        for oc in 0..out_c {
            for p in 0..s {
                *y.get_unchecked_mut(oc * s + p) = *stage.get_unchecked(p * out_c + oc);
            }
        }
    }
}

impl Layer for Conv2d {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        vec![self.out_c, oh, ow]
    }

    fn scratch_len(&self, in_shape: &[usize]) -> usize {
        let (h, w) = self.check_input(in_shape);
        // col (forward unfold) + dcol (backward Wᵀ·dY), contiguous
        // halves; an inference forward through the same region may
        // instead use the direct kernel's tap matrix + staging layout.
        (2 * self.col_len(h, w)).max(self.direct_scratch_len(h, w))
    }

    fn scratch_infer_len(&self, in_shape: &[usize]) -> usize {
        let (h, w) = self.check_input(in_shape);
        // Inference only unfolds `col` (the `dcol` half is backward-only)
        // — or, on the direct path, holds the tap matrix + staging.
        self.col_len(h, w).max(self.direct_scratch_len(h, w))
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        _idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(x.len(), self.in_c * h * w, "conv input length");
        assert_eq!(y.len(), self.out_c * oh * ow, "conv output length");
        #[cfg(target_arch = "x86_64")]
        if self.direct_path(h, w) {
            let wt_len = self.in_c * 9 * self.out_c;
            let (wt, stage) = scratch.split_at_mut(wt_len);
            direct3x3::transpose_weights(&self.weights, self.in_c, self.out_c, wt);
            self.forward_direct(x, h, w, y, wt, stage, epilogue);
            return;
        }
        self.forward_im2col(x, h, w, y, scratch, epilogue);
    }

    fn forward_train_into(
        &mut self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        _idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        // Training must take the im2col path on every backend:
        // `backward_into` consumes the `col` matrix this leaves in
        // `scratch` (dW = dY·colᵀ), which the direct kernel never
        // materialises.
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(x.len(), self.in_c * h * w, "conv input length");
        assert_eq!(y.len(), self.out_c * oh * ow, "conv output length");
        self.forward_im2col(x, h, w, y, scratch, epilogue);
    }

    fn scratch_batch_len(&self, in_shape: &[usize], batch: usize) -> usize {
        let (h, w) = self.check_input(in_shape);
        if batch <= 1 {
            return self.col_len(h, w).max(self.direct_scratch_len(h, w));
        }
        let (oh, ow) = self.out_hw(h, w);
        // Batched col matrix (every window's columns side by side) plus a
        // channel-major staging buffer for the GEMM output before it is
        // reordered to sample-major. The direct kernel's footprint (tap
        // matrix + one sample's staging) is always smaller, but take the
        // max so the bound is self-evidently backend-independent.
        (batch * self.col_len(h, w) + batch * self.out_c * oh * ow)
            .max(self.direct_scratch_len(h, w))
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        batch: usize,
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        if batch <= 1 {
            // The single-window path needs no staging reorder; its scratch
            // footprint is the plain inference one.
            if batch == 1 {
                self.forward_into(x, in_shape, y, scratch, idx, epilogue);
            }
            return;
        }
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        let s = oh * ow;
        let in_len = self.in_c * h * w;
        let out_len = self.out_c * s;
        assert_eq!(x.len(), in_len * batch, "conv batched input length");
        assert_eq!(y.len(), out_len * batch, "conv batched output length");
        #[cfg(target_arch = "x86_64")]
        if self.direct_path(h, w) {
            // The direct kernel is per-sample, so the batched contract
            // (bit-identical to per-window calls) holds trivially — and
            // the big batched col matrix and its sample-major reorder
            // both disappear. The tap transposition is shared across the
            // whole block.
            let wt_len = self.in_c * 9 * self.out_c;
            let (wt, stage) = scratch.split_at_mut(wt_len);
            direct3x3::transpose_weights(&self.weights, self.in_c, self.out_c, wt);
            for b in 0..batch {
                self.forward_direct(
                    &x[b * in_len..(b + 1) * in_len],
                    h,
                    w,
                    &mut y[b * out_len..(b + 1) * out_len],
                    wt,
                    stage,
                    epilogue,
                );
            }
            return;
        }
        let col_rows = self.in_c * self.ksize * self.ksize;
        let total_cols = batch * s;
        let (col, stage) = scratch.split_at_mut(col_rows * total_cols);
        let stage = &mut stage[..self.out_c * total_cols];
        // Window-major unfold: window b owns columns [b·s, (b+1)·s).
        for b in 0..batch {
            Self::im2col_strided_into(
                col,
                &x[b * in_len..(b + 1) * in_len],
                self.in_c,
                self.ksize,
                self.pad,
                h,
                w,
                oh,
                ow,
                total_cols,
                b * s,
            );
        }
        // One GEMM for the whole block. GEMM columns are computed
        // independently (the accumulation order over k depends only on k),
        // so each window's output bits match the per-window call; the
        // epilogue is element-wise, so applying it across the block is
        // equally bit-identical.
        for (oc, &b) in self.bias.iter().enumerate() {
            stage[oc * total_cols..(oc + 1) * total_cols].fill(b);
        }
        gemm::gemm_nn_fused(
            self.out_c,
            total_cols,
            col_rows,
            &self.weights,
            col,
            stage,
            epilogue,
        );
        // The GEMM wrote channel-major [oc][b][s]; downstream layers expect
        // sample-major [b][oc][s]. Pure copies — no arithmetic.
        for b in 0..batch {
            for oc in 0..self.out_c {
                y[(b * self.out_c + oc) * s..][..s]
                    .copy_from_slice(&stage[(oc * batch + b) * s..][..s]);
            }
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        let (h, w) = self.check_input(ctx.in_shape);
        let (oh, ow) = self.out_hw(h, w);
        let k2 = self.ksize * self.ksize;
        assert_eq!(ctx.grad.len(), self.out_c * oh * ow, "conv grad shape");
        assert_eq!(grad_in.len(), self.in_c * h * w, "conv grad_in length");
        let g = ctx.grad;

        // db[oc] = Σ_spatial dY[oc].
        for (oc, gb) in self.grad_bias.iter_mut().enumerate() {
            *gb += g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
        }
        let (col, dcol) = ctx.scratch.split_at_mut(self.col_len(h, w));
        let dcol = &mut dcol[..self.col_len(h, w)];
        // dW = dY · colᵀ (accumulated into the running gradient).
        gemm::gemm_nt(
            self.out_c,
            self.in_c * k2,
            oh * ow,
            g,
            col,
            &mut self.grad_weights,
        );
        // dcol = Wᵀ · dY, then scatter-add back to the input shape.
        dcol.fill(0.0);
        gemm::gemm_tn(self.in_c * k2, oh * ow, self.out_c, &self.weights, g, dcol);
        self.col2im(dcol, grad_in, h, w, oh, ow);
    }

    fn accepts_epilogue(&self) -> bool {
        true
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "conv"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input channel.
        let mut conv = Conv2d::new(1, 1, 1, 0, 0);
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            // First visit is the weight, second the bias.
            w[0] = if call == 0 { 1.0 } else { 0.0 };
            call += 1;
        });
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn same_padding_preserves_shape() {
        let mut conv = Conv2d::new(4, 8, 3, 1, 1);
        let y = conv.forward(&Tensor::zeros(vec![4, 12, 12]), false);
        assert_eq!(y.shape(), &[8, 12, 12]);
        assert_eq!(conv.out_shape(&[4, 12, 12]), vec![8, 12, 12]);
    }

    #[test]
    fn valid_convolution_shrinks() {
        let mut conv = Conv2d::new(1, 1, 3, 0, 1);
        let y = conv.forward(&Tensor::zeros(vec![1, 5, 7]), false);
        assert_eq!(y.shape(), &[1, 3, 5]);
    }

    #[test]
    fn known_sum_kernel() {
        // All-ones 3x3 kernel over constant input counts the in-bounds
        // neighbourhood (padding contributes zeros).
        let mut conv = Conv2d::new(1, 1, 3, 1, 2);
        conv.visit_params(&mut |w, _| w.iter_mut().for_each(|v| *v = 1.0));
        // Reset bias to zero (visit sets it to 1 too, fix below).
        conv.visit_params(&mut |w, _| {
            if w.len() == 1 {
                w[0] = 0.0;
            }
        });
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0; 9]);
        let y = conv.forward(&x, false);
        assert_eq!(y.at3(0, 1, 1), 9.0); // full neighbourhood
        assert_eq!(y.at3(0, 0, 0), 4.0); // corner: 2x2 in bounds
        assert_eq!(y.at3(0, 0, 1), 6.0); // edge: 2x3 in bounds
    }

    #[test]
    fn bias_is_added() {
        let mut conv = Conv2d::new(1, 2, 1, 0, 3);
        conv.visit_params(&mut |w, _| {
            for v in w.iter_mut() {
                *v = 0.0;
            }
        });
        // Set biases to [1, -2].
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            if call == 1 {
                w[0] = 1.0;
                w[1] = -2.0;
            }
            call += 1;
        });
        let y = conv.forward(&Tensor::zeros(vec![1, 2, 2]), false);
        assert_eq!(y.at3(0, 0, 0), 1.0);
        assert_eq!(y.at3(1, 1, 1), -2.0);
    }

    #[test]
    fn deterministic_init() {
        let a = Conv2d::new(2, 3, 3, 1, 7);
        let b = Conv2d::new(2, 3, 3, 1, 7);
        assert_eq!(a.weights, b.weights);
        let c = Conv2d::new(2, 3, 3, 1, 8);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn parameter_count() {
        let conv = Conv2d::new(16, 32, 3, 1, 0);
        assert_eq!(conv.parameter_count(), 32 * 16 * 9 + 32);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0);
        let _ = conv.backward(&Tensor::zeros(vec![1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 2, 0, 0);
    }

    #[test]
    fn gemm_forward_matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        // Odd kernels, pad 0/1/2, non-square images, multi-channel.
        for &(in_c, out_c, k, pad, h, w) in &[
            (1, 1, 1, 0, 4, 4),
            (2, 3, 3, 1, 5, 7),
            (3, 2, 3, 0, 7, 5),
            (4, 8, 3, 1, 12, 12),
            (2, 2, 5, 2, 9, 6),
            (1, 4, 5, 0, 8, 11),
        ] {
            let mut conv = Conv2d::new(in_c, out_c, k, pad, 21);
            let data: Vec<f32> = (0..in_c * h * w)
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect();
            let x = Tensor::from_vec(vec![in_c, h, w], data);
            let naive = conv.forward_naive(&x);
            let fast = conv.forward(&x, false);
            assert_eq!(fast.shape(), naive.shape());
            for (i, (a, b)) in fast.as_slice().iter().zip(naive.as_slice()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4_f32.max(1e-5 * b.abs()),
                    "({in_c},{out_c},{k},{pad},{h},{w}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn gemm_path_equals_naive_on_random_shapes(
            seed in 0u64..1000,
            in_c in 1usize..4,
            out_c in 1usize..5,
            k in proptest::prop_oneof![
                proptest::strategy::Just(1usize),
                proptest::strategy::Just(3usize),
                proptest::strategy::Just(5usize),
            ],
            pad in 0usize..3,
            h in 5usize..11,
            w in 5usize..11,
        ) {
            let mut conv = Conv2d::new(in_c, out_c, k, pad, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let data: Vec<f32> =
                (0..in_c * h * w).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let x = Tensor::from_vec(vec![in_c, h, w], data);
            let naive = conv.forward_naive(&x);
            let fast = conv.forward(&x, false);
            proptest::prop_assert_eq!(fast.shape(), naive.shape());
            for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
                proptest::prop_assert!(
                    (a - b).abs() <= 1e-4_f32.max(1e-5 * b.abs()),
                    "({}, {}, {}, {}, {}, {}): {} vs {}",
                    in_c, out_c, k, pad, h, w, a, b
                );
            }
        }
    }

    #[test]
    fn forward_inference_matches_forward_bitwise_and_leaves_scratch_alone() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f32> = (0..2 * 6 * 6)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let x = Tensor::from_vec(vec![2, 6, 6], data);
        let reference = conv.forward(&x, false);
        let cap = conv.legacy_cache().scratch_capacity();
        let inferred = conv.forward_inference(&x);
        assert_eq!(inferred.as_slice(), reference.as_slice());
        assert_eq!(
            conv.legacy_cache().scratch_capacity(),
            cap,
            "inference must not touch scratch"
        );
    }

    #[test]
    fn scratch_is_reused_across_forwards() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 4);
        let x = Tensor::zeros(vec![2, 6, 6]);
        let _ = conv.forward(&x, true);
        let cap = conv.legacy_cache().scratch_capacity();
        for _ in 0..3 {
            let _ = conv.forward(&x, true);
            let _ = conv.backward(&Tensor::zeros(vec![3, 6, 6]));
        }
        assert_eq!(
            conv.legacy_cache().scratch_capacity(),
            cap,
            "im2col scratch must be reused"
        );
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_window() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(batch, pad, k) in &[(1usize, 1usize, 3usize), (2, 1, 3), (5, 0, 3), (4, 2, 5)] {
            let conv = Conv2d::new(2, 3, k, pad, 23);
            let in_shape = [2usize, 6, 6];
            let in_len = 2 * 6 * 6;
            let (oh, ow) = conv.out_hw(6, 6);
            let out_len = 3 * oh * ow;
            let x: Vec<f32> = (0..in_len * batch)
                .map(|_| rng.gen_range(-1.5f32..1.5))
                .collect();
            for ep in [None, Some(Epilogue::Relu)] {
                let mut batched = vec![0.0f32; out_len * batch];
                let mut scratch = vec![0.0f32; conv.scratch_batch_len(&in_shape, batch)];
                conv.forward_batch_into(
                    &x,
                    &in_shape,
                    batch,
                    &mut batched,
                    &mut scratch,
                    &mut [],
                    ep,
                );
                let mut single = vec![0.0f32; out_len * batch];
                let mut s1 = vec![0.0f32; conv.scratch_infer_len(&in_shape)];
                for b in 0..batch {
                    conv.forward_into(
                        &x[b * in_len..(b + 1) * in_len],
                        &in_shape,
                        &mut single[b * out_len..(b + 1) * out_len],
                        &mut s1,
                        &mut [],
                        ep,
                    );
                }
                assert_eq!(batched, single, "batch={batch} pad={pad} k={k} ep={ep:?}");
            }
        }
    }

    #[test]
    fn direct_path_matches_im2col_within_ulp() {
        use crate::ulp::assert_ulp_close;
        if gemm::kernel_backend() != gemm::KernelBackend::Avx512 {
            return; // the direct kernel only exists on the AVX-512 backend
        }
        let mut rng = StdRng::seed_from_u64(31);
        // Paper shapes plus edge widths (1, 12), a single-row image, an
        // output-channel count that exercises the masked tail block
        // (17 = 16 + 1), and a tall image.
        for &(in_c, out_c, h, w) in &[
            (32usize, 16usize, 12usize, 12usize),
            (16, 32, 6, 6),
            (3, 17, 9, 12),
            (2, 4, 7, 1),
            (1, 1, 1, 3),
            (4, 3, 20, 11),
        ] {
            let mut conv = Conv2d::new(in_c, out_c, 3, 1, 29);
            let in_shape = [in_c, h, w];
            let data: Vec<f32> = (0..in_c * h * w)
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect();
            let x = Tensor::from_vec(vec![in_c, h, w], data);
            for ep in [None, Some(Epilogue::Relu), Some(Epilogue::Tanh)] {
                assert!(conv.direct_path(h, w), "shape should be eligible");
                let mut direct = vec![0.0f32; out_c * h * w];
                let mut s_inf = vec![0.0f32; conv.scratch_infer_len(&in_shape)];
                conv.forward_into(
                    x.as_slice(),
                    &in_shape,
                    &mut direct,
                    &mut s_inf,
                    &mut [],
                    ep,
                );
                // The training forward must stay on im2col (backward
                // reads its col matrix), giving us the GEMM reference.
                let mut viacol = vec![0.0f32; out_c * h * w];
                let mut s_train = vec![0.0f32; conv.scratch_len(&in_shape)];
                conv.forward_train_into(
                    x.as_slice(),
                    &in_shape,
                    &mut viacol,
                    &mut s_train,
                    &mut [],
                    ep,
                );
                assert_ulp_close(&direct, &viacol, 128, 1e-4);
            }
        }
    }

    #[test]
    fn fused_relu_epilogue_is_bit_identical_to_unfused() {
        use super::super::Relu;
        let conv = Conv2d::new(2, 3, 3, 1, 9);
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<f32> = (0..2 * 5 * 5)
            .map(|_| rng.gen_range(-1.5f32..1.5))
            .collect();
        let x = Tensor::from_vec(vec![2, 5, 5], data);
        let in_shape = [2usize, 5, 5];
        let mut y_fused = vec![0.0f32; 3 * 5 * 5];
        let mut scratch = vec![0.0f32; conv.scratch_len(&in_shape)];
        conv.forward_into(
            x.as_slice(),
            &in_shape,
            &mut y_fused,
            &mut scratch,
            &mut [],
            Some(Epilogue::Relu),
        );
        let unfused = Relu::new().forward_inference(&conv.forward_inference(&x));
        assert_eq!(y_fused.as_slice(), unfused.as_slice());
    }
}
