//! 2-D convolution, lowered onto GEMM via im2col.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;
use crate::{gemm, init};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-D convolution over CHW tensors with configurable kernel size,
/// stride 1 and symmetric zero padding (the paper uses 3×3 kernels with
/// "same" padding, i.e. `padding = 1`).
///
/// Weight layout: `[out_c][in_c][ky][kx]`, bias per output channel.
///
/// Internally the spatial loops are lowered onto the [`crate::gemm`]
/// kernels: the input is unfolded into a column matrix
/// `col[in_c·k²][oh·ow]` (im2col) so that
///
/// * forward is `out = W · col` ([`gemm::gemm_nn_fused`], optionally with
///   a fused activation epilogue),
/// * the weight gradient is `dW = dY · colᵀ` ([`gemm::gemm_nt`]), and
/// * the input gradient is `dX = col2im(Wᵀ · dY)` ([`gemm::gemm_tn`]).
///
/// The `col` and `dcol` matrices live in caller-provided scratch
/// ([`Layer::scratch_len`] reports `2 · in_c·k²·oh·ow`), so a planned
/// executor reuses one arena across every call and steady-state training
/// and scanning do no per-step allocation here.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Conv2d, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut conv = Conv2d::new(3, 16, 3, 1, 42);
/// let out = conv.forward(&Tensor::zeros(vec![3, 12, 12]), true);
/// assert_eq!(out.shape(), &[16, 12, 12]); // "same" spatial size
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    ksize: usize,
    pad: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cache: LegacyCache,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel size is even (symmetric
    /// "same" padding needs odd kernels).
    pub fn new(in_c: usize, out_c: usize, ksize: usize, pad: usize, seed: u64) -> Self {
        assert!(in_c > 0 && out_c > 0 && ksize > 0, "zero conv dimension");
        assert!(ksize % 2 == 1, "kernel size must be odd, got {ksize}");
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * ksize * ksize;
        let count = out_c * fan_in;
        Conv2d {
            in_c,
            out_c,
            ksize,
            pad,
            weights: init::he_normal(count, fan_in, &mut rng),
            bias: vec![0.0; out_c],
            grad_weights: vec![0.0; count],
            grad_bias: vec![0.0; out_c],
            cache: LegacyCache::default(),
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.pad + 1 - self.ksize,
            w + 2 * self.pad + 1 - self.ksize,
        )
    }

    fn check_input(&self, in_shape: &[usize]) -> (usize, usize) {
        assert_eq!(in_shape.len(), 3, "conv input must be CHW");
        assert_eq!(
            in_shape[0], self.in_c,
            "conv expected {} channels",
            self.in_c
        );
        (in_shape[1], in_shape[2])
    }

    /// The im2col matrix length for one direction (`col` or `dcol`).
    fn col_len(&self, h: usize, w: usize) -> usize {
        let (oh, ow) = self.out_hw(h, w);
        self.in_c * self.ksize * self.ksize * oh * ow
    }

    /// Unfolds `x` into `col`: row `(ic·k + ky)·k + kx` holds, for every
    /// output position `(oy, ox)`, the input sample
    /// `x[ic][oy+ky-pad][ox+kx-pad]` (zero outside the image).
    ///
    /// Writes into a caller-provided slice (a planned workspace region or
    /// the legacy cache). Every element of `col` is written exactly once —
    /// either a copy from `x` or an explicit padding zero — so no upfront
    /// full-buffer memset is needed and stale contents from a previous
    /// window never leak into the padding.
    #[allow(clippy::too_many_arguments)]
    fn im2col_into(
        col: &mut [f32],
        x: &[f32],
        in_c: usize,
        ksize: usize,
        pad: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
    ) {
        Self::im2col_strided_into(col, x, in_c, ksize, pad, h, w, oh, ow, oh * ow, 0);
    }

    /// [`Conv2d::im2col_into`] writing sample `col_off / (oh·ow)` of a
    /// batched column matrix whose rows are `row_stride` wide: row `r` of
    /// this sample's unfold lands at `col[r·row_stride + col_off ..]`.
    /// With `row_stride = batch·oh·ow` and `col_off = b·oh·ow` the batched
    /// matrix holds every window's columns side by side (window-major), so
    /// one [`gemm::gemm_nn`] call convolves the whole block while each
    /// column's arithmetic — and therefore each window's output — is
    /// unchanged.
    #[allow(clippy::too_many_arguments)]
    fn im2col_strided_into(
        col: &mut [f32],
        x: &[f32],
        in_c: usize,
        ksize: usize,
        pad: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        row_stride: usize,
        col_off: usize,
    ) {
        let k = ksize;
        let pad = pad as isize;
        assert_eq!(col.len(), in_c * k * k * row_stride, "im2col buffer length");
        assert!(col_off + oh * ow <= row_stride, "im2col column range");
        for ic in 0..in_c {
            let plane = &x[ic * h * w..(ic + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = ((ic * k + ky) * k + kx) * row_stride + col_off;
                    let dst = &mut col[row_base..row_base + oh * ow];
                    // Valid output-x range for this kernel column: the
                    // sampled ix = ox + kx - pad must land in [0, w).
                    let ox0 = 0isize.max(pad - kx as isize) as usize;
                    let ox1 = (ow as isize).min(w as isize + pad - kx as isize).max(0) as usize;
                    if ox0 >= ox1 {
                        dst.fill(0.0); // whole column samples the zero padding
                        continue;
                    }
                    let shift = kx as isize - pad; // ix = ox + shift
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        let row = &mut dst[oy * ow..(oy + 1) * ow];
                        if iy < 0 || iy >= h as isize {
                            row.fill(0.0); // fully above/below the image
                            continue;
                        }
                        let src_base = iy as usize * w;
                        let src = &plane[(src_base as isize + ox0 as isize + shift) as usize
                            ..(src_base as isize + ox1 as isize + shift) as usize];
                        row[..ox0].fill(0.0);
                        row[ox0..ox1].copy_from_slice(src);
                        row[ox1..].fill(0.0);
                    }
                }
            }
        }
    }

    /// Folds `dcol` back into an input-shaped gradient `grad_in`
    /// (scatter-add inverse of [`Conv2d::im2col_into`]; `grad_in` must be
    /// zero-filled by the caller).
    fn col2im(&self, dcol: &[f32], grad_in: &mut [f32], h: usize, w: usize, oh: usize, ow: usize) {
        let k = self.ksize;
        let pad = self.pad as isize;
        for ic in 0..self.in_c {
            let plane = &mut grad_in[ic * h * w..(ic + 1) * h * w];
            for ky in 0..k {
                for kx in 0..k {
                    let row_base = ((ic * k + ky) * k + kx) * oh * ow;
                    let src_row = &dcol[row_base..row_base + oh * ow];
                    let ox0 = 0isize.max(pad - kx as isize) as usize;
                    let ox1 = (ow as isize).min(w as isize + pad - kx as isize).max(0) as usize;
                    if ox0 >= ox1 {
                        continue;
                    }
                    let shift = kx as isize - pad;
                    for oy in 0..oh {
                        let iy = oy as isize + ky as isize - pad;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let dst_base = (iy as usize * w) as isize + shift;
                        let dst = &mut plane[(dst_base + ox0 as isize) as usize
                            ..(dst_base + ox1 as isize) as usize];
                        for (d, s) in dst.iter_mut().zip(&src_row[oy * ow + ox0..oy * ow + ox1]) {
                            *d += s;
                        }
                    }
                }
            }
        }
    }

    /// Reference direct-loop forward pass. Kept as the oracle the GEMM
    /// path is tested against; not compiled into release builds.
    #[cfg(test)]
    pub(crate) fn forward_naive(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        let pad = self.pad as isize;
        let k = self.ksize;
        let weight = |oc: usize, ic: usize, ky: usize, kx: usize| {
            self.weights[((oc * self.in_c + ic) * k + ky) * k + kx]
        };
        for oc in 0..self.out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = self.bias[oc];
                    for ic in 0..self.in_c {
                        for ky in 0..k {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox as isize + kx as isize - pad;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += weight(oc, ic, ky, kx)
                                    * input.at3(ic, iy as usize, ix as usize);
                            }
                        }
                    }
                    *out.at3_mut(oc, oy, ox) = acc;
                }
            }
        }
        out
    }
}

impl Layer for Conv2d {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        vec![self.out_c, oh, ow]
    }

    fn scratch_len(&self, in_shape: &[usize]) -> usize {
        let (h, w) = self.check_input(in_shape);
        // col (forward unfold) + dcol (backward Wᵀ·dY), contiguous halves.
        2 * self.col_len(h, w)
    }

    fn scratch_infer_len(&self, in_shape: &[usize]) -> usize {
        let (h, w) = self.check_input(in_shape);
        // Inference only unfolds `col`; the `dcol` half is backward-only.
        self.col_len(h, w)
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        _idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(x.len(), self.in_c * h * w, "conv input length");
        assert_eq!(y.len(), self.out_c * oh * ow, "conv output length");
        let col = &mut scratch[..self.col_len(h, w)];
        Self::im2col_into(col, x, self.in_c, self.ksize, self.pad, h, w, oh, ow);
        for (oc, &b) in self.bias.iter().enumerate() {
            y[oc * oh * ow..(oc + 1) * oh * ow].fill(b);
        }
        gemm::gemm_nn_fused(
            self.out_c,
            oh * ow,
            self.in_c * self.ksize * self.ksize,
            &self.weights,
            col,
            y,
            epilogue,
        );
    }

    fn scratch_batch_len(&self, in_shape: &[usize], batch: usize) -> usize {
        let (h, w) = self.check_input(in_shape);
        if batch <= 1 {
            return self.col_len(h, w);
        }
        let (oh, ow) = self.out_hw(h, w);
        // Batched col matrix (every window's columns side by side) plus a
        // channel-major staging buffer for the GEMM output before it is
        // reordered to sample-major.
        batch * self.col_len(h, w) + batch * self.out_c * oh * ow
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        batch: usize,
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        if batch <= 1 {
            // The single-window path needs no staging reorder; its scratch
            // footprint is the plain inference one.
            if batch == 1 {
                self.forward_into(x, in_shape, y, scratch, idx, epilogue);
            }
            return;
        }
        let (h, w) = self.check_input(in_shape);
        let (oh, ow) = self.out_hw(h, w);
        let s = oh * ow;
        let in_len = self.in_c * h * w;
        let out_len = self.out_c * s;
        assert_eq!(x.len(), in_len * batch, "conv batched input length");
        assert_eq!(y.len(), out_len * batch, "conv batched output length");
        let col_rows = self.in_c * self.ksize * self.ksize;
        let total_cols = batch * s;
        let (col, stage) = scratch.split_at_mut(col_rows * total_cols);
        let stage = &mut stage[..self.out_c * total_cols];
        // Window-major unfold: window b owns columns [b·s, (b+1)·s).
        for b in 0..batch {
            Self::im2col_strided_into(
                col,
                &x[b * in_len..(b + 1) * in_len],
                self.in_c,
                self.ksize,
                self.pad,
                h,
                w,
                oh,
                ow,
                total_cols,
                b * s,
            );
        }
        // One GEMM for the whole block. GEMM columns are computed
        // independently (the accumulation order over k depends only on k),
        // so each window's output bits match the per-window call; the
        // epilogue is element-wise, so applying it across the block is
        // equally bit-identical.
        for (oc, &b) in self.bias.iter().enumerate() {
            stage[oc * total_cols..(oc + 1) * total_cols].fill(b);
        }
        gemm::gemm_nn_fused(
            self.out_c,
            total_cols,
            col_rows,
            &self.weights,
            col,
            stage,
            epilogue,
        );
        // The GEMM wrote channel-major [oc][b][s]; downstream layers expect
        // sample-major [b][oc][s]. Pure copies — no arithmetic.
        for b in 0..batch {
            for oc in 0..self.out_c {
                y[(b * self.out_c + oc) * s..][..s]
                    .copy_from_slice(&stage[(oc * batch + b) * s..][..s]);
            }
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        let (h, w) = self.check_input(ctx.in_shape);
        let (oh, ow) = self.out_hw(h, w);
        let k2 = self.ksize * self.ksize;
        assert_eq!(ctx.grad.len(), self.out_c * oh * ow, "conv grad shape");
        assert_eq!(grad_in.len(), self.in_c * h * w, "conv grad_in length");
        let g = ctx.grad;

        // db[oc] = Σ_spatial dY[oc].
        for (oc, gb) in self.grad_bias.iter_mut().enumerate() {
            *gb += g[oc * oh * ow..(oc + 1) * oh * ow].iter().sum::<f32>();
        }
        let (col, dcol) = ctx.scratch.split_at_mut(self.col_len(h, w));
        let dcol = &mut dcol[..self.col_len(h, w)];
        // dW = dY · colᵀ (accumulated into the running gradient).
        gemm::gemm_nt(
            self.out_c,
            self.in_c * k2,
            oh * ow,
            g,
            col,
            &mut self.grad_weights,
        );
        // dcol = Wᵀ · dY, then scatter-add back to the input shape.
        dcol.fill(0.0);
        gemm::gemm_tn(self.in_c * k2, oh * ow, self.out_c, &self.weights, g, dcol);
        self.col2im(dcol, grad_in, h, w, oh, ow);
    }

    fn accepts_epilogue(&self) -> bool {
        true
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "conv"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input channel.
        let mut conv = Conv2d::new(1, 1, 1, 0, 0);
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            // First visit is the weight, second the bias.
            w[0] = if call == 0 { 1.0 } else { 0.0 };
            call += 1;
        });
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn same_padding_preserves_shape() {
        let mut conv = Conv2d::new(4, 8, 3, 1, 1);
        let y = conv.forward(&Tensor::zeros(vec![4, 12, 12]), false);
        assert_eq!(y.shape(), &[8, 12, 12]);
        assert_eq!(conv.out_shape(&[4, 12, 12]), vec![8, 12, 12]);
    }

    #[test]
    fn valid_convolution_shrinks() {
        let mut conv = Conv2d::new(1, 1, 3, 0, 1);
        let y = conv.forward(&Tensor::zeros(vec![1, 5, 7]), false);
        assert_eq!(y.shape(), &[1, 3, 5]);
    }

    #[test]
    fn known_sum_kernel() {
        // All-ones 3x3 kernel over constant input counts the in-bounds
        // neighbourhood (padding contributes zeros).
        let mut conv = Conv2d::new(1, 1, 3, 1, 2);
        conv.visit_params(&mut |w, _| w.iter_mut().for_each(|v| *v = 1.0));
        // Reset bias to zero (visit sets it to 1 too, fix below).
        conv.visit_params(&mut |w, _| {
            if w.len() == 1 {
                w[0] = 0.0;
            }
        });
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0; 9]);
        let y = conv.forward(&x, false);
        assert_eq!(y.at3(0, 1, 1), 9.0); // full neighbourhood
        assert_eq!(y.at3(0, 0, 0), 4.0); // corner: 2x2 in bounds
        assert_eq!(y.at3(0, 0, 1), 6.0); // edge: 2x3 in bounds
    }

    #[test]
    fn bias_is_added() {
        let mut conv = Conv2d::new(1, 2, 1, 0, 3);
        conv.visit_params(&mut |w, _| {
            for v in w.iter_mut() {
                *v = 0.0;
            }
        });
        // Set biases to [1, -2].
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            if call == 1 {
                w[0] = 1.0;
                w[1] = -2.0;
            }
            call += 1;
        });
        let y = conv.forward(&Tensor::zeros(vec![1, 2, 2]), false);
        assert_eq!(y.at3(0, 0, 0), 1.0);
        assert_eq!(y.at3(1, 1, 1), -2.0);
    }

    #[test]
    fn deterministic_init() {
        let a = Conv2d::new(2, 3, 3, 1, 7);
        let b = Conv2d::new(2, 3, 3, 1, 7);
        assert_eq!(a.weights, b.weights);
        let c = Conv2d::new(2, 3, 3, 1, 8);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn parameter_count() {
        let conv = Conv2d::new(16, 32, 3, 1, 0);
        assert_eq!(conv.parameter_count(), 32 * 16 * 9 + 32);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0);
        let _ = conv.backward(&Tensor::zeros(vec![1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 2, 0, 0);
    }

    #[test]
    fn gemm_forward_matches_naive_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        // Odd kernels, pad 0/1/2, non-square images, multi-channel.
        for &(in_c, out_c, k, pad, h, w) in &[
            (1, 1, 1, 0, 4, 4),
            (2, 3, 3, 1, 5, 7),
            (3, 2, 3, 0, 7, 5),
            (4, 8, 3, 1, 12, 12),
            (2, 2, 5, 2, 9, 6),
            (1, 4, 5, 0, 8, 11),
        ] {
            let mut conv = Conv2d::new(in_c, out_c, k, pad, 21);
            let data: Vec<f32> = (0..in_c * h * w)
                .map(|_| rng.gen_range(-2.0f32..2.0))
                .collect();
            let x = Tensor::from_vec(vec![in_c, h, w], data);
            let naive = conv.forward_naive(&x);
            let fast = conv.forward(&x, false);
            assert_eq!(fast.shape(), naive.shape());
            for (i, (a, b)) in fast.as_slice().iter().zip(naive.as_slice()).enumerate() {
                assert!(
                    (a - b).abs() <= 1e-4_f32.max(1e-5 * b.abs()),
                    "({in_c},{out_c},{k},{pad},{h},{w}) idx {i}: {a} vs {b}"
                );
            }
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]

        #[test]
        fn gemm_path_equals_naive_on_random_shapes(
            seed in 0u64..1000,
            in_c in 1usize..4,
            out_c in 1usize..5,
            k in proptest::prop_oneof![
                proptest::strategy::Just(1usize),
                proptest::strategy::Just(3usize),
                proptest::strategy::Just(5usize),
            ],
            pad in 0usize..3,
            h in 5usize..11,
            w in 5usize..11,
        ) {
            let mut conv = Conv2d::new(in_c, out_c, k, pad, seed);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
            let data: Vec<f32> =
                (0..in_c * h * w).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let x = Tensor::from_vec(vec![in_c, h, w], data);
            let naive = conv.forward_naive(&x);
            let fast = conv.forward(&x, false);
            proptest::prop_assert_eq!(fast.shape(), naive.shape());
            for (a, b) in fast.as_slice().iter().zip(naive.as_slice()) {
                proptest::prop_assert!(
                    (a - b).abs() <= 1e-4_f32.max(1e-5 * b.abs()),
                    "({}, {}, {}, {}, {}, {}): {} vs {}",
                    in_c, out_c, k, pad, h, w, a, b
                );
            }
        }
    }

    #[test]
    fn forward_inference_matches_forward_bitwise_and_leaves_scratch_alone() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f32> = (0..2 * 6 * 6)
            .map(|_| rng.gen_range(-1.0f32..1.0))
            .collect();
        let x = Tensor::from_vec(vec![2, 6, 6], data);
        let reference = conv.forward(&x, false);
        let cap = conv.legacy_cache().scratch_capacity();
        let inferred = conv.forward_inference(&x);
        assert_eq!(inferred.as_slice(), reference.as_slice());
        assert_eq!(
            conv.legacy_cache().scratch_capacity(),
            cap,
            "inference must not touch scratch"
        );
    }

    #[test]
    fn scratch_is_reused_across_forwards() {
        let mut conv = Conv2d::new(2, 3, 3, 1, 4);
        let x = Tensor::zeros(vec![2, 6, 6]);
        let _ = conv.forward(&x, true);
        let cap = conv.legacy_cache().scratch_capacity();
        for _ in 0..3 {
            let _ = conv.forward(&x, true);
            let _ = conv.backward(&Tensor::zeros(vec![3, 6, 6]));
        }
        assert_eq!(
            conv.legacy_cache().scratch_capacity(),
            cap,
            "im2col scratch must be reused"
        );
    }

    #[test]
    fn batched_forward_is_bit_identical_to_per_window() {
        let mut rng = StdRng::seed_from_u64(17);
        for &(batch, pad, k) in &[(1usize, 1usize, 3usize), (2, 1, 3), (5, 0, 3), (4, 2, 5)] {
            let conv = Conv2d::new(2, 3, k, pad, 23);
            let in_shape = [2usize, 6, 6];
            let in_len = 2 * 6 * 6;
            let (oh, ow) = conv.out_hw(6, 6);
            let out_len = 3 * oh * ow;
            let x: Vec<f32> = (0..in_len * batch)
                .map(|_| rng.gen_range(-1.5f32..1.5))
                .collect();
            for ep in [None, Some(Epilogue::Relu)] {
                let mut batched = vec![0.0f32; out_len * batch];
                let mut scratch = vec![0.0f32; conv.scratch_batch_len(&in_shape, batch)];
                conv.forward_batch_into(
                    &x,
                    &in_shape,
                    batch,
                    &mut batched,
                    &mut scratch,
                    &mut [],
                    ep,
                );
                let mut single = vec![0.0f32; out_len * batch];
                let mut s1 = vec![0.0f32; conv.scratch_infer_len(&in_shape)];
                for b in 0..batch {
                    conv.forward_into(
                        &x[b * in_len..(b + 1) * in_len],
                        &in_shape,
                        &mut single[b * out_len..(b + 1) * out_len],
                        &mut s1,
                        &mut [],
                        ep,
                    );
                }
                assert_eq!(batched, single, "batch={batch} pad={pad} k={k} ep={ep:?}");
            }
        }
    }

    #[test]
    fn fused_relu_epilogue_is_bit_identical_to_unfused() {
        use super::super::Relu;
        let conv = Conv2d::new(2, 3, 3, 1, 9);
        let mut rng = StdRng::seed_from_u64(13);
        let data: Vec<f32> = (0..2 * 5 * 5)
            .map(|_| rng.gen_range(-1.5f32..1.5))
            .collect();
        let x = Tensor::from_vec(vec![2, 5, 5], data);
        let in_shape = [2usize, 5, 5];
        let mut y_fused = vec![0.0f32; 3 * 5 * 5];
        let mut scratch = vec![0.0f32; conv.scratch_len(&in_shape)];
        conv.forward_into(
            x.as_slice(),
            &in_shape,
            &mut y_fused,
            &mut scratch,
            &mut [],
            Some(Epilogue::Relu),
        );
        let unfused = Relu::new().forward_inference(&conv.forward_inference(&x));
        assert_eq!(y_fused.as_slice(), unfused.as_slice());
    }
}
