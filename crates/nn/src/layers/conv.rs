//! 2-D convolution.

use super::Layer;
use crate::{init, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 2-D convolution over CHW tensors with configurable kernel size,
/// stride 1 and symmetric zero padding (the paper uses 3×3 kernels with
/// "same" padding, i.e. `padding = 1`).
///
/// Weight layout: `[out_c][in_c][ky][kx]`, bias per output channel.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Conv2d, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut conv = Conv2d::new(3, 16, 3, 1, 42);
/// let out = conv.forward(&Tensor::zeros(vec![3, 12, 12]), true);
/// assert_eq!(out.shape(), &[16, 12, 12]); // "same" spatial size
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    ksize: usize,
    pad: usize,
    weights: Vec<f32>,
    bias: Vec<f32>,
    grad_weights: Vec<f32>,
    grad_bias: Vec<f32>,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a convolution with He-initialised weights (seeded).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the kernel size is even (symmetric
    /// "same" padding needs odd kernels).
    pub fn new(in_c: usize, out_c: usize, ksize: usize, pad: usize, seed: u64) -> Self {
        assert!(in_c > 0 && out_c > 0 && ksize > 0, "zero conv dimension");
        assert!(ksize % 2 == 1, "kernel size must be odd, got {ksize}");
        let mut rng = StdRng::seed_from_u64(seed);
        let fan_in = in_c * ksize * ksize;
        let count = out_c * fan_in;
        Conv2d {
            in_c,
            out_c,
            ksize,
            pad,
            weights: init::he_normal(count, fan_in, &mut rng),
            bias: vec![0.0; out_c],
            grad_weights: vec![0.0; count],
            grad_bias: vec![0.0; out_c],
            cached_input: None,
        }
    }

    /// Number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }

    #[inline]
    fn w(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> f32 {
        self.weights[((oc * self.in_c + ic) * self.ksize + ky) * self.ksize + kx]
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            h + 2 * self.pad + 1 - self.ksize,
            w + 2 * self.pad + 1 - self.ksize,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 3, "conv input must be CHW");
        assert_eq!(shape[0], self.in_c, "conv expected {} channels", self.in_c);
        let (h, w) = (shape[1], shape[2]);
        let (oh, ow) = self.out_hw(h, w);
        let mut out = Tensor::zeros(vec![self.out_c, oh, ow]);
        let pad = self.pad as isize;
        let k = self.ksize;
        for oc in 0..self.out_c {
            let base = out.as_mut_slice().as_mut_ptr();
            // Safe indexed writes below; keep simple slice ops instead of ptr.
            let _ = base;
            for ic in 0..self.in_c {
                for ky in 0..k {
                    for kx in 0..k {
                        let wv = self.w(oc, ic, ky, kx);
                        if wv == 0.0 {
                            continue;
                        }
                        // out[oc][oy][ox] += in[ic][oy+ky-pad][ox+kx-pad] * wv
                        for oy in 0..oh {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let ix0 = (0isize).max(pad - kx as isize);
                            let ix1 =
                                (ow as isize).min(w as isize + pad - kx as isize);
                            for ox in ix0..ix1 {
                                let ix = ox + kx as isize - pad;
                                let v = input.at3(ic, iy as usize, ix as usize) * wv;
                                *out.at3_mut(oc, oy, ox as usize) += v;
                            }
                        }
                    }
                }
            }
            let b = self.bias[oc];
            for oy in 0..oh {
                for ox in 0..ow {
                    *out.at3_mut(oc, oy, ox) += b;
                }
            }
        }
        self.cached_input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .take()
            .expect("conv backward before forward");
        let (h, w) = (input.shape()[1], input.shape()[2]);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad.shape(), &[self.out_c, oh, ow], "conv grad shape");
        let pad = self.pad as isize;
        let k = self.ksize;
        let mut grad_in = Tensor::zeros(vec![self.in_c, h, w]);

        for oc in 0..self.out_c {
            // Bias gradient: sum over spatial.
            let mut gb = 0.0f32;
            for oy in 0..oh {
                for ox in 0..ow {
                    gb += grad.at3(oc, oy, ox);
                }
            }
            self.grad_bias[oc] += gb;

            for ic in 0..self.in_c {
                for ky in 0..k {
                    for kx in 0..k {
                        let widx = ((oc * self.in_c + ic) * k + ky) * k + kx;
                        let wv = self.weights[widx];
                        let mut gw = 0.0f32;
                        for oy in 0..oh {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let ox0 = (0isize).max(pad - kx as isize);
                            let ox1 =
                                (ow as isize).min(w as isize + pad - kx as isize);
                            for ox in ox0..ox1 {
                                let ix = ox + kx as isize - pad;
                                let g = grad.at3(oc, oy, ox as usize);
                                gw += g * input.at3(ic, iy as usize, ix as usize);
                                *grad_in.at3_mut(ic, iy as usize, ix as usize) += g * wv;
                            }
                        }
                        self.grad_weights[widx] += gw;
                    }
                }
            }
        }
        grad_in
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {
        visitor(&mut self.weights, &mut self.grad_weights);
        visitor(&mut self.bias, &mut self.grad_bias);
    }

    fn zero_grads(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    fn name(&self) -> &'static str {
        "conv"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input[1], input[2]);
        vec![self.out_c, oh, ow]
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_kernel_passthrough() {
        // 1x1 kernel with weight 1 reproduces the input channel.
        let mut conv = Conv2d::new(1, 1, 1, 0, 0);
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            // First visit is the weight, second the bias.
            w[0] = if call == 0 { 1.0 } else { 0.0 };
            call += 1;
        });
        let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn same_padding_preserves_shape() {
        let mut conv = Conv2d::new(4, 8, 3, 1, 1);
        let y = conv.forward(&Tensor::zeros(vec![4, 12, 12]), false);
        assert_eq!(y.shape(), &[8, 12, 12]);
        assert_eq!(conv.output_shape(&[4, 12, 12]), vec![8, 12, 12]);
    }

    #[test]
    fn valid_convolution_shrinks() {
        let mut conv = Conv2d::new(1, 1, 3, 0, 1);
        let y = conv.forward(&Tensor::zeros(vec![1, 5, 7]), false);
        assert_eq!(y.shape(), &[1, 3, 5]);
    }

    #[test]
    fn known_sum_kernel() {
        // All-ones 3x3 kernel over constant input counts the in-bounds
        // neighbourhood (padding contributes zeros).
        let mut conv = Conv2d::new(1, 1, 3, 1, 2);
        conv.visit_params(&mut |w, _| w.iter_mut().for_each(|v| *v = 1.0));
        // Reset bias to zero (visit sets it to 1 too, fix below).
        conv.visit_params(&mut |w, _| {
            if w.len() == 1 {
                w[0] = 0.0;
            }
        });
        let x = Tensor::from_vec(vec![1, 3, 3], vec![1.0; 9]);
        let y = conv.forward(&x, false);
        assert_eq!(y.at3(0, 1, 1), 9.0); // full neighbourhood
        assert_eq!(y.at3(0, 0, 0), 4.0); // corner: 2x2 in bounds
        assert_eq!(y.at3(0, 0, 1), 6.0); // edge: 2x3 in bounds
    }

    #[test]
    fn bias_is_added() {
        let mut conv = Conv2d::new(1, 2, 1, 0, 3);
        conv.visit_params(&mut |w, _| {
            for v in w.iter_mut() {
                *v = 0.0;
            }
        });
        // Set biases to [1, -2].
        let mut call = 0;
        conv.visit_params(&mut |w, _| {
            if call == 1 {
                w[0] = 1.0;
                w[1] = -2.0;
            }
            call += 1;
        });
        let y = conv.forward(&Tensor::zeros(vec![1, 2, 2]), false);
        assert_eq!(y.at3(0, 0, 0), 1.0);
        assert_eq!(y.at3(1, 1, 1), -2.0);
    }

    #[test]
    fn deterministic_init() {
        let a = Conv2d::new(2, 3, 3, 1, 7);
        let b = Conv2d::new(2, 3, 3, 1, 7);
        assert_eq!(a.weights, b.weights);
        let c = Conv2d::new(2, 3, 3, 1, 8);
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn parameter_count() {
        let conv = Conv2d::new(16, 32, 3, 1, 0);
        assert_eq!(conv.parameter_count(), 32 * 16 * 9 + 32);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut conv = Conv2d::new(1, 1, 3, 1, 0);
        let _ = conv.backward(&Tensor::zeros(vec![1, 4, 4]));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Conv2d::new(1, 1, 2, 0, 0);
    }
}
