//! 2×2 average pooling.

use super::Layer;
use crate::Tensor;

/// 2×2 average pooling with stride 2 on CHW tensors — the smooth
/// alternative to [`super::MaxPool2`] used in pooling-choice ablations.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{AvgPool2, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut pool = AvgPool2::new();
/// let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 3.0, 3.0]);
/// assert_eq!(pool.forward(&x, true).as_slice(), &[3.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    in_shape: Vec<usize>,
}

impl AvgPool2 {
    /// Creates a 2×2/stride-2 average-pooling layer.
    pub fn new() -> Self {
        AvgPool2::default()
    }
}

impl Layer for AvgPool2 {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "avgpool input must be CHW");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h >= 2 && w >= 2, "avgpool needs at least 2x2 spatial input");
        let (oh, ow) = (h / 2, w / 2);
        self.in_shape = s.to_vec();
        let mut out = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let sum = input.at3(ch, oy * 2, ox * 2)
                        + input.at3(ch, oy * 2, ox * 2 + 1)
                        + input.at3(ch, oy * 2 + 1, ox * 2)
                        + input.at3(ch, oy * 2 + 1, ox * 2 + 1);
                    out.push(sum * 0.25);
                }
            }
        }
        Tensor::from_vec(vec![c, oh, ow], out)
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        let s = input.shape();
        assert_eq!(s.len(), 3, "avgpool input must be CHW");
        let (c, h, w) = (s[0], s[1], s[2]);
        assert!(h >= 2 && w >= 2, "avgpool needs at least 2x2 spatial input");
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let sum = input.at3(ch, oy * 2, ox * 2)
                        + input.at3(ch, oy * 2, ox * 2 + 1)
                        + input.at3(ch, oy * 2 + 1, ox * 2)
                        + input.at3(ch, oy * 2 + 1, ox * 2 + 1);
                    out.push(sum * 0.25);
                }
            }
        }
        Tensor::from_vec(vec![c, oh, ow], out)
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "avgpool backward before forward");
        let (c, h, w) = (self.in_shape[0], self.in_shape[1], self.in_shape[2]);
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(grad.shape(), &[c, oh, ow], "avgpool grad shape");
        let mut out = Tensor::zeros(self.in_shape.clone());
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad.at3(ch, oy, ox) * 0.25;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            *out.at3_mut(ch, oy * 2 + dy, ox * 2 + dx) += g;
                        }
                    }
                }
            }
        }
        out
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "avgpool"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input[0], input[1] / 2, input[2] / 2]
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_windows() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![1, 4, 4], (1..=16).map(|v| v as f32).collect());
        let y = pool.forward(&x, true);
        // Window (0,0): mean of 1,2,5,6 = 3.5.
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let mut pool = AvgPool2::new();
        let _ = pool.forward(&Tensor::zeros(vec![1, 2, 2]), true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![4.0]));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_is_preserved_for_even_inputs() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![2, 4, 4], (0..32).map(|v| v as f32).collect());
        let y = pool.forward(&x, true);
        let in_mean: f32 = x.as_slice().iter().sum::<f32>() / 32.0;
        let out_mean: f32 = y.as_slice().iter().sum::<f32>() / 8.0;
        assert!((in_mean - out_mean).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dL/dx for L = sum(avgpool(x) * c).
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![0.3, -0.7, 0.9, 0.1]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![2.0]));
        // Analytic: each input contributes 2.0 * 0.25 = 0.5.
        assert!(g.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }
}
