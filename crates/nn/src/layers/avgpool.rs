//! 2×2 average pooling.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// 2×2 average pooling with stride 2 on CHW tensors — the smooth
/// alternative to [`super::MaxPool2`] used in pooling-choice ablations.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{AvgPool2, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut pool = AvgPool2::new();
/// let x = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 5.0, 3.0, 3.0]);
/// assert_eq!(pool.forward(&x, true).as_slice(), &[3.0]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AvgPool2 {
    cache: LegacyCache,
}

impl AvgPool2 {
    /// Creates a 2×2/stride-2 average-pooling layer.
    pub fn new() -> Self {
        AvgPool2::default()
    }

    fn check_input(in_shape: &[usize]) -> (usize, usize, usize) {
        assert_eq!(in_shape.len(), 3, "avgpool input must be CHW");
        let (c, h, w) = (in_shape[0], in_shape[1], in_shape[2]);
        assert!(h >= 2 && w >= 2, "avgpool needs at least 2x2 spatial input");
        (c, h, w)
    }
}

impl Layer for AvgPool2 {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        let (c, h, w) = Self::check_input(in_shape);
        vec![c, h / 2, w / 2]
    }

    fn forward_into(
        &self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        let (c, h, w) = Self::check_input(in_shape);
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(y.len(), c * oh * ow, "avgpool output length");
        let at = |ch: usize, iy: usize, ix: usize| x[(ch * h + iy) * w + ix];
        let mut o = 0usize;
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    // Fixed summation order (0,0)+(0,1)+(1,0)+(1,1) keeps
                    // the result bit-identical across paths.
                    let sum = at(ch, oy * 2, ox * 2)
                        + at(ch, oy * 2, ox * 2 + 1)
                        + at(ch, oy * 2 + 1, ox * 2)
                        + at(ch, oy * 2 + 1, ox * 2 + 1);
                    y[o] = sum * 0.25;
                    o += 1;
                }
            }
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        let (c, h, w) = Self::check_input(ctx.in_shape);
        let (oh, ow) = (h / 2, w / 2);
        assert_eq!(ctx.grad.len(), c * oh * ow, "avgpool grad shape");
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = ctx.grad[(ch * oh + oy) * ow + ox] * 0.25;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            grad_in[(ch * h + oy * 2 + dy) * w + ox * 2 + dx] += g;
                        }
                    }
                }
            }
        }
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}
    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "avgpool"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_windows() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![1, 4, 4], (1..=16).map(|v| v as f32).collect());
        let y = pool.forward(&x, true);
        // Window (0,0): mean of 1,2,5,6 = 3.5.
        assert_eq!(y.as_slice(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let mut pool = AvgPool2::new();
        let _ = pool.forward(&Tensor::zeros(vec![1, 2, 2]), true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![4.0]));
        assert_eq!(g.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_is_preserved_for_even_inputs() {
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![2, 4, 4], (0..32).map(|v| v as f32).collect());
        let y = pool.forward(&x, true);
        let in_mean: f32 = x.as_slice().iter().sum::<f32>() / 32.0;
        let out_mean: f32 = y.as_slice().iter().sum::<f32>() / 8.0;
        assert!((in_mean - out_mean).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Check dL/dx for L = sum(avgpool(x) * c).
        let mut pool = AvgPool2::new();
        let x = Tensor::from_vec(vec![1, 2, 2], vec![0.3, -0.7, 0.9, 0.1]);
        let _ = pool.forward(&x, true);
        let g = pool.backward(&Tensor::from_vec(vec![1, 1, 1], vec![2.0]));
        // Analytic: each input contributes 2.0 * 0.25 = 0.5.
        assert!(g.as_slice().iter().all(|&v| (v - 0.5).abs() < 1e-6));
    }
}
