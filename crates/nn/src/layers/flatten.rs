//! Shape flattening between convolutional and dense stages.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;

/// Flattens any input tensor to rank 1; backward restores the shape.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Flatten, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(vec![32, 3, 3]), true);
/// assert_eq!(y.shape(), &[288]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    cache: LegacyCache,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        vec![in_shape.iter().product()]
    }

    fn forward_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        y.copy_from_slice(x);
    }

    fn forward_batch_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        _batch: usize,
        y: &mut [f32],
        _scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        // One copy for the whole block — per-sample slices are contiguous,
        // so this is bit-identical to the per-sample loop.
        y.copy_from_slice(x);
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        grad_in.copy_from_slice(ctx.grad);
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_restores_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![2, 2, 3], (0..12).map(|v| v as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 2, 3]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn rank1_passthrough() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![5], vec![1.0; 5]);
        assert_eq!(f.forward(&x, false).shape(), &[5]);
    }
}
