//! Shape flattening between convolutional and dense stages.

use super::Layer;
use crate::Tensor;

/// Flattens any input tensor to rank 1; backward restores the shape.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Flatten, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut f = Flatten::new();
/// let y = f.forward(&Tensor::zeros(vec![32, 3, 3]), true);
/// assert_eq!(y.shape(), &[288]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _train: bool) -> Tensor {
        self.in_shape = input.shape().to_vec();
        input.clone().reshaped(vec![input.len()])
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        input.clone().reshaped(vec![input.len()])
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert!(!self.in_shape.is_empty(), "flatten backward before forward");
        grad.clone().reshaped(self.in_shape.clone())
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "flatten"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        vec![input.iter().product()]
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_restores_shape() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![2, 2, 3], (0..12).map(|v| v as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[12]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), &[2, 2, 3]);
        assert_eq!(g.as_slice(), x.as_slice());
    }

    #[test]
    fn rank1_passthrough() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(vec![5], vec![1.0; 5]);
        assert_eq!(f.forward(&x, false).shape(), &[5]);
    }
}
