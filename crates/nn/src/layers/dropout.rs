//! Inverted dropout.

use super::{BackwardCtx, Epilogue, Layer, LegacyCache};
#[cfg(test)]
use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 - p)`, so inference
/// (`train = false`) is the identity. The paper applies 50 % dropout on its
/// first fully-connected layer.
///
/// The mask backward needs lives in the caller-provided f32 scratch
/// ([`Layer::scratch_len`] equals the element count). Masks are drawn from
/// the layer's own seeded RNG stream in strict element order, so planned
/// and legacy training paths consume the stream identically — which is
/// what keeps checkpoint/resume bit-identical.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Dropout, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut drop = Dropout::new(0.5, 1);
/// let x = Tensor::from_vec(vec![4], vec![1.0; 4]);
/// // Inference passes values through untouched.
/// assert_eq!(drop.forward(&x, false).as_slice(), &[1.0; 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cache: LegacyCache,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and an internal
    /// seeded RNG (mask sequences are reproducible).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            cache: LegacyCache::default(),
        }
    }

    /// The configured drop probability.
    #[inline]
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn out_shape(&self, in_shape: &[usize]) -> Vec<usize> {
        in_shape.to_vec()
    }

    fn scratch_len(&self, in_shape: &[usize]) -> usize {
        // One mask value per element, consumed by `backward_into`.
        in_shape.iter().product()
    }

    fn forward_into(
        &self,
        x: &[f32],
        _in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        _idx: &mut [usize],
        _epilogue: Option<Epilogue>,
    ) {
        // Inverted dropout is the identity at inference time, and no RNG
        // is drawn — the training stream is left untouched. The mask is
        // still recorded (all ones) so a backward after an inference-mode
        // forward passes gradients through unchanged.
        scratch[..y.len()].fill(1.0);
        y.copy_from_slice(x);
    }

    fn forward_train_into(
        &mut self,
        x: &[f32],
        in_shape: &[usize],
        y: &mut [f32],
        scratch: &mut [f32],
        idx: &mut [usize],
        epilogue: Option<Epilogue>,
    ) {
        if self.p == 0.0 {
            self.forward_into(x, in_shape, y, scratch, idx, epilogue);
            return;
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask = &mut scratch[..y.len()];
        // Strict element order: one draw per element, exactly as the
        // historical per-tensor implementation consumed the stream.
        for m in mask.iter_mut() {
            *m = if self.rng.gen_range(0.0f32..1.0) < keep {
                scale
            } else {
                0.0
            };
        }
        for ((yi, &v), &m) in y.iter_mut().zip(x).zip(mask.iter()) {
            *yi = v * m;
        }
    }

    fn backward_into(&mut self, ctx: BackwardCtx<'_>, grad_in: &mut [f32]) {
        let mask = &ctx.scratch[..ctx.grad.len()];
        for ((gi, &g), &m) in grad_in.iter_mut().zip(ctx.grad).zip(mask) {
            *gi = g * m;
        }
    }

    fn legacy_cache(&mut self) -> &mut LegacyCache {
        &mut self.cache
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.state())
    }

    fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.9, 0);
        let x = Tensor::from_vec(vec![8], vec![2.0; 8]);
        assert_eq!(d.forward(&x, false).as_slice(), x.as_slice());
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::from_vec(vec![10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "{zeros} zeros");
        // Survivors are scaled by 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expectation_is_preserved() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::from_vec(vec![50_000], vec![1.0; 50_000]);
        let y = d.forward(&x, true);
        let mean: f64 = y.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 50_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(vec![100], vec![1.0; 100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::from_vec(vec![100], vec![1.0; 100]));
        assert_eq!(y.as_slice(), g.as_slice());
    }

    #[test]
    fn p_zero_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::from_vec(vec![4], vec![3.0; 4]);
        assert_eq!(d.forward(&x, true).as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, 0);
    }

    #[test]
    fn planned_train_draws_match_legacy_stream() {
        // Two layers seeded alike must produce the same masks whether
        // driven through the legacy `forward` or `forward_train_into`.
        let mut a = Dropout::new(0.5, 77);
        let mut b = Dropout::new(0.5, 77);
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.1).collect();
        for _ in 0..3 {
            let ya = a.forward(&Tensor::from_vec(vec![64], x.clone()), true);
            let mut yb = vec![0.0f32; 64];
            let mut scratch = vec![0.0f32; 64];
            b.forward_train_into(&x, &[64], &mut yb, &mut scratch, &mut [], None);
            assert_eq!(ya.as_slice(), yb.as_slice());
        }
        assert_eq!(a.rng_state(), b.rng_state());
    }
}
