//! Inverted dropout.

use super::Layer;
use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 - p)`, so inference
/// (`train = false`) is the identity. The paper applies 50 % dropout on its
/// first fully-connected layer.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::{Dropout, Layer};
/// use hotspot_nn::Tensor;
///
/// let mut drop = Dropout::new(0.5, 1);
/// let x = Tensor::from_vec(vec![4], vec![1.0; 4]);
/// // Inference passes values through untouched.
/// assert_eq!(drop.forward(&x, false).as_slice(), &[1.0; 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and an internal
    /// seeded RNG (mask sequences are reproducible).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p < 1.0`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout p must be in [0, 1), got {p}"
        );
        Dropout {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
            shape: Vec::new(),
        }
    }

    /// The configured drop probability.
    #[inline]
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        self.shape = input.shape().to_vec();
        if !train || self.p == 0.0 {
            self.mask = vec![1.0; input.len()];
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        self.mask = (0..input.len())
            .map(|_| {
                if self.rng.gen_range(0.0f32..1.0) < keep {
                    scale
                } else {
                    0.0
                }
            })
            .collect();
        let data = input
            .as_slice()
            .iter()
            .zip(self.mask.iter())
            .map(|(&v, &m)| v * m)
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn forward_inference(&self, input: &Tensor) -> Tensor {
        // Inverted dropout is the identity at inference time, and no RNG
        // is drawn — the training stream is left untouched.
        input.clone()
    }

    fn backward(&mut self, grad: &Tensor) -> Tensor {
        assert_eq!(
            grad.len(),
            self.mask.len(),
            "dropout backward before forward or shape mismatch"
        );
        let data = grad
            .as_slice()
            .iter()
            .zip(self.mask.iter())
            .map(|(&g, &m)| g * m)
            .collect();
        Tensor::from_vec(self.shape.clone(), data)
    }

    fn visit_params(&mut self, _visitor: &mut dyn FnMut(&mut [f32], &mut [f32])) {}

    fn zero_grads(&mut self) {}

    fn name(&self) -> &'static str {
        "dropout"
    }

    fn output_shape(&self, input: &[usize]) -> Vec<usize> {
        input.to_vec()
    }

    fn boxed_clone(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn rng_state(&self) -> Option<[u64; 4]> {
        Some(self.rng.state())
    }

    fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.9, 0);
        let x = Tensor::from_vec(vec![8], vec![2.0; 8]);
        assert_eq!(d.forward(&x, false).as_slice(), x.as_slice());
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::from_vec(vec![10_000], vec![1.0; 10_000]);
        let y = d.forward(&x, true);
        let zeros = y.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((4_000..6_000).contains(&zeros), "{zeros} zeros");
        // Survivors are scaled by 2.
        assert!(y
            .as_slice()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn expectation_is_preserved() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::from_vec(vec![50_000], vec![1.0; 50_000]);
        let y = d.forward(&x, true);
        let mean: f64 = y.as_slice().iter().map(|&v| v as f64).sum::<f64>() / 50_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::from_vec(vec![100], vec![1.0; 100]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::from_vec(vec![100], vec![1.0; 100]));
        assert_eq!(y.as_slice(), g.as_slice());
    }

    #[test]
    fn p_zero_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 0);
        let x = Tensor::from_vec(vec![4], vec![3.0; 4]);
        assert_eq!(d.forward(&x, true).as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn p_one_rejected() {
        let _ = Dropout::new(1.0, 0);
    }
}
