//! Bounded-ULP float comparison for SIMD-vs-scalar kernel testing.
//!
//! The scalar GEMM kernels in [`crate::gemm::scalar`] are the repo's
//! bit-identity oracle; the SIMD backends accumulate in a different order
//! and contract multiply-adds into FMAs, so their outputs differ from the
//! oracle by a few units in the last place. Plain relative-error
//! comparisons are awkward here: the natural tolerance scales with the
//! *accumulated magnitude*, not the final value, so an element that
//! cancels to near zero can have a huge relative error while being
//! numerically as accurate as its neighbours.
//!
//! [`assert_ulp_close`] therefore accepts on either of two knobs:
//!
//! * **max ULP** — the distance between the two values counted in
//!   representable `f32` steps ([`ulp_distance`]), which is
//!   scale-invariant away from zero, or
//! * **max abs** — an absolute floor that absorbs the
//!   catastrophic-cancellation cases where ULP distance is meaningless.
//!
//! A pair passes if it is within *either* bound; an assertion failure
//! reports the first offending index with both measures so the failing
//! kernel and shape can be reproduced.

/// Distance between two finite `f32` values in representable steps.
///
/// Implemented by mapping the IEEE-754 bit patterns onto a monotone
/// integer line (sign-magnitude → offset binary), where adjacent
/// representable floats differ by exactly 1. `+0.0` and `-0.0` map to the
/// same point. Any NaN yields `u64::MAX` so NaNs never compare close.
///
/// # Examples
///
/// ```
/// use hotspot_nn::ulp::ulp_distance;
///
/// assert_eq!(ulp_distance(1.0, 1.0), 0);
/// assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
/// assert_eq!(ulp_distance(0.0, -0.0), 0);
/// assert_eq!(ulp_distance(f32::NAN, 1.0), u64::MAX);
/// ```
pub fn ulp_distance(a: f32, b: f32) -> u64 {
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    fn monotone(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        // Negative floats order backwards in raw bits; flip them below
        // zero so the whole line is monotone in the numeric value.
        if bits < 0 {
            i64::from(i32::MIN) - i64::from(bits)
        } else {
            i64::from(bits)
        }
    }
    monotone(a).abs_diff(monotone(b))
}

/// Whether `a` and `b` are within `max_ulp` representable steps **or**
/// `max_abs` absolute difference of each other (see the module docs for
/// why both knobs exist).
pub fn ulp_close(a: f32, b: f32, max_ulp: u64, max_abs: f32) -> bool {
    (a - b).abs() <= max_abs || ulp_distance(a, b) <= max_ulp
}

/// Asserts every element of `got` is [`ulp_close`] to the matching
/// element of `want`.
///
/// # Panics
///
/// Panics when the lengths differ, or with the first offending index, the
/// two values, their ULP distance, and their absolute difference when a
/// pair violates both bounds.
#[track_caller]
pub fn assert_ulp_close(got: &[f32], want: &[f32], max_ulp: u64, max_abs: f32) {
    assert_eq!(
        got.len(),
        want.len(),
        "assert_ulp_close: length mismatch ({} vs {})",
        got.len(),
        want.len()
    );
    for (i, (&g, &w)) in got.iter().zip(want).enumerate() {
        assert!(
            ulp_close(g, w, max_ulp, max_abs),
            "element {i}: {g} vs {w} differs by {} ULP / {:e} abs \
             (allowed: {max_ulp} ULP or {max_abs:e} abs)",
            ulp_distance(g, w),
            (g - w).abs()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_counts_representable_steps() {
        let one_up = f32::from_bits(1.0f32.to_bits() + 3);
        assert_eq!(ulp_distance(1.0, one_up), 3);
        assert_eq!(ulp_distance(one_up, 1.0), 3);
        assert_eq!(ulp_distance(-1.0, -1.0), 0);
    }

    #[test]
    fn distance_crosses_zero_monotonically() {
        let tiny = f32::from_bits(1); // smallest positive subnormal
        assert_eq!(ulp_distance(tiny, -tiny), 2);
        assert_eq!(ulp_distance(0.0, tiny), 1);
        assert_eq!(ulp_distance(-0.0, tiny), 1);
    }

    #[test]
    fn nan_is_never_close() {
        assert_eq!(ulp_distance(f32::NAN, f32::NAN), u64::MAX);
        assert!(!ulp_close(f32::NAN, 0.0, u64::MAX - 1, 1e10));
    }

    #[test]
    fn abs_floor_rescues_cancellation() {
        // 1e-8 vs -1e-8: enormous ULP distance, tiny absolute difference.
        assert!(ulp_distance(1e-8, -1e-8) > 1_000_000);
        assert!(ulp_close(1e-8, -1e-8, 4, 1e-6));
        assert!(!ulp_close(1e-8, -1e-8, 4, 1e-9));
    }

    #[test]
    fn assert_passes_on_exact_and_near() {
        assert_ulp_close(&[1.0, 2.0], &[1.0, 2.0], 0, 0.0);
        let near = f32::from_bits(3.5f32.to_bits() + 2);
        assert_ulp_close(&[near], &[3.5], 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "element 1")]
    fn assert_reports_offending_index() {
        assert_ulp_close(&[1.0, 2.5], &[1.0, 2.0], 4, 1e-6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn assert_rejects_length_mismatch() {
        assert_ulp_close(&[1.0], &[1.0, 2.0], 0, 0.0);
    }
}
