//! From-scratch CPU neural-network substrate.
//!
//! The paper trains its CNN in TensorFlow; this crate reimplements the
//! required subset natively in Rust, with no external ML dependencies:
//!
//! - [`Tensor`]: a dense CHW tensor (channels × height × width).
//! - [`layers`]: convolution (arbitrary kernel/padding), ReLU, 2×2 max
//!   pooling, dense, flatten, and inverted dropout — each implementing
//!   [`Layer`] with exact analytic gradients (validated by
//!   finite-difference tests).
//! - [`gemm`]: the matrix-multiply kernels convolution (via im2col) and
//!   dense layers lower onto — runtime-dispatched between AVX-512, AVX2,
//!   and portable scalar backends, with the scalar kernels kept as the
//!   bit-identity oracle (see [`ulp`] for the SIMD comparison contract).
//! - [`loss`]: softmax cross-entropy with **soft targets**, the ingredient
//!   biased learning needs (`y*_n = [1-ε, ε]`).
//! - [`Network`]: a sequential container with forward/backward passes and
//!   parameter visitation.
//! - [`engine`]: shape-planned execution — a `ShapePlan`/`Workspace` pair
//!   that preallocates every intermediate buffer in one arena and fuses
//!   activation epilogues into the GEMM layers, so steady-state inference
//!   and training do zero allocations (bit-identical to the classic path).
//! - [`optim`]: plain SGD and the paper's mini-batch gradient descent
//!   (Algorithm 1) with step-decayed learning rate.
//! - [`parallel`]: deterministic multi-threaded mini-batch gradients
//!   (the "MGD is compatible with parallel computing" point of §5).
//! - [`data`]: seeded mini-batch sampling.
//! - [`serialize`]: flat parameter export/import for model persistence.
//!
//! Determinism: all stochastic pieces (init, dropout, batch sampling) take
//! explicit seeds.
//!
//! # Examples
//!
//! Train a tiny MLP on XOR:
//!
//! ```
//! use hotspot_nn::layers::{Dense, Relu};
//! use hotspot_nn::{loss, Network, Tensor};
//!
//! let mut net = Network::new();
//! net.push(Dense::new(2, 8, 1));
//! net.push(Relu::new());
//! net.push(Dense::new(8, 2, 2));
//!
//! let data = [
//!     ([0.0f32, 0.0], [1.0f32, 0.0]),
//!     ([0.0, 1.0], [0.0, 1.0]),
//!     ([1.0, 0.0], [0.0, 1.0]),
//!     ([1.0, 1.0], [1.0, 0.0]),
//! ];
//! for _ in 0..600 {
//!     net.zero_grads();
//!     for (x, t) in &data {
//!         let input = Tensor::from_vec(vec![2], x.to_vec());
//!         let logits = net.forward(&input, true);
//!         let (_, grad) = loss::softmax_cross_entropy(&logits, t);
//!         net.backward(&grad);
//!     }
//!     net.apply_gradients(0.5 / data.len() as f32);
//! }
//! for (x, t) in &data {
//!     let input = Tensor::from_vec(vec![2], x.to_vec());
//!     let p = loss::softmax(net.forward(&input, false).as_slice());
//!     let predicted = if p[1] > 0.5 { 1 } else { 0 };
//!     let expected = if t[1] > 0.5 { 1 } else { 0 };
//!     assert_eq!(predicted, expected);
//! }
//! ```

pub mod data;
pub mod engine;
pub mod gemm;
pub mod init;
pub mod layers;
pub mod loss;
pub mod network;
pub mod optim;
pub mod parallel;
pub mod parallelism;
pub mod serialize;
pub mod tensor;
pub mod ulp;

pub use layers::Layer;
pub use network::Network;
pub use parallelism::Parallelism;
pub use tensor::Tensor;

use std::error::Error;
use std::fmt;

/// Errors from network construction and serialisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// A layer was given an input of the wrong shape.
    ShapeMismatch {
        /// What the layer expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// A serialised parameter blob does not match the network.
    ParameterCountMismatch {
        /// Parameters the network holds.
        expected: usize,
        /// Parameters the blob holds.
        actual: usize,
    },
    /// A serialised buffer is malformed (bad magic, unsupported version,
    /// truncation, length/checksum mismatch).
    Format(String),
    /// A runtime configuration value is out of range (zero worker count).
    InvalidConfig(&'static str),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            NnError::ParameterCountMismatch { expected, actual } => {
                write!(
                    f,
                    "parameter count mismatch: network has {expected}, blob has {actual}"
                )
            }
            NnError::Format(why) => write!(f, "malformed parameter data: {why}"),
            NnError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

impl Error for NnError {}
