//! Flat parameter snapshots for model persistence and fine-tuning.
//!
//! Biased learning fine-tunes a *trained* model repeatedly; snapshots allow
//! keeping the best validation model while training continues, and moving
//! weights between identically-shaped networks.

use crate::{Network, NnError};
use serde::{Deserialize, Serialize};

/// A flat snapshot of every trainable parameter of a network, in layer
/// order.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::Dense;
/// use hotspot_nn::serialize::ParameterBlob;
/// use hotspot_nn::Network;
///
/// # fn main() -> Result<(), hotspot_nn::NnError> {
/// let mut a = Network::new();
/// a.push(Dense::new(3, 2, 1));
/// let snapshot = ParameterBlob::from_network(&mut a);
///
/// let mut b = Network::new();
/// b.push(Dense::new(3, 2, 99)); // different init...
/// snapshot.load_into(&mut b)?;  // ...now identical to `a`
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterBlob {
    values: Vec<f32>,
}

impl ParameterBlob {
    /// Snapshots all parameters of `net`.
    pub fn from_network(net: &mut Network) -> Self {
        let mut values = Vec::new();
        net.visit_params(&mut |w, _| values.extend_from_slice(w));
        ParameterBlob { values }
    }

    /// Number of stored parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the blob holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Writes the snapshot back into an identically-shaped network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCountMismatch`] when the network's
    /// parameter count differs from the blob's.
    pub fn load_into(&self, net: &mut Network) -> Result<(), NnError> {
        let expected = {
            let mut count = 0;
            net.visit_params(&mut |w, _| count += w.len());
            count
        };
        if expected != self.values.len() {
            return Err(NnError::ParameterCountMismatch {
                expected,
                actual: self.values.len(),
            });
        }
        let mut offset = 0usize;
        net.visit_params(&mut |w, _| {
            w.copy_from_slice(&self.values[offset..offset + w.len()]);
            offset += w.len();
        });
        Ok(())
    }

    /// The raw parameter values.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Encodes the snapshot into a self-describing little-endian binary
    /// buffer (`magic "HSNN" | u32 version | u32 crc32(payload) |
    /// u64 count | f32 × count`), suitable for writing to a model file.
    ///
    /// The CRC covers the `f32` payload, so any corruption of the stored
    /// values is detected on decode instead of silently loading a
    /// different model.
    pub fn to_bytes(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut payload = Vec::with_capacity(4 * self.values.len());
        for &v in &self.values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        let mut buf = bytes::BytesMut::with_capacity(HEADER_LEN + payload.len());
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(crc32(&payload));
        buf.put_u64_le(self.values.len() as u64);
        buf.put_slice(&payload);
        buf.freeze()
    }

    /// Decodes a buffer produced by [`ParameterBlob::to_bytes`].
    ///
    /// The declared element count is validated against the actual payload
    /// length **with checked arithmetic before any allocation**, so a
    /// crafted or corrupted header can neither wrap the length check in
    /// release builds nor trigger an absurd allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Format`] when the buffer is truncated, has a bad
    /// magic/version, fails its checksum, or its declared count disagrees
    /// with the payload length.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, NnError> {
        use bytes::Buf;
        if data.len() < HEADER_LEN {
            return Err(NnError::Format(format!(
                "buffer too short for header: {} bytes",
                data.len()
            )));
        }
        if &data[..4] != MAGIC {
            return Err(NnError::Format("bad magic (expected \"HSNN\")".into()));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != VERSION {
            return Err(NnError::Format(format!(
                "unsupported parameter format version {version} (expected {VERSION})"
            )));
        }
        let crc_declared = data.get_u32_le();
        let count_u64 = data.get_u64_le();
        // The count is attacker/corruption-controlled: validate it against
        // the remaining bytes via checked arithmetic before allocating.
        let count = usize::try_from(count_u64)
            .ok()
            .and_then(|c| c.checked_mul(4))
            .filter(|&payload_len| payload_len == data.remaining())
            .map(|payload_len| payload_len / 4)
            .ok_or_else(|| {
                NnError::Format(format!(
                    "declared count {count_u64} does not match payload of {} bytes",
                    data.remaining()
                ))
            })?;
        let crc_actual = crc32(data);
        if crc_actual != crc_declared {
            return Err(NnError::Format(format!(
                "payload checksum mismatch: stored {crc_declared:#010x}, computed {crc_actual:#010x}"
            )));
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(data.get_f32_le());
        }
        Ok(ParameterBlob { values })
    }
}

/// Blob wire-format magic.
const MAGIC: &[u8; 4] = b"HSNN";
/// Blob wire-format version (v2 added the payload CRC32).
const VERSION: u32 = 2;
/// Bytes before the `f32` payload: magic + version + crc + count.
const HEADER_LEN: usize = 20;

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
///
/// Shared by every persisted format in the suite (parameter blobs, model
/// files, training checkpoints); guarantees detection of any single-byte
/// corruption.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::Tensor;

    fn net(seed: u64) -> Network {
        let mut n = Network::new();
        n.push(Dense::new(4, 6, seed));
        n.push(Relu::new());
        n.push(Dense::new(6, 2, seed + 1));
        n
    }

    #[test]
    fn snapshot_roundtrip_restores_outputs() {
        let mut a = net(1);
        let blob = ParameterBlob::from_network(&mut a);
        let mut b = net(2);
        let x = Tensor::from_vec(vec![4], vec![0.1, -0.5, 0.3, 0.9]);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        blob.load_into(&mut b).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn mismatched_network_rejected() {
        let mut a = net(1);
        let blob = ParameterBlob::from_network(&mut a);
        let mut small = Network::new();
        small.push(Dense::new(2, 2, 0));
        assert!(matches!(
            blob.load_into(&mut small),
            Err(NnError::ParameterCountMismatch { .. })
        ));
    }

    #[test]
    fn blob_length_matches_parameter_count() {
        let mut a = net(3);
        let blob = ParameterBlob::from_network(&mut a);
        assert_eq!(blob.len(), a.parameter_count());
        assert!(!blob.is_empty());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let mut a = net(4);
        let blob = ParameterBlob::from_network(&mut a);
        let bytes = blob.to_bytes();
        assert_eq!(&bytes[..4], b"HSNN");
        let back = ParameterBlob::from_bytes(&bytes).unwrap();
        assert_eq!(blob, back);
    }

    #[test]
    fn binary_decode_rejects_corruption() {
        let mut a = net(5);
        let blob = ParameterBlob::from_network(&mut a);
        let bytes = blob.to_bytes();
        // Truncated payload.
        assert!(ParameterBlob::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(ParameterBlob::from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 9;
        assert!(ParameterBlob::from_bytes(&bad).is_err());
        // Empty buffer.
        assert!(ParameterBlob::from_bytes(&[]).is_err());
    }

    #[test]
    fn overflow_count_header_rejected() {
        // Craft a header whose declared count makes `count * 4` wrap in
        // 64-bit arithmetic: ((1 << 62) + 2) * 4 ≡ 8 (mod 2^64). Before the
        // checked-arithmetic fix, a release build would accept this header
        // against an 8-byte payload and decode a silently wrong blob (a
        // debug build would panic on the multiply).
        let payload = [0u8; 8];
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&crc32(&payload).to_le_bytes());
        buf.extend_from_slice(&((1u64 << 62) + 2).to_le_bytes());
        buf.extend_from_slice(&payload);
        let err = ParameterBlob::from_bytes(&buf).unwrap_err();
        assert!(matches!(err, NnError::Format(_)), "got {err:?}");
        assert!(err.to_string().contains("count"), "got {err}");
    }

    #[test]
    fn payload_bit_flip_fails_checksum() {
        let mut a = net(6);
        let blob = ParameterBlob::from_network(&mut a);
        let mut bad = blob.to_bytes().to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        let err = ParameterBlob::from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got {err}");
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE 802.3 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
