//! Flat parameter snapshots for model persistence and fine-tuning.
//!
//! Biased learning fine-tunes a *trained* model repeatedly; snapshots allow
//! keeping the best validation model while training continues, and moving
//! weights between identically-shaped networks.

use crate::{Network, NnError};
use serde::{Deserialize, Serialize};

/// A flat snapshot of every trainable parameter of a network, in layer
/// order.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::Dense;
/// use hotspot_nn::serialize::ParameterBlob;
/// use hotspot_nn::Network;
///
/// # fn main() -> Result<(), hotspot_nn::NnError> {
/// let mut a = Network::new();
/// a.push(Dense::new(3, 2, 1));
/// let snapshot = ParameterBlob::from_network(&mut a);
///
/// let mut b = Network::new();
/// b.push(Dense::new(3, 2, 99)); // different init...
/// snapshot.load_into(&mut b)?;  // ...now identical to `a`
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterBlob {
    values: Vec<f32>,
}

impl ParameterBlob {
    /// Snapshots all parameters of `net`.
    pub fn from_network(net: &mut Network) -> Self {
        let mut values = Vec::new();
        net.visit_params(&mut |w, _| values.extend_from_slice(w));
        ParameterBlob { values }
    }

    /// Number of stored parameters.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the blob holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Writes the snapshot back into an identically-shaped network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCountMismatch`] when the network's
    /// parameter count differs from the blob's.
    pub fn load_into(&self, net: &mut Network) -> Result<(), NnError> {
        let expected = {
            let mut count = 0;
            net.visit_params(&mut |w, _| count += w.len());
            count
        };
        if expected != self.values.len() {
            return Err(NnError::ParameterCountMismatch {
                expected,
                actual: self.values.len(),
            });
        }
        let mut offset = 0usize;
        net.visit_params(&mut |w, _| {
            w.copy_from_slice(&self.values[offset..offset + w.len()]);
            offset += w.len();
        });
        Ok(())
    }

    /// The raw parameter values.
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }

    /// Encodes the snapshot into a self-describing little-endian binary
    /// buffer (`magic "HSNN" | u32 version | u64 count | f32 × count`),
    /// suitable for writing to a model file.
    pub fn to_bytes(&self) -> bytes::Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(16 + 4 * self.values.len());
        buf.put_slice(b"HSNN");
        buf.put_u32_le(1);
        buf.put_u64_le(self.values.len() as u64);
        for &v in &self.values {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Decodes a buffer produced by [`ParameterBlob::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParameterCountMismatch`] when the buffer is
    /// truncated, has a bad magic/version, or its declared count disagrees
    /// with the payload length.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, NnError> {
        use bytes::Buf;
        let malformed = |actual: usize| NnError::ParameterCountMismatch {
            expected: 0,
            actual,
        };
        if data.len() < 16 || &data[..4] != b"HSNN" {
            return Err(malformed(data.len()));
        }
        data.advance(4);
        let version = data.get_u32_le();
        if version != 1 {
            return Err(malformed(version as usize));
        }
        let count = data.get_u64_le() as usize;
        if data.remaining() != count * 4 {
            return Err(NnError::ParameterCountMismatch {
                expected: count,
                actual: data.remaining() / 4,
            });
        }
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            values.push(data.get_f32_le());
        }
        Ok(ParameterBlob { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::Tensor;

    fn net(seed: u64) -> Network {
        let mut n = Network::new();
        n.push(Dense::new(4, 6, seed));
        n.push(Relu::new());
        n.push(Dense::new(6, 2, seed + 1));
        n
    }

    #[test]
    fn snapshot_roundtrip_restores_outputs() {
        let mut a = net(1);
        let blob = ParameterBlob::from_network(&mut a);
        let mut b = net(2);
        let x = Tensor::from_vec(vec![4], vec![0.1, -0.5, 0.3, 0.9]);
        assert_ne!(a.forward(&x, false), b.forward(&x, false));
        blob.load_into(&mut b).unwrap();
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn mismatched_network_rejected() {
        let mut a = net(1);
        let blob = ParameterBlob::from_network(&mut a);
        let mut small = Network::new();
        small.push(Dense::new(2, 2, 0));
        assert!(matches!(
            blob.load_into(&mut small),
            Err(NnError::ParameterCountMismatch { .. })
        ));
    }

    #[test]
    fn blob_length_matches_parameter_count() {
        let mut a = net(3);
        let blob = ParameterBlob::from_network(&mut a);
        assert_eq!(blob.len(), a.parameter_count());
        assert!(!blob.is_empty());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let mut a = net(4);
        let blob = ParameterBlob::from_network(&mut a);
        let bytes = blob.to_bytes();
        assert_eq!(&bytes[..4], b"HSNN");
        let back = ParameterBlob::from_bytes(&bytes).unwrap();
        assert_eq!(blob, back);
    }

    #[test]
    fn binary_decode_rejects_corruption() {
        let mut a = net(5);
        let blob = ParameterBlob::from_network(&mut a);
        let bytes = blob.to_bytes();
        // Truncated payload.
        assert!(ParameterBlob::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Bad magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(ParameterBlob::from_bytes(&bad).is_err());
        // Bad version.
        let mut bad = bytes.to_vec();
        bad[4] = 9;
        assert!(ParameterBlob::from_bytes(&bad).is_err());
        // Empty buffer.
        assert!(ParameterBlob::from_bytes(&[]).is_err());
    }
}
