//! Multi-threaded mini-batch gradient computation and batch inference.
//!
//! The paper notes MGD "is more compatible with parallel computing and can
//! provide speed up on training procedures" (§5). This module implements
//! that: the batch is split across worker threads, each running
//! forward/backward on its own network replica, and the per-worker
//! gradients are merged **in fixed worker order** so results are
//! bit-for-bit deterministic regardless of thread scheduling.
//!
//! [`ReplicaPool`] owns the per-worker replicas so a training loop pays
//! the layer-allocation cost once, then only copies parameters into the
//! existing replicas each step. Each replica is paired with a persistent
//! [`crate::engine::Executor`], so forward/backward run through the
//! shape-planned arena path: the plan and workspace are built on the
//! first step and reused for every step after (plans depend only on
//! shapes, so parameter syncs never invalidate them).
//! [`minibatch_step_parallel`] remains as the standalone entry point for
//! one-shot callers.

use crate::engine::Executor;
use crate::optim::Instance;
use crate::{loss, Network, Tensor};

/// Reusable per-worker network replicas for parallel training.
///
/// Cloning a [`Network`] allocates every layer's weight, gradient, and
/// scratch buffers; doing that per optimiser step dominated the parallel
/// path's cost. A pool clones once, then [`ReplicaPool::sync_parameters`]
/// refreshes the replicas in place before each step. The paired
/// executors likewise keep their shape plans and arenas warm across
/// steps.
#[derive(Debug, Clone)]
pub struct ReplicaPool {
    replicas: Vec<Network>,
    executors: Vec<Executor>,
    /// Executor for the serial (`threads == 1`) fallback, which runs on
    /// the master network instead of a replica.
    master: Executor,
    scratch: Vec<f32>,
}

impl ReplicaPool {
    /// Builds a pool of `threads` replicas of `net`.
    ///
    /// # Panics
    ///
    /// Panics when `threads == 0`.
    pub fn new(net: &Network, threads: usize) -> Self {
        assert!(threads > 0, "threads must be nonzero");
        ReplicaPool {
            replicas: (0..threads).map(|_| net.clone()).collect(),
            executors: (0..threads).map(|_| Executor::new()).collect(),
            master: Executor::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of worker replicas.
    pub fn threads(&self) -> usize {
        self.replicas.len()
    }

    /// RNG states of every stochastic layer across all replicas, replica-
    /// major (see [`Network::rng_states`]).
    ///
    /// Replicas advance their own dropout streams during pooled steps —
    /// only parameters are re-synced from the master — so a bit-identical
    /// resume of multi-threaded training must capture them all.
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        self.replicas.iter().flat_map(|r| r.rng_states()).collect()
    }

    /// Restores replica RNG states captured by [`ReplicaPool::rng_states`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::Format`] when `states` does not split
    /// evenly into one [`Network::restore_rng_states`] slice per replica —
    /// the checkpoint was taken with a different thread count or network
    /// shape.
    pub fn restore_rng_states(&mut self, states: &[[u64; 4]]) -> Result<(), crate::NnError> {
        let per_replica = self
            .replicas
            .first()
            .map(|r| r.rng_states().len())
            .unwrap_or(0);
        if states.len() != per_replica * self.replicas.len() {
            return Err(crate::NnError::Format(format!(
                "checkpoint holds {} replica RNG states but the pool needs {} ({} replicas × {per_replica})",
                states.len(),
                per_replica * self.replicas.len(),
                self.replicas.len()
            )));
        }
        for (replica, chunk) in self
            .replicas
            .iter_mut()
            .zip(states.chunks(per_replica.max(1)))
        {
            replica.restore_rng_states(chunk)?;
        }
        Ok(())
    }

    /// Copies the master's parameters into every replica (no allocation
    /// after the first call).
    pub fn sync_parameters(&mut self, net: &mut Network) {
        self.scratch.clear();
        net.visit_params(&mut |w, _| self.scratch.extend_from_slice(w));
        for replica in &mut self.replicas {
            let mut offset = 0usize;
            replica.visit_params(&mut |w, _| {
                w.copy_from_slice(&self.scratch[offset..offset + w.len()]);
                offset += w.len();
            });
        }
    }
}

/// One averaged mini-batch gradient step over `(input, target)` pairs,
/// partitioned across the pool's replicas. Gradients are merged into
/// `net` in fixed worker order and applied at rate `lr / batch len`.
///
/// Returns the mean batch loss. Falls back to a serial pass on the master
/// when the pool has one replica (or the batch has one sample), which is
/// bit-identical to [`crate::optim::minibatch_step`] semantics.
///
/// # Panics
///
/// Panics on an empty batch.
pub fn minibatch_step_pooled(
    net: &mut Network,
    pool: &mut ReplicaPool,
    batch: &[(&Tensor, [f32; 2])],
    lr: f32,
) -> f32 {
    assert!(!batch.is_empty(), "empty mini-batch");
    let threads = pool.threads().min(batch.len());

    if threads == 1 {
        net.zero_grads();
        let ex = &mut pool.master;
        let mut grad = Vec::new();
        let mut total = 0.0f32;
        for (x, t) in batch {
            let l = {
                let logits = ex.forward_train(net, x);
                grad.resize(logits.len(), 0.0);
                loss::softmax_cross_entropy_into(logits, t, &mut grad)
            };
            ex.backward(net, &grad);
            total += l;
        }
        net.apply_gradients(lr / batch.len() as f32);
        return total / batch.len() as f32;
    }

    pool.sync_parameters(net);
    let chunk = batch.len().div_ceil(threads);
    let mut losses = vec![0.0f32; threads];

    if let Err(payload) = crossbeam::thread::scope(|scope| {
        for (worker, ((replica, ex), loss_slot)) in pool
            .replicas
            .iter_mut()
            .zip(pool.executors.iter_mut())
            .take(threads)
            .zip(losses.iter_mut())
            .enumerate()
        {
            // Ceil-division chunking can leave trailing workers past the
            // end (13 samples / 8 workers); clamp them to empty.
            let start = (worker * chunk).min(batch.len());
            let slice = &batch[start..(start + chunk).min(batch.len())];
            scope.spawn(move |_| {
                replica.zero_grads();
                let mut grad = Vec::new();
                let mut total = 0.0f32;
                for (x, t) in slice {
                    let l = {
                        let logits = ex.forward_train(replica, x);
                        grad.resize(logits.len(), 0.0);
                        loss::softmax_cross_entropy_into(logits, t, &mut grad)
                    };
                    ex.backward(replica, &grad);
                    total += l;
                }
                *loss_slot = total;
            });
        }
    }) {
        // A worker panic is a bug in layer code, not a recoverable
        // condition: propagate the original payload instead of wrapping it
        // in a second panic message.
        std::panic::resume_unwind(payload);
    }

    // Merge per-worker gradients into the master, in worker order.
    net.zero_grads();
    pool.scratch.clear();
    for replica in pool.replicas.iter_mut().take(threads) {
        pool.scratch.clear();
        replica.visit_params(&mut |_, g| pool.scratch.extend_from_slice(g));
        let mut offset = 0usize;
        net.visit_params(&mut |_, g| {
            let len = g.len();
            for (gi, wg) in g.iter_mut().zip(&pool.scratch[offset..offset + len]) {
                *gi += wg;
            }
            offset += len;
        });
    }
    net.apply_gradients(lr / batch.len() as f32);
    losses.iter().sum::<f32>() / batch.len() as f32
}

/// Runs one averaged mini-batch gradient step with the batch partitioned
/// across `threads` workers (`threads = 1` falls back to the serial path
/// of [`crate::optim::minibatch_step`] semantics).
///
/// Gradient merging is ordered by worker index, so the update — and any
/// training run built on it — is deterministic.
///
/// This builds a fresh [`ReplicaPool`] per call; loops should hold their
/// own pool and call [`minibatch_step_pooled`] instead.
///
/// Returns the mean batch loss.
///
/// # Panics
///
/// Panics on an empty batch or `threads == 0`.
pub fn minibatch_step_parallel(
    net: &mut Network,
    batch: &[&Instance],
    lr: f32,
    threads: usize,
) -> f32 {
    assert!(!batch.is_empty(), "empty mini-batch");
    assert!(threads > 0, "threads must be nonzero");
    let threads = threads.min(batch.len());
    let pairs: Vec<(&Tensor, [f32; 2])> = batch.iter().map(|(x, t)| (x, *t)).collect();
    // The serial path never touches the replicas, so a pool of the empty
    // network is enough to avoid cloning `net` when threads == 1.
    let mut pool = if threads == 1 {
        ReplicaPool::new(&Network::new(), 1)
    } else {
        ReplicaPool::new(net, threads)
    };
    minibatch_step_pooled(net, &mut pool, &pairs, lr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::serialize::ParameterBlob;
    use crate::Tensor;

    fn net(seed: u64) -> Network {
        let mut n = Network::new();
        n.push(Dense::new(4, 10, seed));
        n.push(Relu::new());
        n.push(Dense::new(10, 2, seed + 1));
        n
    }

    fn batch() -> Vec<Instance> {
        (0..12)
            .map(|i| {
                let v: Vec<f32> = (0..4)
                    .map(|j| ((i * 7 + j * 3) % 11) as f32 / 11.0 - 0.5)
                    .collect();
                let label = if v.iter().sum::<f32>() > 0.0 {
                    [0.0f32, 1.0]
                } else {
                    [1.0f32, 0.0]
                };
                (Tensor::from_vec(vec![4], v), label)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_update_closely() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut serial = net(5);
        let mut parallel = net(5);
        let l1 = minibatch_step_parallel(&mut serial, &refs, 0.1, 1);
        let l4 = minibatch_step_parallel(&mut parallel, &refs, 0.1, 4);
        assert!((l1 - l4).abs() < 1e-5, "losses differ: {l1} vs {l4}");
        let ws = ParameterBlob::from_network(&mut serial);
        let wp = ParameterBlob::from_network(&mut parallel);
        for (a, b) in ws.as_slice().iter().zip(wp.as_slice().iter()) {
            // Gradient addition order differs, so allow float-merge noise.
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let run = || {
            let mut n = net(9);
            for _ in 0..5 {
                minibatch_step_parallel(&mut n, &refs, 0.05, 3);
            }
            ParameterBlob::from_network(&mut n)
        };
        assert_eq!(run(), run(), "parallel training must be bit-deterministic");
    }

    #[test]
    fn pooled_steps_match_fresh_replica_steps() {
        let data = batch();
        let pairs: Vec<(&Tensor, [f32; 2])> = data.iter().map(|(x, t)| (x, *t)).collect();
        let refs: Vec<&Instance> = data.iter().collect();

        let mut fresh = net(11);
        let mut pooled = net(11);
        let mut pool = ReplicaPool::new(&pooled, 3);
        for _ in 0..4 {
            let lf = minibatch_step_parallel(&mut fresh, &refs, 0.05, 3);
            let lp = minibatch_step_pooled(&mut pooled, &mut pool, &pairs, 0.05);
            assert_eq!(lf, lp, "pooled step must be bit-identical");
        }
        assert_eq!(
            ParameterBlob::from_network(&mut fresh),
            ParameterBlob::from_network(&mut pooled)
        );
    }

    #[test]
    fn pool_reports_thread_count() {
        let n = net(2);
        assert_eq!(ReplicaPool::new(&n, 4).threads(), 4);
    }

    #[test]
    fn more_threads_than_samples_is_fine() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().take(2).collect();
        let mut n = net(1);
        let l = minibatch_step_parallel(&mut n, &refs, 0.1, 16);
        assert!(l.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_panics() {
        let mut n = net(0);
        let _ = minibatch_step_parallel(&mut n, &[], 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "threads must be nonzero")]
    fn zero_threads_panics() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut n = net(0);
        let _ = minibatch_step_parallel(&mut n, &refs, 0.1, 0);
    }
}
