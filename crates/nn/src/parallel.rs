//! Multi-threaded mini-batch gradient computation.
//!
//! The paper notes MGD "is more compatible with parallel computing and can
//! provide speed up on training procedures" (§5). This module implements
//! that: the batch is split across worker threads, each running
//! forward/backward on its own network replica, and the per-worker
//! gradients are merged **in fixed worker order** so results are
//! bit-for-bit deterministic regardless of thread scheduling.

use crate::optim::Instance;
use crate::{loss, Network};

/// Runs one averaged mini-batch gradient step with the batch partitioned
/// across `threads` workers (`threads = 1` falls back to the serial path
/// of [`crate::optim::minibatch_step`] semantics).
///
/// Gradient merging is ordered by worker index, so the update — and any
/// training run built on it — is deterministic.
///
/// Returns the mean batch loss.
///
/// # Panics
///
/// Panics on an empty batch or `threads == 0`.
pub fn minibatch_step_parallel(
    net: &mut Network,
    batch: &[&Instance],
    lr: f32,
    threads: usize,
) -> f32 {
    assert!(!batch.is_empty(), "empty mini-batch");
    assert!(threads > 0, "threads must be nonzero");
    let threads = threads.min(batch.len());

    if threads == 1 {
        net.zero_grads();
        let mut total = 0.0f32;
        for (x, t) in batch.iter().copied() {
            let logits = net.forward(x, true);
            let (l, g) = loss::softmax_cross_entropy(&logits, t);
            net.backward(&g);
            total += l;
        }
        net.apply_gradients(lr / batch.len() as f32);
        return total / batch.len() as f32;
    }

    // Chunk the batch; each worker gets a fresh replica of the network
    // (parameters + layer state) and accumulates its own gradients.
    let chunk = batch.len().div_ceil(threads);
    let mut replicas: Vec<Network> = (0..threads).map(|_| net.clone()).collect();
    let mut losses = vec![0.0f32; threads];

    crossbeam::thread::scope(|scope| {
        for (worker, (replica, loss_slot)) in
            replicas.iter_mut().zip(losses.iter_mut()).enumerate()
        {
            let slice = &batch[worker * chunk..((worker + 1) * chunk).min(batch.len())];
            scope.spawn(move |_| {
                replica.zero_grads();
                let mut total = 0.0f32;
                for (x, t) in slice.iter().copied() {
                    let logits = replica.forward(x, true);
                    let (l, g) = loss::softmax_cross_entropy(&logits, t);
                    replica.backward(&g);
                    total += l;
                }
                *loss_slot = total;
            });
        }
    })
    .expect("worker thread panicked");

    // Merge per-worker gradients into the master, in worker order.
    net.zero_grads();
    for replica in &mut replicas {
        let mut worker_grads: Vec<f32> = Vec::new();
        replica.visit_params(&mut |_, g| worker_grads.extend_from_slice(g));
        let mut offset = 0usize;
        net.visit_params(&mut |_, g| {
            let len = g.len();
            for (gi, wg) in g.iter_mut().zip(&worker_grads[offset..offset + len]) {
                *gi += wg;
            }
            offset += len;
        });
    }
    net.apply_gradients(lr / batch.len() as f32);
    losses.iter().sum::<f32>() / batch.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};
    use crate::serialize::ParameterBlob;
    use crate::Tensor;

    fn net(seed: u64) -> Network {
        let mut n = Network::new();
        n.push(Dense::new(4, 10, seed));
        n.push(Relu::new());
        n.push(Dense::new(10, 2, seed + 1));
        n
    }

    fn batch() -> Vec<Instance> {
        (0..12)
            .map(|i| {
                let v: Vec<f32> = (0..4).map(|j| ((i * 7 + j * 3) % 11) as f32 / 11.0 - 0.5).collect();
                let label = if v.iter().sum::<f32>() > 0.0 {
                    [0.0f32, 1.0]
                } else {
                    [1.0f32, 0.0]
                };
                (Tensor::from_vec(vec![4], v), label)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_update_closely() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut serial = net(5);
        let mut parallel = net(5);
        let l1 = minibatch_step_parallel(&mut serial, &refs, 0.1, 1);
        let l4 = minibatch_step_parallel(&mut parallel, &refs, 0.1, 4);
        assert!((l1 - l4).abs() < 1e-5, "losses differ: {l1} vs {l4}");
        let ws = ParameterBlob::from_network(&mut serial);
        let wp = ParameterBlob::from_network(&mut parallel);
        for (a, b) in ws.as_slice().iter().zip(wp.as_slice().iter()) {
            // Gradient addition order differs, so allow float-merge noise.
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn parallel_is_deterministic_across_runs() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let run = || {
            let mut n = net(9);
            for _ in 0..5 {
                minibatch_step_parallel(&mut n, &refs, 0.05, 3);
            }
            ParameterBlob::from_network(&mut n)
        };
        assert_eq!(run(), run(), "parallel training must be bit-deterministic");
    }

    #[test]
    fn more_threads_than_samples_is_fine() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().take(2).collect();
        let mut n = net(1);
        let l = minibatch_step_parallel(&mut n, &refs, 0.1, 16);
        assert!(l.is_finite());
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_panics() {
        let mut n = net(0);
        let _ = minibatch_step_parallel(&mut n, &[], 0.1, 2);
    }

    #[test]
    #[should_panic(expected = "threads must be nonzero")]
    fn zero_threads_panics() {
        let data = batch();
        let refs: Vec<&Instance> = data.iter().collect();
        let mut n = net(0);
        let _ = minibatch_step_parallel(&mut n, &refs, 0.1, 0);
    }
}
