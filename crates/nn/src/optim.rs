//! Optimisers: plain SGD and the paper's mini-batch gradient descent.

use crate::{loss, Network, Tensor};
use serde::{Deserialize, Serialize};

/// A labelled training instance: input tensor plus a (possibly soft)
/// two-class probability target.
pub type Instance = (Tensor, [f32; 2]);

/// Runs one gradient step on a single instance (stochastic gradient
/// descent), returning the instance loss. Equivalent to a one-element
/// [`minibatch_step`] and shares its planned execution path.
pub fn sgd_step(net: &mut Network, instance: &Instance, lr: f32) -> f32 {
    minibatch_step(net, std::iter::once(instance), lr)
}

/// Runs one averaged gradient step over a mini-batch (paper Algorithm 1
/// lines 5–10), returning the mean batch loss.
///
/// Each sample runs through a shape-planned [`crate::engine::Executor`],
/// so after the first sample warms the workspace the whole batch performs
/// no per-sample allocation — and the results stay bit-identical to the
/// historical per-tensor path (the planned engine's contract).
///
/// # Panics
///
/// Panics on an empty batch.
pub fn minibatch_step<'a, I>(net: &mut Network, batch: I, lr: f32) -> f32
where
    I: IntoIterator<Item = &'a Instance>,
{
    net.zero_grads();
    let mut ex = crate::engine::Executor::new();
    let mut grad = Vec::new();
    let mut total = 0.0f32;
    let mut count = 0usize;
    for (x, t) in batch {
        let l = {
            let logits = ex.forward_train(net, x);
            grad.resize(logits.len(), 0.0);
            loss::softmax_cross_entropy_into(logits, t, &mut grad)
        };
        ex.backward(net, &grad);
        total += l;
        count += 1;
    }
    assert!(count > 0, "empty mini-batch");
    net.apply_gradients(lr / count as f32);
    total / count as f32
}

/// Step-decay learning-rate schedule: `λ ← α·λ` every `decay_step`
/// iterations (paper Algorithm 1 lines 11–13).
///
/// # Examples
///
/// ```
/// use hotspot_nn::optim::LrSchedule;
///
/// let mut sched = LrSchedule::new(1e-3, 0.5, 2);
/// assert_eq!(sched.current(), 1e-3);
/// sched.tick();
/// sched.tick(); // second tick triggers decay
/// assert_eq!(sched.current(), 5e-4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LrSchedule {
    lr: f32,
    alpha: f32,
    decay_step: usize,
    counter: usize,
}

impl LrSchedule {
    /// Creates a schedule with initial rate `lr`, decay factor
    /// `alpha ∈ (0, 1]` and decay period `decay_step`.
    ///
    /// # Panics
    ///
    /// Panics for non-positive `lr`, `alpha` outside `(0, 1]`, or a zero
    /// `decay_step`.
    pub fn new(lr: f32, alpha: f32, decay_step: usize) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "decay factor must be in (0, 1]"
        );
        assert!(decay_step > 0, "decay step must be nonzero");
        LrSchedule {
            lr,
            alpha,
            decay_step,
            counter: 0,
        }
    }

    /// The current learning rate.
    #[inline]
    pub fn current(&self) -> f32 {
        self.lr
    }

    /// Iterations elapsed since the last decay (checkpointed alongside the
    /// current rate so a resumed schedule decays at the original step).
    #[inline]
    pub fn counter(&self) -> usize {
        self.counter
    }

    /// Rebuilds a schedule mid-stream from checkpointed state: the
    /// *current* (already-decayed) rate and the in-period iteration
    /// counter, plus the original `alpha`/`decay_step` configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same validity rules as [`LrSchedule::new`], or when
    /// `counter >= decay_step` (a tick would already have decayed).
    pub fn resume(lr: f32, alpha: f32, decay_step: usize, counter: usize) -> Self {
        let mut sched = LrSchedule::new(lr, alpha, decay_step);
        assert!(
            counter < decay_step,
            "resume counter {counter} must be below decay step {decay_step}"
        );
        sched.counter = counter;
        sched
    }

    /// Advances one iteration; decays the rate when the period elapses
    /// (and resets the iteration counter, as Algorithm 1 line 12 does).
    pub fn tick(&mut self) {
        self.counter += 1;
        if self.counter.is_multiple_of(self.decay_step) {
            self.lr *= self.alpha;
            self.counter = 0;
        }
    }
}

/// Classical-momentum gradient descent: `v ← μ·v + g; w ← w − λ·v`.
///
/// Not used by the paper (its Algorithm 1 is plain MGD) but provided as a
/// drop-in alternative update rule; the velocity buffer is laid out flat in
/// parameter-visit order.
///
/// # Examples
///
/// ```
/// use hotspot_nn::layers::Dense;
/// use hotspot_nn::optim::Momentum;
/// use hotspot_nn::{loss, Network, Tensor};
///
/// let mut net = Network::new();
/// net.push(Dense::new(2, 2, 0));
/// let mut optim = Momentum::new(0.9);
/// let x = Tensor::from_vec(vec![2], vec![1.0, -1.0]);
/// for _ in 0..20 {
///     net.zero_grads();
///     let (_, g) = loss::softmax_cross_entropy(&net.forward(&x, true), &[0.0, 1.0]);
///     net.backward(&g);
///     optim.step(&mut net, 0.1);
/// }
/// let p = loss::softmax(net.forward(&x, false).as_slice());
/// assert!(p[1] > 0.9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Momentum {
    mu: f32,
    velocity: Vec<f32>,
}

impl Momentum {
    /// Creates a momentum optimiser with coefficient `mu ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `mu` is outside `[0, 1)`.
    pub fn new(mu: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&mu),
            "momentum must be in [0, 1), got {mu}"
        );
        Momentum {
            mu,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the gradients currently accumulated in
    /// `net`. The velocity buffer is lazily sized on first use.
    ///
    /// # Panics
    ///
    /// Panics if the network's parameter count changes between steps.
    pub fn step(&mut self, net: &mut Network, lr: f32) {
        if self.velocity.is_empty() {
            let mut count = 0usize;
            net.visit_params(&mut |w, _| count += w.len());
            self.velocity = vec![0.0; count];
        }
        let mu = self.mu;
        let mut offset = 0usize;
        let velocity = &mut self.velocity;
        net.visit_params(&mut |w, g| {
            let len = w.len();
            assert!(
                offset + len <= velocity.len(),
                "network parameter count changed between momentum steps"
            );
            let v = &mut velocity[offset..offset + len];
            for ((wi, gi), vi) in w.iter_mut().zip(g.iter()).zip(v.iter_mut()) {
                *vi = mu * *vi + *gi;
                *wi -= lr * *vi;
            }
            offset += len;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn net() -> Network {
        let mut n = Network::new();
        n.push(Dense::new(2, 8, 5));
        n.push(Relu::new());
        n.push(Dense::new(8, 2, 6));
        n
    }

    fn instance(x: [f32; 2], t: [f32; 2]) -> Instance {
        (Tensor::from_vec(vec![2], x.to_vec()), t)
    }

    #[test]
    fn sgd_reduces_loss_on_repeated_instance() {
        let mut n = net();
        let inst = instance([1.0, -1.0], [0.0, 1.0]);
        let first = sgd_step(&mut n, &inst, 0.1);
        let mut last = first;
        for _ in 0..20 {
            last = sgd_step(&mut n, &inst, 0.1);
        }
        assert!(last < first);
    }

    #[test]
    fn minibatch_learns_linearly_separable_data() {
        let mut n = net();
        let data = vec![
            instance([1.0, 1.0], [1.0, 0.0]),
            instance([-1.0, -1.0], [0.0, 1.0]),
            instance([0.8, 1.2], [1.0, 0.0]),
            instance([-1.2, -0.8], [0.0, 1.0]),
        ];
        for _ in 0..200 {
            let _ = minibatch_step(&mut n, &data, 0.2);
        }
        for (x, t) in &data {
            let p = loss::softmax(n.forward(x, false).as_slice());
            assert_eq!(p[1] > 0.5, t[1] > 0.5);
        }
    }

    #[test]
    fn minibatch_averages_gradients() {
        // A batch of k identical instances must produce the same update as
        // a single instance.
        let mut a = net();
        let mut b = net();
        let inst = instance([0.3, 0.7], [0.0, 1.0]);
        let batch: Vec<Instance> = (0..4).map(|_| inst.clone()).collect();
        let _ = sgd_step(&mut a, &inst, 0.1);
        let _ = minibatch_step(&mut b, &batch, 0.1);
        let mut wa = Vec::new();
        a.visit_params(&mut |w, _| wa.extend_from_slice(w));
        let mut wb = Vec::new();
        b.visit_params(&mut |w, _| wb.extend_from_slice(w));
        for (x, y) in wa.iter().zip(wb.iter()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "empty mini-batch")]
    fn empty_batch_panics() {
        let mut n = net();
        let empty: Vec<Instance> = Vec::new();
        let _ = minibatch_step(&mut n, &empty, 0.1);
    }

    #[test]
    fn schedule_decays_every_k() {
        let mut s = LrSchedule::new(1.0, 0.5, 3);
        for _ in 0..3 {
            s.tick();
        }
        assert_eq!(s.current(), 0.5);
        for _ in 0..3 {
            s.tick();
        }
        assert_eq!(s.current(), 0.25);
    }

    #[test]
    fn schedule_resume_continues_mid_period() {
        let mut live = LrSchedule::new(1.0, 0.5, 3);
        for _ in 0..4 {
            live.tick();
        }
        // Snapshot after 4 ticks (decayed once, 1 into the next period).
        let mut resumed = LrSchedule::resume(live.current(), 0.5, 3, live.counter());
        for _ in 0..2 {
            live.tick();
            resumed.tick();
        }
        assert_eq!(live.current(), resumed.current());
        assert_eq!(live.counter(), resumed.counter());
    }

    #[test]
    #[should_panic(expected = "resume counter")]
    fn schedule_resume_rejects_overlong_counter() {
        let _ = LrSchedule::resume(0.5, 0.5, 3, 3);
    }

    #[test]
    fn momentum_accelerates_on_consistent_gradients() {
        // On a fixed instance, momentum should reach low loss in fewer
        // steps than plain GD at the same rate.
        let inst = instance([1.0, -0.5], [0.0, 1.0]);
        let loss_after = |steps: usize, mu: f32| {
            let mut n = net();
            let mut optim = Momentum::new(mu);
            for _ in 0..steps {
                n.zero_grads();
                let logits = n.forward(&inst.0, true);
                let (_, g) = crate::loss::softmax_cross_entropy(&logits, &inst.1);
                n.backward(&g);
                optim.step(&mut n, 0.02);
            }
            let (l, _) = crate::loss::softmax_cross_entropy(&n.forward(&inst.0, false), &inst.1);
            l
        };
        let plain = loss_after(40, 0.0);
        let momentum = loss_after(40, 0.9);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn momentum_zero_matches_plain_gd() {
        let inst = instance([0.4, 0.2], [1.0, 0.0]);
        let mut a = net();
        let mut b = net();
        let mut optim = Momentum::new(0.0);
        for _ in 0..5 {
            let _ = sgd_step(&mut a, &inst, 0.05);
            b.zero_grads();
            let logits = b.forward(&inst.0, true);
            let (_, g) = crate::loss::softmax_cross_entropy(&logits, &inst.1);
            b.backward(&g);
            optim.step(&mut b, 0.05);
        }
        assert_eq!(a.forward(&inst.0, false), b.forward(&inst.0, false));
    }

    #[test]
    #[should_panic(expected = "momentum must be in")]
    fn momentum_coefficient_validated() {
        let _ = Momentum::new(1.0);
    }

    #[test]
    fn schedule_validates() {
        assert!(std::panic::catch_unwind(|| LrSchedule::new(0.0, 0.5, 1)).is_err());
        assert!(std::panic::catch_unwind(|| LrSchedule::new(0.1, 1.5, 1)).is_err());
        assert!(std::panic::catch_unwind(|| LrSchedule::new(0.1, 0.5, 0)).is_err());
    }
}
