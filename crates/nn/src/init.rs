//! Weight initialisation.

use rand::rngs::StdRng;
use rand::Rng;

/// He (Kaiming) normal initialisation: zero-mean Gaussian with standard
/// deviation `√(2 / fan_in)` — the standard choice for ReLU networks like
/// the paper's CNN.
///
/// Uses a Box–Muller transform so only `rand`'s uniform sampler is needed.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = hotspot_nn::init::he_normal(128, 64, &mut rng);
/// assert_eq!(w.len(), 128);
/// let mean: f32 = w.iter().sum::<f32>() / 128.0;
/// assert!(mean.abs() < 0.1);
/// ```
pub fn he_normal(count: usize, fan_in: usize, rng: &mut StdRng) -> Vec<f32> {
    let std = (2.0 / fan_in.max(1) as f64).sqrt();
    standard_normal(count, rng)
        .into_iter()
        .map(|z| (z * std) as f32)
        .collect()
}

/// Xavier/Glorot uniform initialisation on `±√(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(count: usize, fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Vec<f32> {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    (0..count)
        .map(|_| rng.gen_range(-bound..bound) as f32)
        .collect()
}

/// `count` i.i.d. standard-normal draws via Box–Muller.
pub fn standard_normal(count: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push(r * theta.cos());
        if out.len() < count {
            out.push(r * theta.sin());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let z = standard_normal(20_000, &mut rng);
        let mean: f64 = z.iter().sum::<f64>() / z.len() as f64;
        let var: f64 = z.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / z.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn he_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = he_normal(20_000, 50, &mut rng);
        let var: f64 = w.iter().map(|&v| (v as f64).powi(2)).sum::<f64>() / w.len() as f64;
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let bound = (6.0f64 / 30.0).sqrt() as f32;
        let w = xavier_uniform(1000, 10, 20, &mut rng);
        assert!(w.iter().all(|&v| v.abs() <= bound));
        assert!(w.iter().any(|&v| v.abs() > bound * 0.5));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = he_normal(16, 8, &mut StdRng::seed_from_u64(9));
        let b = he_normal(16, 8, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn odd_count_supported() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(standard_normal(7, &mut rng).len(), 7);
    }
}
