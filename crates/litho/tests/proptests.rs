//! Property-based tests for the lithography substrate.

use hotspot_geometry::{Clip, Grid, Rect};
use hotspot_litho::process::{dilate, erode};
use hotspot_litho::{aerial, Kernel1d, LithoConfig, LithoSimulator, ResistModel};
use proptest::prelude::*;

fn arb_binary_grid() -> impl Strategy<Value = Grid<bool>> {
    proptest::collection::vec(proptest::bool::ANY, 144).prop_map(|v| Grid::from_vec(12, 12, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gaussian_kernels_are_normalised(sigma in 1.0f64..80.0, res in 1u32..25) {
        let k = Kernel1d::gaussian(sigma, res).expect("valid parameters");
        let sum: f64 = k.weights().iter().map(|&w| w as f64).sum();
        prop_assert!((sum - 1.0).abs() < 1e-5);
        prop_assert_eq!(k.weights().len(), 2 * k.radius() + 1);
        // Symmetric and peaked at centre.
        let w = k.weights();
        for i in 0..w.len() / 2 {
            prop_assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-6);
            prop_assert!(w[i] <= w[k.radius()] + 1e-9);
        }
    }

    #[test]
    fn defocus_never_narrows_the_psf(sigma in 5.0f64..60.0, defocus in 0.0f64..120.0) {
        let nominal = Kernel1d::gaussian(sigma, 10).expect("valid");
        let blurred = Kernel1d::gaussian_defocused(sigma, defocus, 10).expect("valid");
        prop_assert!(blurred.radius() >= nominal.radius());
        prop_assert!(
            blurred.weights()[blurred.radius()] <= nominal.weights()[nominal.radius()] + 1e-7
        );
    }

    #[test]
    fn aerial_intensity_bounded_by_mask_range(
        mask_vals in proptest::collection::vec(0.0f32..1.0, 24 * 24),
        sigma in 10.0f64..50.0,
    ) {
        let mask = Grid::from_vec(24, 24, mask_vals);
        let psf = Kernel1d::gaussian(sigma, 10).expect("valid");
        let img = aerial::aerial_image(&mask, &psf);
        for &v in img.iter() {
            // Zero padding can only reduce intensity; blur cannot exceed
            // the max mask transmission.
            prop_assert!((-1e-6..=1.0 + 1e-5).contains(&v));
        }
    }

    #[test]
    fn develop_is_monotone_in_dose(
        vals in proptest::collection::vec(0.0f32..1.0, 16),
        lo in 0.5f32..1.0,
        extra in 0.01f32..0.5,
    ) {
        let aerial = Grid::from_vec(4, 4, vals);
        let resist = ResistModel::default();
        let a = resist.develop(&aerial, lo);
        let b = resist.develop(&aerial, lo + extra);
        for (x, y) in a.iter().zip(b.iter()) {
            prop_assert!(!x | y, "pixel printed at low dose but not high");
        }
    }

    #[test]
    fn erode_shrinks_dilate_grows(g in arb_binary_grid(), r in 0usize..3) {
        let e = erode(&g, r);
        let d = dilate(&g, r);
        for ((orig, er), di) in g.iter().zip(e.iter()).zip(d.iter()) {
            prop_assert!(!er | orig, "erosion added a pixel");
            prop_assert!(!orig | di, "dilation removed a pixel");
        }
    }

    #[test]
    fn morphology_is_monotone(g in arb_binary_grid(), r in 1usize..3) {
        // erode(g, r) ⊆ erode(g, r-1); dilate(g, r-1) ⊆ dilate(g, r).
        let e1 = erode(&g, r - 1);
        let e2 = erode(&g, r);
        let d1 = dilate(&g, r - 1);
        let d2 = dilate(&g, r);
        for (a, b) in e2.iter().zip(e1.iter()) {
            prop_assert!(!a | b);
        }
        for (a, b) in d1.iter().zip(d2.iter()) {
            prop_assert!(!a | b);
        }
    }

    #[test]
    fn wider_lines_never_fail_harder(w1 in 6i64..12, extra in 1i64..6) {
        // Severity is monotone non-increasing in line width for isolated
        // vertical lines (widths in units of 10 nm).
        let sim = LithoSimulator::new(LithoConfig::default()).expect("valid config");
        let worst = |w: i64| {
            let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200).expect("window"));
            clip.push(Rect::new(600 - 5 * w, 0, 600 + 5 * w, 1200).expect("line"));
            sim.analyze_clip(&clip).worst_failures()
        };
        prop_assert!(worst(w1) >= worst(w1 + extra));
    }
}
