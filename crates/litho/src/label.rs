//! End-to-end hotspot labelling of clips.

use crate::process::{CornerGrid, CornerReport};
use crate::{aerial, process, Kernel1d, LithoError, ProcessCorner, ResistModel};
use hotspot_geometry::{raster, Clip, Grid};
use serde::{Deserialize, Serialize};

/// Configuration of the labelling simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LithoConfig {
    /// Raster resolution in nm per pixel.
    pub resolution_nm: u32,
    /// Nominal PSF standard deviation in nm (≈ the optical blur of a 193 nm
    /// scanner; 30 nm by default).
    pub sigma_nm: f64,
    /// Resist print threshold.
    pub resist: ResistModel,
    /// Dose/defocus corners that define the required process window.
    pub corners: Vec<ProcessCorner>,
    /// Allowed edge-placement error in nm before a pixel counts as a
    /// printing failure.
    pub epe_margin_nm: f64,
    /// Border region excluded from failure analysis, in nm.
    pub guard_band_nm: f64,
    /// A corner only counts as failing when it has at least this many
    /// failing pixels; suppresses 1–3 px corner-rounding artefacts of the
    /// discrete raster.
    pub min_failure_px: usize,
}

impl LithoConfig {
    /// Replaces the corner list with a full dose×defocus [`CornerGrid`],
    /// keeping every other knob. Simulators built from the result emit one
    /// [`CornerReport`] per grid point in [`CornerGrid::corners`] order.
    #[must_use]
    pub fn with_corner_grid(mut self, grid: &CornerGrid) -> Self {
        self.corners = grid.corners();
        self
    }
}

impl Default for LithoConfig {
    /// Defaults tuned for 1200×1200 nm clips at 10 nm/px: σ = 30 nm, ±5 %
    /// dose latitude, 60 nm defocus, 20 nm EPE margin, 200 nm guard band,
    /// 4-pixel failure threshold.
    ///
    /// The EPE margin must stay below half the minimum half-pitch of
    /// interest, otherwise erosion/dilation swallow the very features whose
    /// printing is being checked.
    fn default() -> Self {
        LithoConfig {
            resolution_nm: 10,
            sigma_nm: 30.0,
            resist: ResistModel::default(),
            corners: ProcessCorner::standard_window(0.05, 60.0),
            epe_margin_nm: 20.0,
            guard_band_nm: 200.0,
            min_failure_px: 4,
        }
    }
}

/// Per-clip simulation outcome: one [`CornerReport`] per process corner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LithoReport {
    corner_reports: Vec<CornerReport>,
    min_failure_px: usize,
}

impl LithoReport {
    /// Failure reports, one per configured corner (same order).
    #[inline]
    pub fn corner_reports(&self) -> &[CornerReport] {
        &self.corner_reports
    }

    /// Whether a given corner report counts as failing under the
    /// configured pixel threshold.
    #[inline]
    pub fn corner_fails(&self, report: &CornerReport) -> bool {
        report.failures() >= self.min_failure_px.max(1)
    }

    /// A clip is a hotspot when *any* corner of the required process window
    /// fails to print cleanly — i.e. its usable window is smaller than the
    /// required one (the paper's hotspot definition).
    pub fn is_hotspot(&self) -> bool {
        self.corner_reports.iter().any(|r| self.corner_fails(r))
    }

    /// Number of corners that print cleanly (a crude process-window size).
    pub fn clean_corner_count(&self) -> usize {
        self.corner_reports
            .iter()
            .filter(|r| !self.corner_fails(r))
            .count()
    }

    /// Worst-corner failing-pixel count, a severity score.
    pub fn worst_failures(&self) -> usize {
        self.corner_reports
            .iter()
            .map(CornerReport::failures)
            .max()
            .unwrap_or(0)
    }

    /// Signed distance of the worst corner to the pass/fail boundary, in
    /// failing pixels: `worst_failures() - min_failure_px`.
    ///
    /// Non-negative exactly when [`is_hotspot`](Self::is_hotspot) is true
    /// (`0` means the worst corner sits right on the failure threshold);
    /// more negative means a more robust pattern, more positive a more
    /// severe hotspot. Acquisition strategies can rank near-boundary clips
    /// by `|severity_margin()|`.
    pub fn severity_margin(&self) -> i64 {
        self.worst_failures() as i64 - self.min_failure_px.max(1) as i64
    }

    /// The per-corner label vector plus worst-corner severity, the
    /// multi-corner ground truth consumed by datasets and training heads.
    pub fn corner_labels(&self) -> CornerLabels {
        CornerLabels {
            fails: self
                .corner_reports
                .iter()
                .map(|r| self.corner_fails(r))
                .collect(),
            severity: self.severity_margin(),
        }
    }
}

/// Multi-corner ground truth of one clip: a pass/fail bit per process
/// corner (in the simulator's corner order) plus the signed worst-corner
/// severity margin from [`LithoReport::severity_margin`].
///
/// The invariant `is_hotspot() == (severity >= 0)` holds for labels
/// produced by [`LithoReport::corner_labels`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CornerLabels {
    /// Per-corner failure flags, corner order of the generating simulator.
    pub fails: Vec<bool>,
    /// Signed worst-corner severity margin in failing pixels.
    pub severity: i64,
}

impl CornerLabels {
    /// Number of corners in the label vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.fails.len()
    }

    /// Whether the label vector is empty (never true for labels produced
    /// by a validated simulator).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fails.is_empty()
    }

    /// Whether any corner fails — the scalar hotspot label.
    #[inline]
    pub fn is_hotspot(&self) -> bool {
        self.fails.iter().any(|&f| f)
    }

    /// Number of failing corners (a coarse process-window deficit).
    pub fn failing_corners(&self) -> usize {
        self.fails.iter().filter(|&&f| f).count()
    }
}

/// The labelling simulator: rasterise → aerial image per corner → resist →
/// printing check.
///
/// Construct once and reuse; PSF kernels for every corner are precomputed.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::{Clip, Rect};
/// use hotspot_litho::{LithoConfig, LithoSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sim = LithoSimulator::new(LithoConfig::default())?;
/// let mut dense = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// // 50 nm lines on a 100 nm pitch: below the σ = 30 nm optics' resolution
/// // limit, the array prints with necking/bridging => hotspot.
/// for i in 0..6 {
///     dense.push(Rect::new(300 + i * 100, 0, 350 + i * 100, 1200)?);
/// }
/// assert!(sim.analyze_clip(&dense).is_hotspot());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LithoSimulator {
    config: LithoConfig,
    kernels: Vec<Kernel1d>,
    margin_px: usize,
    guard_px: usize,
}

impl LithoSimulator {
    /// Builds a simulator, precomputing the per-corner PSF kernels.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidParameter`] for non-physical parameters
    /// (zero resolution, non-positive σ, negative margins or an empty corner
    /// list).
    pub fn new(config: LithoConfig) -> Result<Self, LithoError> {
        if config.corners.is_empty() {
            return Err(LithoError::InvalidParameter {
                name: "corners",
                value: 0.0,
            });
        }
        if config.epe_margin_nm.is_nan() || config.epe_margin_nm < 0.0 {
            return Err(LithoError::InvalidParameter {
                name: "epe_margin_nm",
                value: config.epe_margin_nm,
            });
        }
        if config.guard_band_nm.is_nan() || config.guard_band_nm < 0.0 {
            return Err(LithoError::InvalidParameter {
                name: "guard_band_nm",
                value: config.guard_band_nm,
            });
        }
        let kernels = config
            .corners
            .iter()
            .map(|c| {
                Kernel1d::gaussian_defocused(config.sigma_nm, c.defocus_nm, config.resolution_nm)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let margin_px = (config.epe_margin_nm / config.resolution_nm as f64).round() as usize;
        let guard_px = (config.guard_band_nm / config.resolution_nm as f64).round() as usize;
        Ok(LithoSimulator {
            config,
            kernels,
            margin_px,
            guard_px,
        })
    }

    /// The configuration this simulator was built with.
    #[inline]
    pub fn config(&self) -> &LithoConfig {
        &self.config
    }

    /// Nominal-condition aerial image of a pre-rasterised mask.
    pub fn aerial_image(&self, mask: &Grid<f32>) -> Grid<f32> {
        aerial::aerial_image(mask, &self.kernels[0])
    }

    /// Full process-window analysis of a pre-rasterised mask.
    pub fn analyze_raster(&self, mask: &Grid<f32>) -> LithoReport {
        let target = mask.map(|&v| v >= 0.5);
        let corner_reports = self
            .config
            .corners
            .iter()
            .zip(self.kernels.iter())
            .map(|(corner, psf)| {
                let intensity = aerial::aerial_image(mask, psf);
                let printed = self.config.resist.develop(&intensity, corner.dose);
                process::check_printing(&printed, &target, self.margin_px, self.guard_px)
            })
            .collect();
        LithoReport {
            corner_reports,
            min_failure_px: self.config.min_failure_px,
        }
    }

    /// Rasterises and analyses a clip (the labelling entry point).
    pub fn analyze_clip(&self, clip: &Clip) -> LithoReport {
        let mask = raster::rasterize_clip(&clip.normalized(), self.config.resolution_nm);
        self.analyze_raster(&mask)
    }

    /// Convenience: the boolean hotspot label of a clip.
    pub fn label_clip(&self, clip: &Clip) -> bool {
        self.analyze_clip(clip).is_hotspot()
    }

    /// Convenience: the multi-corner label vector of a clip (one entry per
    /// configured corner, plus worst-corner severity).
    pub fn corner_labels(&self, clip: &Clip) -> CornerLabels {
        self.analyze_clip(clip).corner_labels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect;

    fn window() -> Rect {
        Rect::new(0, 0, 1200, 1200).unwrap()
    }

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::default()).unwrap()
    }

    #[test]
    fn config_validation() {
        let mut c = LithoConfig::default();
        c.corners.clear();
        assert!(LithoSimulator::new(c).is_err());
        let mut c = LithoConfig::default();
        c.epe_margin_nm = -1.0;
        assert!(LithoSimulator::new(c).is_err());
        let mut c = LithoConfig::default();
        c.sigma_nm = 0.0;
        assert!(LithoSimulator::new(c).is_err());
    }

    #[test]
    fn empty_clip_is_not_hotspot() {
        let clip = Clip::new(window());
        let report = sim().analyze_clip(&clip);
        assert!(!report.is_hotspot());
        assert_eq!(report.clean_corner_count(), report.corner_reports().len());
    }

    #[test]
    fn wide_isolated_line_prints() {
        let mut clip = Clip::new(window());
        clip.push(Rect::new(500, 100, 640, 1100).unwrap()); // 140 nm line
        assert!(!sim().label_clip(&clip));
    }

    #[test]
    fn sub_resolution_dense_lines_fail() {
        let mut clip = Clip::new(window());
        for i in 0..6 {
            // 50 nm lines, 50 nm gaps — below the σ = 30 nm optics' limit.
            clip.push(Rect::new(300 + i * 100, 0, 350 + i * 100, 1200).unwrap());
        }
        let report = sim().analyze_clip(&clip);
        assert!(report.is_hotspot());
        assert!(report.worst_failures() > 0);
    }

    #[test]
    fn near_limit_pattern_fails_only_off_nominal() {
        // Find that marginal patterns exist: a pattern that prints at
        // nominal but dies at a corner exercises the "small process
        // window" definition. 55 nm lines / 55 nm spaces is near the edge
        // for σ=30 nm.
        let mut found_marginal = false;
        for half_pitch in [45i64, 50, 55, 60, 65, 70, 75, 80] {
            let mut clip = Clip::new(window());
            let mut x = 300;
            while x + half_pitch < 900 {
                clip.push(Rect::new(x, 300, x + half_pitch, 900).unwrap());
                x += 2 * half_pitch;
            }
            let report = sim().analyze_clip(&clip);
            let nominal_clean = report.corner_reports()[0].is_clean();
            if nominal_clean && report.is_hotspot() {
                found_marginal = true;
            }
        }
        assert!(
            found_marginal,
            "process-window sweep should contain marginal patterns"
        );
    }

    #[test]
    fn severity_grows_as_pitch_shrinks() {
        let failure_at = |half_pitch: i64| {
            let mut clip = Clip::new(window());
            let mut x = 300;
            while x + half_pitch < 900 {
                clip.push(Rect::new(x, 300, x + half_pitch, 900).unwrap());
                x += 2 * half_pitch;
            }
            sim().analyze_clip(&clip).worst_failures()
        };
        assert!(failure_at(50) >= failure_at(90));
        assert!(failure_at(60) >= failure_at(120));
    }

    #[test]
    fn severity_margin_sign_matches_label() {
        let s = sim();
        // Robust pattern: negative margin, not a hotspot.
        let mut clean = Clip::new(window());
        clean.push(Rect::new(500, 100, 640, 1100).unwrap());
        let report = s.analyze_clip(&clean);
        assert!(!report.is_hotspot());
        assert!(report.severity_margin() < 0);

        // Sub-resolution array: non-negative margin, hotspot.
        let mut dense = Clip::new(window());
        for i in 0..6 {
            dense.push(Rect::new(300 + i * 100, 0, 350 + i * 100, 1200).unwrap());
        }
        let report = s.analyze_clip(&dense);
        assert!(report.is_hotspot());
        assert!(report.severity_margin() >= 0);
    }

    #[test]
    fn severity_margin_monotone_in_worst_failures() {
        // margin = worst_failures - threshold, so ordering by margin must
        // match ordering by worst_failures across a pitch sweep.
        let report_at = |half_pitch: i64| {
            let mut clip = Clip::new(window());
            let mut x = 300;
            while x + half_pitch < 900 {
                clip.push(Rect::new(x, 300, x + half_pitch, 900).unwrap());
                x += 2 * half_pitch;
            }
            sim().analyze_clip(&clip)
        };
        let reports: Vec<LithoReport> = [45i64, 55, 65, 80, 100, 140]
            .iter()
            .map(|&hp| report_at(hp))
            .collect();
        for a in &reports {
            assert_eq!(
                a.severity_margin(),
                a.worst_failures() as i64 - LithoConfig::default().min_failure_px as i64
            );
            for b in &reports {
                assert_eq!(
                    a.worst_failures().cmp(&b.worst_failures()),
                    a.severity_margin().cmp(&b.severity_margin()),
                    "severity margin must order exactly like worst_failures"
                );
            }
        }
    }

    fn grid_sim(n_dose: usize, n_defocus: usize) -> (LithoSimulator, CornerGrid) {
        let grid = CornerGrid::new(0.05, 60.0, n_dose, n_defocus).unwrap();
        let config = LithoConfig::default().with_corner_grid(&grid);
        (LithoSimulator::new(config).unwrap(), grid)
    }

    fn dense_array() -> Clip {
        let mut clip = Clip::new(window());
        for i in 0..6 {
            clip.push(Rect::new(300 + i * 100, 0, 350 + i * 100, 1200).unwrap());
        }
        clip
    }

    #[test]
    fn corner_grid_labels_have_one_entry_per_corner() {
        let (sim, grid) = grid_sim(3, 3);
        let labels = sim.corner_labels(&dense_array());
        assert_eq!(labels.len(), grid.len());
        assert!(labels.is_hotspot());
        assert!(labels.failing_corners() > 0);
        assert!(labels.severity >= 0);
    }

    #[test]
    fn worst_corner_severity_bounds_nominal() {
        // The worst corner of the grid includes the nominal condition, so
        // the worst-corner failure count can never undercut nominal's.
        let (sim, grid) = grid_sim(5, 3);
        for clip in [dense_array(), {
            let mut c = Clip::new(window());
            c.push(Rect::new(500, 100, 640, 1100).unwrap());
            c
        }] {
            let report = sim.analyze_clip(&clip);
            let nominal = report.corner_reports()[grid.nominal_index()].failures();
            assert!(
                report.worst_failures() >= nominal,
                "worst corner ({}) beneath nominal ({nominal})",
                report.worst_failures()
            );
        }
    }

    #[test]
    fn corner_labels_hotspot_iff_severity_non_negative() {
        let (sim, _) = grid_sim(3, 2);
        let mut marginal = Clip::new(window());
        let mut x = 300;
        while x + 55 < 900 {
            marginal.push(Rect::new(x, 300, x + 55, 900).unwrap());
            x += 110;
        }
        for clip in [dense_array(), marginal, Clip::new(window())] {
            let labels = sim.corner_labels(&clip);
            assert_eq!(
                labels.is_hotspot(),
                labels.severity >= 0,
                "hotspot flag and severity sign disagree"
            );
        }
    }

    #[test]
    fn nominal_corner_fail_implies_hotspot_at_any_grid() {
        // Growing the grid only adds corners, so a clip that fails at
        // nominal stays a hotspot under every grid refinement.
        let clip = dense_array();
        let (coarse, _) = grid_sim(1, 1);
        if coarse.label_clip(&clip) {
            for (nd, nf) in [(3, 2), (3, 3), (5, 3)] {
                let (fine, _) = grid_sim(nd, nf);
                assert!(
                    fine.label_clip(&clip),
                    "hotspot at nominal lost under {nd}x{nf} grid"
                );
            }
        }
    }

    #[test]
    fn labels_are_deterministic() {
        let mut clip = Clip::new(window());
        clip.push(Rect::new(450, 200, 510, 1000).unwrap());
        clip.push(Rect::new(560, 200, 620, 1000).unwrap());
        let s = sim();
        assert_eq!(s.analyze_clip(&clip), s.analyze_clip(&clip));
    }
}
