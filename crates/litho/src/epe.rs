//! Edge-placement-error (EPE) measurement.
//!
//! The pixel-count checks of [`crate::process`] decide *whether* a pattern
//! fails; this module measures *how far* printed contours sit from drawn
//! contours — the metric OPC teams track. EPE of a printed image against
//! its target is computed from a two-pass chamfer distance transform of
//! the target contour.

use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// Summary statistics of per-contour-pixel edge placement error.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpeStats {
    /// Largest deviation of the printed contour from the target contour,
    /// in pixels.
    pub max_px: f32,
    /// Mean deviation over all printed-contour pixels, in pixels.
    pub mean_px: f32,
    /// Printed-contour pixels measured.
    pub contour_pixels: usize,
}

impl EpeStats {
    /// Converts pixel statistics to nanometres at `resolution_nm`/px.
    pub fn to_nm(self, resolution_nm: u32) -> (f32, f32) {
        (
            self.max_px * resolution_nm as f32,
            self.mean_px * resolution_nm as f32,
        )
    }
}

/// Measures EPE: for every contour pixel of `printed`, the chamfer
/// distance to the nearest contour pixel of `target`.
///
/// Returns `None` when the printed image has no contour (nothing printed,
/// or everything printed) — there is no edge to measure. A target with no
/// contour yields `None` too.
///
/// # Panics
///
/// Panics if the two images differ in shape.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
/// use hotspot_litho::epe::edge_placement_error;
///
/// // Target: 4-wide column. Printed: same column shifted right by 1.
/// let mut target = Grid::filled(12, 12, false);
/// let mut printed = Grid::filled(12, 12, false);
/// for y in 0..12 {
///     for x in 4..8 {
///         target[(x, y)] = true;
///         printed[(x + 1, y)] = true;
///     }
/// }
/// let stats = edge_placement_error(&printed, &target).expect("contours exist");
/// assert!((stats.max_px - 1.0).abs() < 0.01);
/// ```
pub fn edge_placement_error(printed: &Grid<bool>, target: &Grid<bool>) -> Option<EpeStats> {
    assert_eq!(
        (printed.width(), printed.height()),
        (target.width(), target.height()),
        "printed/target shape mismatch"
    );
    let target_contour = contour(target);
    if target_contour.iter().all(|&v| !v) {
        return None;
    }
    let printed_contour = contour(printed);
    let dist = chamfer_distance(&target_contour);

    let mut max_px = 0.0f32;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for (is_edge, &d) in printed_contour.iter().zip(dist.iter()) {
        if *is_edge {
            max_px = max_px.max(d);
            sum += d as f64;
            count += 1;
        }
    }
    if count == 0 {
        return None;
    }
    Some(EpeStats {
        max_px,
        mean_px: (sum / count as f64) as f32,
        contour_pixels: count,
    })
}

/// Boundary pixels: foreground pixels with at least one 4-neighbour that
/// is background (or the image border).
fn contour(image: &Grid<bool>) -> Grid<bool> {
    let (w, h) = (image.width(), image.height());
    let mut out = Grid::filled(w, h, false);
    for y in 0..h {
        for x in 0..w {
            if !image[(x, y)] {
                continue;
            }
            let edge = x == 0
                || y == 0
                || x == w - 1
                || y == h - 1
                || !image[(x - 1, y)]
                || !image[(x + 1, y)]
                || !image[(x, y - 1)]
                || !image[(x, y + 1)];
            if edge {
                out[(x, y)] = true;
            }
        }
    }
    out
}

/// Two-pass 3-4 chamfer distance transform (scaled back by 3 so axial
/// steps cost ~1.0), seeded at the true pixels of `seed`.
fn chamfer_distance(seed: &Grid<bool>) -> Grid<f32> {
    const AXIAL: f32 = 3.0;
    const DIAG: f32 = 4.0;
    let (w, h) = (seed.width(), seed.height());
    let big = (w + h) as f32 * DIAG;
    let mut d = seed.map(|&v| if v { 0.0f32 } else { big });
    // Forward pass.
    for y in 0..h {
        for x in 0..w {
            let mut best = d[(x, y)];
            if x > 0 {
                best = best.min(d[(x - 1, y)] + AXIAL);
            }
            if y > 0 {
                best = best.min(d[(x, y - 1)] + AXIAL);
                if x > 0 {
                    best = best.min(d[(x - 1, y - 1)] + DIAG);
                }
                if x + 1 < w {
                    best = best.min(d[(x + 1, y - 1)] + DIAG);
                }
            }
            d[(x, y)] = best;
        }
    }
    // Backward pass.
    for y in (0..h).rev() {
        for x in (0..w).rev() {
            let mut best = d[(x, y)];
            if x + 1 < w {
                best = best.min(d[(x + 1, y)] + AXIAL);
            }
            if y + 1 < h {
                best = best.min(d[(x, y + 1)] + AXIAL);
                if x + 1 < w {
                    best = best.min(d[(x + 1, y + 1)] + DIAG);
                }
                if x > 0 {
                    best = best.min(d[(x - 1, y + 1)] + DIAG);
                }
            }
            d[(x, y)] = best;
        }
    }
    d.map(|&v| v / AXIAL)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column(w: usize, h: usize, x0: usize, x1: usize) -> Grid<bool> {
        let mut g = Grid::filled(w, h, false);
        for y in 0..h {
            for x in x0..x1 {
                g[(x, y)] = true;
            }
        }
        g
    }

    #[test]
    fn identical_images_have_zero_epe() {
        let t = column(16, 16, 5, 9);
        let s = edge_placement_error(&t, &t).unwrap();
        assert_eq!(s.max_px, 0.0);
        assert_eq!(s.mean_px, 0.0);
        assert!(s.contour_pixels > 0);
    }

    #[test]
    fn shifted_column_measures_the_shift() {
        let target = column(20, 20, 5, 9);
        for shift in 1..4usize {
            let printed = column(20, 20, 5 + shift, 9 + shift);
            let s = edge_placement_error(&printed, &target).unwrap();
            assert!(
                (s.max_px - shift as f32).abs() <= 0.35,
                "shift {shift}: max {}",
                s.max_px
            );
        }
    }

    #[test]
    fn empty_printed_has_no_contour() {
        let target = column(10, 10, 2, 5);
        let printed = Grid::filled(10, 10, false);
        assert!(edge_placement_error(&printed, &target).is_none());
    }

    #[test]
    fn empty_target_has_no_reference() {
        let target = Grid::filled(10, 10, false);
        let printed = column(10, 10, 2, 5);
        assert!(edge_placement_error(&printed, &target).is_none());
    }

    #[test]
    fn nm_conversion() {
        let s = EpeStats {
            max_px: 2.0,
            mean_px: 0.5,
            contour_pixels: 10,
        };
        assert_eq!(s.to_nm(10), (20.0, 5.0));
    }

    #[test]
    fn chamfer_approximates_euclidean() {
        let mut seed = Grid::filled(21, 21, false);
        seed[(10, 10)] = true;
        let d = chamfer_distance(&seed);
        assert_eq!(d[(10, 10)], 0.0);
        assert!((d[(13, 10)] - 3.0).abs() < 0.01, "axial distance");
        // Diagonal: true distance √2 ≈ 1.414; 3-4 chamfer gives 4/3 ≈ 1.33.
        assert!((d[(11, 11)] - 4.0 / 3.0).abs() < 0.01);
        let far = d[(0, 0)];
        let true_far = (200.0f32).sqrt();
        assert!(
            (far - true_far).abs() / true_far < 0.1,
            "{far} vs {true_far}"
        );
    }

    #[test]
    fn grown_shape_epe_equals_growth() {
        let target = column(20, 20, 8, 12);
        // Printed 1 px wider on each side.
        let printed = column(20, 20, 7, 13);
        let s = edge_placement_error(&printed, &target).unwrap();
        assert!((s.max_px - 1.0).abs() < 0.35, "max {}", s.max_px);
        assert!(s.mean_px > 0.3);
    }
}
