//! Lithography-simulation substrate: the ground-truth oracle of the suite.
//!
//! The DAC'17 paper trains on clips labelled by an industrial lithography
//! simulator. That simulator is proprietary, so this crate implements the
//! closest physically-motivated stand-in that exercises the same code paths:
//!
//! 1. **Aerial image** ([`aerial`]): the mask raster is convolved with a
//!    Gaussian point-spread function approximating the 193 nm projection
//!    optics' low-pass behaviour. Defocus widens the PSF; dose scales the
//!    delivered intensity.
//! 2. **Resist model** ([`resist`]): a constant-threshold resist converts
//!    intensity to a printed binary image.
//! 3. **Process window** ([`process`]): the printed image is evaluated at a
//!    set of dose/defocus corners. Printing failures — *opens* (target
//!    geometry that fails to print within an edge-placement margin) and
//!    *shorts* (resist printing far outside the target) — are counted per
//!    corner.
//! 4. **Labelling** ([`label`]): a clip is a **hotspot** when any corner in
//!    the window fails, i.e. the pattern's process window is smaller than the
//!    required dose/defocus range — exactly the paper's definition of
//!    "patterns with a smaller process window [that are] sensitive to
//!    process variations".
//!
//! [`simtime`] provides the 10 s-per-clip ODST cost accounting the paper
//! uses (Definition 3), and [`epe`] measures contour-level edge placement
//! errors (chamfer distance), the finer-grained metric behind the
//! pass/fail checks.
//!
//! # Examples
//!
//! ```
//! use hotspot_geometry::{Clip, Rect};
//! use hotspot_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = LithoSimulator::new(LithoConfig::default())?;
//! let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
//! // A wide, isolated line prints robustly: not a hotspot.
//! clip.push(Rect::new(400, 100, 520, 1100)?);
//! let report = sim.analyze_clip(&clip);
//! assert!(!report.is_hotspot());
//! # Ok(())
//! # }
//! ```

pub mod aerial;
pub mod epe;
pub mod kernel;
pub mod label;
pub mod labeler;
pub mod process;
pub mod resist;
pub mod simtime;
pub mod window;

pub use kernel::Kernel1d;
pub use label::{CornerLabels, LithoConfig, LithoReport, LithoSimulator};
pub use labeler::{Labeler, LithoLabeler};
pub use process::{CornerGrid, CornerReport, ProcessCorner};
pub use resist::ResistModel;

use std::error::Error;
use std::fmt;

/// Errors from lithography-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum LithoError {
    /// A physical parameter was outside its valid range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for LithoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LithoError::InvalidParameter { name, value } => {
                write!(f, "invalid lithography parameter {name} = {value}")
            }
        }
    }
}

impl Error for LithoError {}
