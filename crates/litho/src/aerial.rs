//! Aerial-image computation by separable convolution.

use crate::Kernel1d;
use hotspot_geometry::Grid;

/// Convolves a mask coverage raster with the optical PSF (two separable 1-D
/// passes) to produce the aerial intensity image.
///
/// Out-of-window mask content is treated as clear field (zero transmission),
/// which is why downstream failure analysis restricts itself to a guard-band
/// interior — the same reason the paper's clips carry context around the
/// region of interest.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
/// use hotspot_litho::{aerial::aerial_image, Kernel1d};
///
/// # fn main() -> Result<(), hotspot_litho::LithoError> {
/// let mask = Grid::filled(64, 64, 1.0f32);
/// let psf = Kernel1d::gaussian(30.0, 10)?;
/// let img = aerial_image(&mask, &psf);
/// // Centre of a large clear area reaches full intensity.
/// assert!((img[(32, 32)] - 1.0).abs() < 1e-4);
/// # Ok(())
/// # }
/// ```
pub fn aerial_image(mask: &Grid<f32>, psf: &Kernel1d) -> Grid<f32> {
    let h = convolve_rows(mask, psf);
    convolve_cols(&h, psf)
}

/// Horizontal 1-D convolution with zero padding.
pub fn convolve_rows(input: &Grid<f32>, k: &Kernel1d) -> Grid<f32> {
    let (w, h) = (input.width(), input.height());
    let r = k.radius() as isize;
    let weights = k.weights();
    let mut out = Grid::filled(w, h, 0.0f32);
    for y in 0..h {
        let src = input.row(y);
        let dst = out.row_mut(y);
        for x in 0..w {
            let mut acc = 0.0f32;
            let xi = x as isize;
            let lo = (-r).max(-xi);
            let hi = r.min(w as isize - 1 - xi);
            for d in lo..=hi {
                acc += src[(xi + d) as usize] * weights[(d + r) as usize];
            }
            dst[x] = acc;
        }
    }
    out
}

/// Vertical 1-D convolution with zero padding.
pub fn convolve_cols(input: &Grid<f32>, k: &Kernel1d) -> Grid<f32> {
    let (w, h) = (input.width(), input.height());
    let r = k.radius() as isize;
    let weights = k.weights();
    let mut out = Grid::filled(w, h, 0.0f32);
    for y in 0..h {
        let yi = y as isize;
        let lo = (-r).max(-yi);
        let hi = r.min(h as isize - 1 - yi);
        let dst_range = y * w..(y + 1) * w;
        // Accumulate whole source rows scaled by the kernel weight —
        // cache-friendly row-major sweep.
        let mut acc = vec![0.0f32; w];
        for d in lo..=hi {
            let src = input.row((yi + d) as usize);
            let wgt = weights[(d + r) as usize];
            for x in 0..w {
                acc[x] += src[x] * wgt;
            }
        }
        out.as_mut_slice()[dst_range].copy_from_slice(&acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_mask(side: usize) -> Grid<f32> {
        let mut g = Grid::filled(side, side, 0.0f32);
        g[(side / 2, side / 2)] = 1.0;
        g
    }

    #[test]
    fn impulse_response_is_separable_gaussian() {
        let psf = Kernel1d::gaussian(20.0, 10).unwrap();
        let img = aerial_image(&point_mask(33), &psf);
        let c = 16usize;
        let w = psf.weights();
        let r = psf.radius();
        // Response at (c+dx, c+dy) = w[dx] * w[dy].
        assert!((img[(c, c)] - w[r] * w[r]).abs() < 1e-7);
        assert!((img[(c + 1, c)] - w[r + 1] * w[r]).abs() < 1e-7);
        assert!((img[(c + 1, c + 2)] - w[r + 1] * w[r + 2]).abs() < 1e-7);
    }

    #[test]
    fn energy_conserved_away_from_borders() {
        let psf = Kernel1d::gaussian(20.0, 10).unwrap();
        let img = aerial_image(&point_mask(41), &psf);
        // Full impulse energy is preserved when support fits inside.
        assert!((img.sum() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn flat_field_stays_flat_in_interior() {
        let psf = Kernel1d::gaussian(30.0, 10).unwrap();
        let img = aerial_image(&Grid::filled(64, 64, 0.75f32), &psf);
        assert!((img[(32, 32)] - 0.75).abs() < 1e-4);
        // Borders lose intensity to zero padding.
        assert!(img[(0, 0)] < 0.75 * 0.5);
    }

    #[test]
    fn blur_reduces_contrast_of_fine_lines() {
        // 20 nm lines / 20 nm spaces at 10 nm/px vs a 60 nm line.
        let mut fine = Grid::filled(64, 64, 0.0f32);
        for y in 0..64 {
            for x in 0..64 {
                if (x / 2) % 2 == 0 {
                    fine[(x, y)] = 1.0;
                }
            }
        }
        let mut coarse = Grid::filled(64, 64, 0.0f32);
        for y in 0..64 {
            for x in 26..38 {
                coarse[(x, y)] = 1.0;
            }
        }
        let psf = Kernel1d::gaussian(30.0, 10).unwrap();
        let fi = aerial_image(&fine, &psf);
        let ci = aerial_image(&coarse, &psf);
        // Fine pattern blurs toward its mean (0.5); coarse line keeps a
        // strong peak.
        let fine_peak = fi[(32, 32)];
        let coarse_peak = ci[(32, 32)];
        assert!(coarse_peak > fine_peak + 0.1);
        assert!((fine_peak - 0.5).abs() < 0.15);
    }

    #[test]
    fn convolution_is_linear() {
        let psf = Kernel1d::gaussian(15.0, 10).unwrap();
        let a = point_mask(21);
        let mut b = Grid::filled(21, 21, 0.0f32);
        b[(3, 17)] = 2.0;
        let mut sum = a.clone();
        for (s, v) in sum.iter_mut().zip(b.iter()) {
            *s += v;
        }
        let ia = aerial_image(&a, &psf);
        let ib = aerial_image(&b, &psf);
        let is = aerial_image(&sum, &psf);
        for ((x, y), z) in ia.iter().zip(ib.iter()).zip(is.iter()) {
            assert!((x + y - z).abs() < 1e-6);
        }
    }
}
