//! Process-window corners and printing-failure analysis.

use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// One dose/defocus condition of the process window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorner {
    /// Relative exposure dose (1.0 = nominal).
    pub dose: f32,
    /// Focus error in nm (0.0 = best focus).
    pub defocus_nm: f64,
}

impl ProcessCorner {
    /// The nominal condition: dose 1.0, best focus.
    pub const fn nominal() -> Self {
        ProcessCorner {
            dose: 1.0,
            defocus_nm: 0.0,
        }
    }

    /// The standard five-corner window used throughout the suite:
    /// nominal, dose ±`dose_latitude`, and ±`defocus_nm` (defocus blur is
    /// symmetric, so the two focus corners coincide and one is kept, paired
    /// with the worse dose extreme on each side).
    pub fn standard_window(dose_latitude: f32, defocus_nm: f64) -> Vec<ProcessCorner> {
        vec![
            ProcessCorner::nominal(),
            ProcessCorner {
                dose: 1.0 + dose_latitude,
                defocus_nm: 0.0,
            },
            ProcessCorner {
                dose: 1.0 - dose_latitude,
                defocus_nm: 0.0,
            },
            ProcessCorner {
                dose: 1.0 - dose_latitude,
                defocus_nm,
            },
            ProcessCorner {
                dose: 1.0 + dose_latitude,
                defocus_nm,
            },
        ]
    }
}

impl Default for ProcessCorner {
    fn default() -> Self {
        ProcessCorner::nominal()
    }
}

/// A rectangular dose×defocus sampling of the process window.
///
/// Where [`ProcessCorner::standard_window`] keeps only the five extreme
/// corners, a grid samples the full window so every clip gets a *vector*
/// of pass/fail labels (one per grid point) plus a worst-corner severity —
/// the substrate for multi-label and severity-regression training heads.
///
/// The grid always contains the nominal condition: dose levels are
/// symmetric around 1.0 (so `n_dose` must be odd, or 1) and the defocus
/// levels start at 0 nm.
///
/// # Examples
///
/// ```
/// use hotspot_litho::CornerGrid;
///
/// let grid = CornerGrid::new(0.05, 60.0, 3, 2).unwrap();
/// assert_eq!(grid.len(), 6);
/// let corners = grid.corners();
/// assert_eq!(corners[grid.nominal_index()].dose, 1.0);
/// assert_eq!(corners[grid.nominal_index()].defocus_nm, 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerGrid {
    /// Dose levels, ascending, symmetric around 1.0.
    doses: Vec<f32>,
    /// Defocus levels in nm, ascending from 0.
    defocus_nm: Vec<f64>,
}

impl CornerGrid {
    /// Builds a grid of `n_dose` dose levels spanning `1 ± dose_latitude`
    /// and `n_defocus` defocus levels spanning `0..=max_defocus_nm`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::LithoError::InvalidParameter`] when a count is
    /// zero, `n_dose` is even (the grid would miss the nominal dose),
    /// `dose_latitude` is not in `[0, 1)`, or `max_defocus_nm` is
    /// negative/NaN.
    pub fn new(
        dose_latitude: f32,
        max_defocus_nm: f64,
        n_dose: usize,
        n_defocus: usize,
    ) -> Result<Self, crate::LithoError> {
        use crate::LithoError::InvalidParameter;
        if n_dose == 0 || n_dose.is_multiple_of(2) {
            return Err(InvalidParameter {
                name: "n_dose",
                value: n_dose as f64,
            });
        }
        if n_defocus == 0 {
            return Err(InvalidParameter {
                name: "n_defocus",
                value: n_defocus as f64,
            });
        }
        if !(0.0..1.0).contains(&dose_latitude) {
            return Err(InvalidParameter {
                name: "dose_latitude",
                value: dose_latitude as f64,
            });
        }
        if max_defocus_nm.is_nan() || max_defocus_nm < 0.0 {
            return Err(InvalidParameter {
                name: "max_defocus_nm",
                value: max_defocus_nm,
            });
        }
        // `(2i)/(n-1) - 1` is exactly 0 at the middle index, so the grid
        // contains dose 1.0 / defocus 0.0 bit-exactly.
        let doses = (0..n_dose)
            .map(|i| {
                if n_dose == 1 {
                    1.0
                } else {
                    1.0 + dose_latitude * ((2 * i) as f32 / (n_dose - 1) as f32 - 1.0)
                }
            })
            .collect();
        let defocus_nm = (0..n_defocus)
            .map(|i| {
                if n_defocus == 1 {
                    0.0
                } else {
                    max_defocus_nm * i as f64 / (n_defocus - 1) as f64
                }
            })
            .collect();
        Ok(CornerGrid { doses, defocus_nm })
    }

    /// Dose levels, ascending.
    #[inline]
    pub fn doses(&self) -> &[f32] {
        &self.doses
    }

    /// Defocus levels in nm, ascending from 0.
    #[inline]
    pub fn defocus_levels_nm(&self) -> &[f64] {
        &self.defocus_nm
    }

    /// Number of grid corners (`doses × defocus levels`).
    #[inline]
    pub fn len(&self) -> usize {
        self.doses.len() * self.defocus_nm.len()
    }

    /// A grid is never empty (construction validates the counts).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The corner list, defocus-major / dose-minor (row `d` holds every
    /// dose at defocus level `d`). This is the order of per-corner labels
    /// everywhere downstream.
    pub fn corners(&self) -> Vec<ProcessCorner> {
        self.defocus_nm
            .iter()
            .flat_map(|&defocus_nm| {
                self.doses
                    .iter()
                    .map(move |&dose| ProcessCorner { dose, defocus_nm })
            })
            .collect()
    }

    /// Index of the nominal corner (dose 1.0, defocus 0) in
    /// [`CornerGrid::corners`] order.
    #[inline]
    pub fn nominal_index(&self) -> usize {
        self.doses.len() / 2
    }

    /// A compact, deterministic schema string identifying the label layout
    /// (grid shape and levels). Two datasets with different schema strings
    /// carry incomparable per-corner label vectors.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = hotspot_litho::CornerGrid::new(0.05, 60.0, 3, 2).unwrap();
    /// assert_eq!(g.schema(), "dose3[0.950,1.000,1.050]xdefocus2[0,60]nm");
    /// ```
    pub fn schema(&self) -> String {
        let doses: Vec<String> = self.doses.iter().map(|d| format!("{d:.3}")).collect();
        let defocus: Vec<String> = self.defocus_nm.iter().map(|f| format!("{f:.0}")).collect();
        format!(
            "dose{}[{}]xdefocus{}[{}]nm",
            self.doses.len(),
            doses.join(","),
            self.defocus_nm.len(),
            defocus.join(",")
        )
    }
}

/// Printing-failure counts of one clip at one process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CornerReport {
    /// Pixels of must-print target interior that failed to print
    /// (necking / open-circuit risk).
    pub open_pixels: usize,
    /// Printed pixels beyond the dilated target (bridging / short-circuit
    /// risk).
    pub short_pixels: usize,
}

impl CornerReport {
    /// Whether this corner printed cleanly.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.open_pixels == 0 && self.short_pixels == 0
    }

    /// Total failing pixels.
    #[inline]
    pub fn failures(&self) -> usize {
        self.open_pixels + self.short_pixels
    }
}

/// Erodes a binary image by `r` pixels with a square structuring element
/// (separable two-pass min filter).
pub fn erode(image: &Grid<bool>, r: usize) -> Grid<bool> {
    separable_morph(image, r, false)
}

/// Dilates a binary image by `r` pixels with a square structuring element
/// (separable two-pass max filter).
pub fn dilate(image: &Grid<bool>, r: usize) -> Grid<bool> {
    separable_morph(image, r, true)
}

/// Shared separable morphology. `dilate = true` takes the OR over the
/// window, erosion the AND. Outside the image counts as background, so
/// erosion shrinks shapes at the border (conservative) and dilation does
/// not grow beyond real geometry.
fn separable_morph(image: &Grid<bool>, r: usize, dilate: bool) -> Grid<bool> {
    if r == 0 {
        return image.clone();
    }
    let (w, h) = (image.width(), image.height());
    let pass = |src: &Grid<bool>, horizontal: bool| -> Grid<bool> {
        let mut out = Grid::filled(w, h, false);
        for y in 0..h {
            for x in 0..w {
                let mut v = !dilate;
                let (cx, cy, len) = if horizontal { (x, y, w) } else { (y, x, h) };
                let lo = cx.saturating_sub(r);
                let hi = (cx + r).min(len - 1);
                for c in lo..=hi {
                    let px = if horizontal {
                        src[(c, cy)]
                    } else {
                        src[(cy, c)]
                    };
                    if dilate {
                        v |= px;
                        if v {
                            break;
                        }
                    } else {
                        v &= px;
                        if !v {
                            break;
                        }
                    }
                }
                out[(x, y)] = v;
            }
        }
        out
    };
    let tmp = pass(image, true);
    pass(&tmp, false)
}

/// Compares a printed image against the target geometry.
///
/// - **Opens**: pixels of `erode(target, margin)` (geometry that *must*
///   print even allowing `margin` px of edge-placement error) that did not
///   print.
/// - **Shorts**: printed pixels outside `dilate(target, margin)` (resist
///   appearing more than `margin` px away from any drawn geometry).
///
/// Only the interior `guard..(side-guard)` region is inspected, because the
/// aerial image is physically meaningless near the clip border (unknown
/// surrounding context).
///
/// # Panics
///
/// Panics if `printed` and `target` have different dimensions.
pub fn check_printing(
    printed: &Grid<bool>,
    target: &Grid<bool>,
    margin_px: usize,
    guard_px: usize,
) -> CornerReport {
    assert_eq!(
        (printed.width(), printed.height()),
        (target.width(), target.height()),
        "printed/target dimension mismatch"
    );
    let must_print = erode(target, margin_px);
    let may_print = dilate(target, margin_px);
    let (w, h) = (target.width(), target.height());
    if 2 * guard_px >= w || 2 * guard_px >= h {
        return CornerReport::default();
    }
    let mut report = CornerReport::default();
    for y in guard_px..h - guard_px {
        for x in guard_px..w - guard_px {
            let p = printed[(x, y)];
            if must_print[(x, y)] && !p {
                report.open_pixels += 1;
            }
            if p && !may_print[(x, y)] {
                report.short_pixels += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(side: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Grid<bool> {
        let mut g = Grid::filled(side, side, false);
        for y in y0..y1 {
            for x in x0..x1 {
                g[(x, y)] = true;
            }
        }
        g
    }

    #[test]
    fn erode_shrinks_dilate_grows() {
        let g = block(20, 5, 5, 15, 15); // 10x10 square
        let e = erode(&g, 2);
        let d = dilate(&g, 2);
        let count = |g: &Grid<bool>| g.iter().filter(|&&v| v).count();
        assert_eq!(count(&e), 6 * 6);
        assert_eq!(count(&d), 14 * 14);
        assert!(e[(7, 7)] && !e[(6, 6)]);
        assert!(d[(3, 3)] && !d[(2, 2)]);
    }

    #[test]
    fn morphology_r0_is_identity() {
        let g = block(10, 2, 3, 7, 8);
        assert_eq!(erode(&g, 0), g);
        assert_eq!(dilate(&g, 0), g);
    }

    #[test]
    fn erosion_removes_thin_features() {
        let g = block(20, 9, 0, 11, 20); // 2 px wide line
        let e = erode(&g, 1);
        assert!(
            e.iter().all(|&v| !v),
            "2 px line must vanish under r=1 erosion"
        );
    }

    #[test]
    fn duality_on_interior() {
        // dilate(!g) == !erode(g) away from borders.
        let g = block(20, 6, 6, 14, 14);
        let ne = erode(&g, 2);
        let inv = g.map(|&v| !v);
        let di = dilate(&inv, 2);
        for y in 3..17 {
            for x in 3..17 {
                assert_eq!(di[(x, y)], !ne[(x, y)], "at ({x},{y})");
            }
        }
    }

    #[test]
    fn perfect_print_is_clean() {
        let t = block(30, 10, 10, 20, 20);
        let r = check_printing(&t, &t, 2, 3);
        assert!(r.is_clean());
    }

    #[test]
    fn missing_interior_is_open() {
        let t = block(30, 10, 10, 20, 20);
        let mut p = t.clone();
        // Fail to print the centre.
        for y in 13..17 {
            for x in 13..17 {
                p[(x, y)] = false;
            }
        }
        let r = check_printing(&p, &t, 1, 3);
        assert!(r.open_pixels >= 16);
        assert_eq!(r.short_pixels, 0);
    }

    #[test]
    fn extra_resist_far_away_is_short() {
        let t = block(30, 10, 10, 20, 20);
        let mut p = t.clone();
        p[(25, 25)] = true; // far outside dilated target
        let r = check_printing(&p, &t, 2, 3);
        assert_eq!(r.short_pixels, 1);
        assert_eq!(r.open_pixels, 0);
    }

    #[test]
    fn edge_error_within_margin_is_tolerated() {
        let t = block(30, 10, 10, 20, 20);
        // Printed image shrunk by 1 px on every side: within margin 2.
        let p = erode(&t, 1);
        let r = check_printing(&p, &t, 2, 3);
        assert!(r.is_clean());
        // But not within margin 0.
        let r0 = check_printing(&p, &t, 0, 3);
        assert!(r0.open_pixels > 0);
    }

    #[test]
    fn guard_band_excludes_borders() {
        let t = block(30, 0, 0, 30, 5); // geometry hugging the border
        let p = Grid::filled(30, 30, false); // nothing printed
        let r = check_printing(&p, &t, 0, 6);
        assert_eq!(
            r.open_pixels, 0,
            "failures inside the guard band must be ignored"
        );
    }

    #[test]
    fn standard_window_contains_nominal() {
        let w = ProcessCorner::standard_window(0.05, 60.0);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0], ProcessCorner::nominal());
        assert!(w.iter().any(|c| c.defocus_nm > 0.0));
        assert!(w.iter().any(|c| c.dose < 1.0));
    }

    #[test]
    fn corner_grid_contains_exact_nominal() {
        for (nd, nf) in [(1, 1), (3, 2), (5, 3), (3, 1)] {
            let g = CornerGrid::new(0.05, 60.0, nd, nf).unwrap();
            assert_eq!(g.len(), nd * nf);
            let corners = g.corners();
            let nominal = corners[g.nominal_index()];
            assert_eq!(nominal.dose, 1.0, "grid {nd}x{nf} misses nominal dose");
            assert_eq!(nominal.defocus_nm, 0.0, "grid {nd}x{nf} misses best focus");
        }
    }

    #[test]
    fn corner_grid_is_defocus_major() {
        let g = CornerGrid::new(0.10, 80.0, 3, 2).unwrap();
        let corners = g.corners();
        assert_eq!(corners.len(), 6);
        // First row: defocus 0 at every dose, ascending.
        assert!(corners[..3].iter().all(|c| c.defocus_nm == 0.0));
        assert!(corners[3..].iter().all(|c| c.defocus_nm == 80.0));
        assert!(corners[0].dose < corners[1].dose && corners[1].dose < corners[2].dose);
    }

    #[test]
    fn corner_grid_rejects_bad_shapes() {
        assert!(CornerGrid::new(0.05, 60.0, 0, 2).is_err());
        assert!(
            CornerGrid::new(0.05, 60.0, 2, 2).is_err(),
            "even n_dose misses nominal"
        );
        assert!(CornerGrid::new(0.05, 60.0, 3, 0).is_err());
        assert!(CornerGrid::new(-0.1, 60.0, 3, 2).is_err());
        assert!(CornerGrid::new(1.0, 60.0, 3, 2).is_err());
        assert!(CornerGrid::new(0.05, -1.0, 3, 2).is_err());
    }

    #[test]
    fn corner_grid_schema_is_deterministic() {
        let a = CornerGrid::new(0.05, 60.0, 3, 2).unwrap();
        let b = CornerGrid::new(0.05, 60.0, 3, 2).unwrap();
        assert_eq!(a.schema(), b.schema());
        assert_eq!(a.schema(), "dose3[0.950,1.000,1.050]xdefocus2[0,60]nm");
        let c = CornerGrid::new(0.05, 60.0, 5, 2).unwrap();
        assert_ne!(a.schema(), c.schema());
    }
}
