//! Process-window corners and printing-failure analysis.

use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// One dose/defocus condition of the process window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessCorner {
    /// Relative exposure dose (1.0 = nominal).
    pub dose: f32,
    /// Focus error in nm (0.0 = best focus).
    pub defocus_nm: f64,
}

impl ProcessCorner {
    /// The nominal condition: dose 1.0, best focus.
    pub const fn nominal() -> Self {
        ProcessCorner {
            dose: 1.0,
            defocus_nm: 0.0,
        }
    }

    /// The standard five-corner window used throughout the suite:
    /// nominal, dose ±`dose_latitude`, and ±`defocus_nm` (defocus blur is
    /// symmetric, so the two focus corners coincide and one is kept, paired
    /// with the worse dose extreme on each side).
    pub fn standard_window(dose_latitude: f32, defocus_nm: f64) -> Vec<ProcessCorner> {
        vec![
            ProcessCorner::nominal(),
            ProcessCorner {
                dose: 1.0 + dose_latitude,
                defocus_nm: 0.0,
            },
            ProcessCorner {
                dose: 1.0 - dose_latitude,
                defocus_nm: 0.0,
            },
            ProcessCorner {
                dose: 1.0 - dose_latitude,
                defocus_nm,
            },
            ProcessCorner {
                dose: 1.0 + dose_latitude,
                defocus_nm,
            },
        ]
    }
}

impl Default for ProcessCorner {
    fn default() -> Self {
        ProcessCorner::nominal()
    }
}

/// Printing-failure counts of one clip at one process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CornerReport {
    /// Pixels of must-print target interior that failed to print
    /// (necking / open-circuit risk).
    pub open_pixels: usize,
    /// Printed pixels beyond the dilated target (bridging / short-circuit
    /// risk).
    pub short_pixels: usize,
}

impl CornerReport {
    /// Whether this corner printed cleanly.
    #[inline]
    pub fn is_clean(&self) -> bool {
        self.open_pixels == 0 && self.short_pixels == 0
    }

    /// Total failing pixels.
    #[inline]
    pub fn failures(&self) -> usize {
        self.open_pixels + self.short_pixels
    }
}

/// Erodes a binary image by `r` pixels with a square structuring element
/// (separable two-pass min filter).
pub fn erode(image: &Grid<bool>, r: usize) -> Grid<bool> {
    separable_morph(image, r, false)
}

/// Dilates a binary image by `r` pixels with a square structuring element
/// (separable two-pass max filter).
pub fn dilate(image: &Grid<bool>, r: usize) -> Grid<bool> {
    separable_morph(image, r, true)
}

/// Shared separable morphology. `dilate = true` takes the OR over the
/// window, erosion the AND. Outside the image counts as background, so
/// erosion shrinks shapes at the border (conservative) and dilation does
/// not grow beyond real geometry.
fn separable_morph(image: &Grid<bool>, r: usize, dilate: bool) -> Grid<bool> {
    if r == 0 {
        return image.clone();
    }
    let (w, h) = (image.width(), image.height());
    let pass = |src: &Grid<bool>, horizontal: bool| -> Grid<bool> {
        let mut out = Grid::filled(w, h, false);
        for y in 0..h {
            for x in 0..w {
                let mut v = !dilate;
                let (cx, cy, len) = if horizontal { (x, y, w) } else { (y, x, h) };
                let lo = cx.saturating_sub(r);
                let hi = (cx + r).min(len - 1);
                for c in lo..=hi {
                    let px = if horizontal {
                        src[(c, cy)]
                    } else {
                        src[(cy, c)]
                    };
                    if dilate {
                        v |= px;
                        if v {
                            break;
                        }
                    } else {
                        v &= px;
                        if !v {
                            break;
                        }
                    }
                }
                out[(x, y)] = v;
            }
        }
        out
    };
    let tmp = pass(image, true);
    pass(&tmp, false)
}

/// Compares a printed image against the target geometry.
///
/// - **Opens**: pixels of `erode(target, margin)` (geometry that *must*
///   print even allowing `margin` px of edge-placement error) that did not
///   print.
/// - **Shorts**: printed pixels outside `dilate(target, margin)` (resist
///   appearing more than `margin` px away from any drawn geometry).
///
/// Only the interior `guard..(side-guard)` region is inspected, because the
/// aerial image is physically meaningless near the clip border (unknown
/// surrounding context).
///
/// # Panics
///
/// Panics if `printed` and `target` have different dimensions.
pub fn check_printing(
    printed: &Grid<bool>,
    target: &Grid<bool>,
    margin_px: usize,
    guard_px: usize,
) -> CornerReport {
    assert_eq!(
        (printed.width(), printed.height()),
        (target.width(), target.height()),
        "printed/target dimension mismatch"
    );
    let must_print = erode(target, margin_px);
    let may_print = dilate(target, margin_px);
    let (w, h) = (target.width(), target.height());
    if 2 * guard_px >= w || 2 * guard_px >= h {
        return CornerReport::default();
    }
    let mut report = CornerReport::default();
    for y in guard_px..h - guard_px {
        for x in guard_px..w - guard_px {
            let p = printed[(x, y)];
            if must_print[(x, y)] && !p {
                report.open_pixels += 1;
            }
            if p && !may_print[(x, y)] {
                report.short_pixels += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(side: usize, x0: usize, y0: usize, x1: usize, y1: usize) -> Grid<bool> {
        let mut g = Grid::filled(side, side, false);
        for y in y0..y1 {
            for x in x0..x1 {
                g[(x, y)] = true;
            }
        }
        g
    }

    #[test]
    fn erode_shrinks_dilate_grows() {
        let g = block(20, 5, 5, 15, 15); // 10x10 square
        let e = erode(&g, 2);
        let d = dilate(&g, 2);
        let count = |g: &Grid<bool>| g.iter().filter(|&&v| v).count();
        assert_eq!(count(&e), 6 * 6);
        assert_eq!(count(&d), 14 * 14);
        assert!(e[(7, 7)] && !e[(6, 6)]);
        assert!(d[(3, 3)] && !d[(2, 2)]);
    }

    #[test]
    fn morphology_r0_is_identity() {
        let g = block(10, 2, 3, 7, 8);
        assert_eq!(erode(&g, 0), g);
        assert_eq!(dilate(&g, 0), g);
    }

    #[test]
    fn erosion_removes_thin_features() {
        let g = block(20, 9, 0, 11, 20); // 2 px wide line
        let e = erode(&g, 1);
        assert!(
            e.iter().all(|&v| !v),
            "2 px line must vanish under r=1 erosion"
        );
    }

    #[test]
    fn duality_on_interior() {
        // dilate(!g) == !erode(g) away from borders.
        let g = block(20, 6, 6, 14, 14);
        let ne = erode(&g, 2);
        let inv = g.map(|&v| !v);
        let di = dilate(&inv, 2);
        for y in 3..17 {
            for x in 3..17 {
                assert_eq!(di[(x, y)], !ne[(x, y)], "at ({x},{y})");
            }
        }
    }

    #[test]
    fn perfect_print_is_clean() {
        let t = block(30, 10, 10, 20, 20);
        let r = check_printing(&t, &t, 2, 3);
        assert!(r.is_clean());
    }

    #[test]
    fn missing_interior_is_open() {
        let t = block(30, 10, 10, 20, 20);
        let mut p = t.clone();
        // Fail to print the centre.
        for y in 13..17 {
            for x in 13..17 {
                p[(x, y)] = false;
            }
        }
        let r = check_printing(&p, &t, 1, 3);
        assert!(r.open_pixels >= 16);
        assert_eq!(r.short_pixels, 0);
    }

    #[test]
    fn extra_resist_far_away_is_short() {
        let t = block(30, 10, 10, 20, 20);
        let mut p = t.clone();
        p[(25, 25)] = true; // far outside dilated target
        let r = check_printing(&p, &t, 2, 3);
        assert_eq!(r.short_pixels, 1);
        assert_eq!(r.open_pixels, 0);
    }

    #[test]
    fn edge_error_within_margin_is_tolerated() {
        let t = block(30, 10, 10, 20, 20);
        // Printed image shrunk by 1 px on every side: within margin 2.
        let p = erode(&t, 1);
        let r = check_printing(&p, &t, 2, 3);
        assert!(r.is_clean());
        // But not within margin 0.
        let r0 = check_printing(&p, &t, 0, 3);
        assert!(r0.open_pixels > 0);
    }

    #[test]
    fn guard_band_excludes_borders() {
        let t = block(30, 0, 0, 30, 5); // geometry hugging the border
        let p = Grid::filled(30, 30, false); // nothing printed
        let r = check_printing(&p, &t, 0, 6);
        assert_eq!(
            r.open_pixels, 0,
            "failures inside the guard band must be ignored"
        );
    }

    #[test]
    fn standard_window_contains_nominal() {
        let w = ProcessCorner::standard_window(0.05, 60.0);
        assert_eq!(w.len(), 5);
        assert_eq!(w[0], ProcessCorner::nominal());
        assert!(w.iter().any(|c| c.defocus_nm > 0.0));
        assert!(w.iter().any(|c| c.dose < 1.0));
    }
}
