//! ODST cost accounting (paper Definition 3).
//!
//! In the physical-verification flow every clip a detector flags as a
//! hotspot — true detection or false alarm — must be confirmed by full
//! lithography simulation. The paper charges 10 s per flagged clip (per the
//! ICCAD-2013 industrial simulator (ref. 17)) plus the detector's own evaluation
//! time; the resulting *overall detection and simulation time* is the
//! runtime metric of Table 2.

/// Lithography-simulation cost per flagged clip, in seconds (paper §5).
pub const SIM_TIME_PER_CLIP_S: f64 = 10.0;

/// Overall detection-and-simulation time (seconds).
///
/// `ODST = (true detections + false alarms) × 10 s + evaluation time`.
///
/// # Examples
///
/// ```
/// use hotspot_litho::simtime::odst_seconds;
///
/// // 2 478 detected hotspots + 3 413 false alarms + 1 232 s model time
/// // reproduces the paper's ICCAD row arithmetic (~60 147 s).
/// let odst = odst_seconds(2_478, 3_413, 1_232.0);
/// assert!((odst - 60_142.0).abs() < 10.0);
/// ```
pub fn odst_seconds(true_detections: usize, false_alarms: usize, eval_time_s: f64) -> f64 {
    (true_detections + false_alarms) as f64 * SIM_TIME_PER_CLIP_S + eval_time_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_everything_is_zero() {
        assert_eq!(odst_seconds(0, 0, 0.0), 0.0);
    }

    #[test]
    fn linear_in_flagged_clips() {
        let base = odst_seconds(10, 5, 100.0);
        assert_eq!(odst_seconds(11, 5, 100.0) - base, SIM_TIME_PER_CLIP_S);
        assert_eq!(odst_seconds(10, 6, 100.0) - base, SIM_TIME_PER_CLIP_S);
    }

    #[test]
    fn eval_time_passes_through() {
        assert_eq!(odst_seconds(0, 0, 42.5), 42.5);
    }
}
