//! Process-window mapping: the dose × defocus pass/fail landscape.
//!
//! The five-corner check of [`crate::label`] answers "is the required
//! window clean?"; this module measures the *whole* window — for each
//! point of a dose × defocus grid, does the pattern print? The resulting
//! map is the lithographer's classical process-window plot, and its area
//! is a graded printability score (hotspots = small windows, exactly the
//! paper's definition).

use crate::process::{self, ProcessCorner};
use crate::{aerial, Kernel1d, LithoError, LithoSimulator};
use hotspot_geometry::{raster, Clip, Grid};
use serde::{Deserialize, Serialize};

/// A measured process window: pass/fail over a dose × defocus grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessWindowMap {
    doses: Vec<f32>,
    defocuses_nm: Vec<f64>,
    /// Row-major `[defocus][dose]` pass flags.
    passes: Grid<bool>,
}

impl ProcessWindowMap {
    /// Dose axis values.
    pub fn doses(&self) -> &[f32] {
        &self.doses
    }

    /// Defocus axis values (nm).
    pub fn defocuses_nm(&self) -> &[f64] {
        &self.defocuses_nm
    }

    /// Whether the pattern prints cleanly at grid point `(dose_idx,
    /// defocus_idx)`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn passes_at(&self, dose_idx: usize, defocus_idx: usize) -> bool {
        self.passes[(dose_idx, defocus_idx)]
    }

    /// Fraction of grid points that print cleanly — the normalised window
    /// area in `[0, 1]`.
    pub fn window_area(&self) -> f64 {
        let total = self.passes.len().max(1);
        let pass = self.passes.iter().filter(|&&p| p).count();
        pass as f64 / total as f64
    }

    /// The widest dose range (in consecutive grid points) that passes at
    /// best focus (defocus index 0) — a discrete exposure-latitude
    /// estimate, in grid points.
    pub fn exposure_latitude_points(&self) -> usize {
        let mut best = 0usize;
        let mut run = 0usize;
        for d in 0..self.doses.len() {
            if self.passes_at(d, 0) {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best
    }
}

/// Measures the process window of a clip over `doses × defocuses_nm`.
///
/// Uses the simulator's optics/resist/margin configuration; each grid
/// point runs one aerial-image simulation, so an `nd × nf` map costs
/// `nd × nf` convolutions — use coarse grids for dataset-scale sweeps.
///
/// # Errors
///
/// Returns [`LithoError::InvalidParameter`] for an empty axis or
/// non-physical defocus values.
pub fn process_window_map(
    sim: &LithoSimulator,
    clip: &Clip,
    doses: &[f32],
    defocuses_nm: &[f64],
) -> Result<ProcessWindowMap, LithoError> {
    if doses.is_empty() {
        return Err(LithoError::InvalidParameter {
            name: "doses",
            value: 0.0,
        });
    }
    if defocuses_nm.is_empty() {
        return Err(LithoError::InvalidParameter {
            name: "defocuses_nm",
            value: 0.0,
        });
    }
    let config = sim.config();
    let mask = raster::rasterize_clip(&clip.normalized(), config.resolution_nm);
    let target = mask.map(|&v| v >= 0.5);
    let margin_px = (config.epe_margin_nm / config.resolution_nm as f64).round() as usize;
    let guard_px = (config.guard_band_nm / config.resolution_nm as f64).round() as usize;

    let mut passes = Grid::filled(doses.len(), defocuses_nm.len(), false);
    for (fi, &defocus) in defocuses_nm.iter().enumerate() {
        let psf = Kernel1d::gaussian_defocused(config.sigma_nm, defocus, config.resolution_nm)?;
        let intensity = aerial::aerial_image(&mask, &psf);
        for (di, &dose) in doses.iter().enumerate() {
            let printed = config.resist.develop(&intensity, dose);
            let report = process::check_printing(&printed, &target, margin_px, guard_px);
            passes[(di, fi)] = report.failures() < config.min_failure_px.max(1);
        }
    }
    Ok(ProcessWindowMap {
        doses: doses.to_vec(),
        defocuses_nm: defocuses_nm.to_vec(),
        passes,
    })
}

/// Convenience: a symmetric default grid (doses 0.85–1.15 in 13 steps,
/// defocus 0–100 nm in 6 steps).
pub fn default_grid() -> (Vec<f32>, Vec<f64>) {
    let doses = (0..13).map(|i| 0.85 + 0.025 * i as f32).collect();
    let defocuses = (0..6).map(|i| 20.0 * i as f64).collect();
    (doses, defocuses)
}

/// The corners of [`ProcessCorner::standard_window`] evaluated through the
/// map machinery must agree with [`LithoSimulator::analyze_clip`]; exposed
/// for tests and sanity checks.
pub fn corners_agree(sim: &LithoSimulator, clip: &Clip) -> bool {
    let report = sim.analyze_clip(clip);
    let corners: Vec<ProcessCorner> = sim.config().corners.clone();
    for (corner, cr) in corners.iter().zip(report.corner_reports()) {
        let map = match process_window_map(sim, clip, &[corner.dose], &[corner.defocus_nm]) {
            Ok(m) => m,
            Err(_) => return false,
        };
        let map_pass = map.passes_at(0, 0);
        let report_pass = !report.corner_fails(cr);
        if map_pass != report_pass {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LithoConfig;
    use hotspot_geometry::Rect;

    fn sim() -> LithoSimulator {
        LithoSimulator::new(LithoConfig::default()).unwrap()
    }

    fn line_array(half_pitch: i64) -> Clip {
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        let mut x = 100;
        while x + half_pitch < 1100 {
            clip.push(Rect::new(x, 0, x + half_pitch, 1200).unwrap());
            x += 2 * half_pitch;
        }
        clip
    }

    #[test]
    fn robust_pattern_has_larger_window_than_marginal() {
        let s = sim();
        let (doses, defocuses) = default_grid();
        let robust = process_window_map(&s, &line_array(100), &doses, &defocuses).unwrap();
        let marginal = process_window_map(&s, &line_array(60), &doses, &defocuses).unwrap();
        assert!(
            robust.window_area() > marginal.window_area(),
            "robust {} vs marginal {}",
            robust.window_area(),
            marginal.window_area()
        );
        assert!(robust.window_area() > 0.5);
    }

    #[test]
    fn nominal_point_passes_for_printable_pattern() {
        let s = sim();
        let map = process_window_map(&s, &line_array(100), &[1.0], &[0.0]).unwrap();
        assert!(map.passes_at(0, 0));
        assert_eq!(map.window_area(), 1.0);
    }

    #[test]
    fn map_agrees_with_corner_analysis() {
        let s = sim();
        assert!(corners_agree(&s, &line_array(100)));
        assert!(corners_agree(&s, &line_array(60)));
        assert!(corners_agree(&s, &line_array(55)));
    }

    #[test]
    fn exposure_latitude_shrinks_with_pitch() {
        let s = sim();
        let (doses, _) = default_grid();
        let wide = process_window_map(&s, &line_array(100), &doses, &[0.0]).unwrap();
        let tight = process_window_map(&s, &line_array(55), &doses, &[0.0]).unwrap();
        assert!(wide.exposure_latitude_points() >= tight.exposure_latitude_points());
    }

    #[test]
    fn empty_axes_rejected() {
        let s = sim();
        let clip = line_array(100);
        assert!(process_window_map(&s, &clip, &[], &[0.0]).is_err());
        assert!(process_window_map(&s, &clip, &[1.0], &[]).is_err());
    }
}
