//! Pluggable labelling oracles for active learning.
//!
//! Active-learning loops treat label acquisition as the expensive step: in
//! this suite the oracle is full lithography simulation at ~10 s per clip
//! ([`simtime::SIM_TIME_PER_CLIP_S`](crate::simtime::SIM_TIME_PER_CLIP_S)).
//! The [`Labeler`] trait abstracts the oracle so the training loop can run
//! against the real simulator, a cached label store, or a test stub, while
//! every implementation keeps an auditable call count from which the
//! simulated labelling cost follows.

use crate::simtime::SIM_TIME_PER_CLIP_S;
use crate::LithoSimulator;
use hotspot_geometry::Clip;
use std::cell::Cell;

/// A labelling oracle with cost accounting.
///
/// Implementations must be deterministic: the same clip always yields the
/// same label, so resumed active-learning runs replay identically.
pub trait Labeler {
    /// Returns the ground-truth hotspot label of a clip, charging one call.
    fn label(&self, clip: &Clip) -> bool;

    /// Number of labelling calls made so far.
    fn calls(&self) -> usize;

    /// Simulated labelling cost so far, in seconds (paper Definition 3
    /// charges [`SIM_TIME_PER_CLIP_S`] per simulated clip).
    fn cost_s(&self) -> f64 {
        self.calls() as f64 * SIM_TIME_PER_CLIP_S
    }
}

/// The real oracle: full process-window lithography simulation.
///
/// Wraps a [`LithoSimulator`] and counts every [`label`](Labeler::label)
/// call — the quantity an active-learning bench minimises.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::{Clip, Rect};
/// use hotspot_litho::{Labeler, LithoConfig, LithoLabeler, LithoSimulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sim = LithoSimulator::new(LithoConfig::default())?;
/// let labeler = LithoLabeler::new(sim);
/// let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// clip.push(Rect::new(400, 100, 520, 1100)?);
/// assert!(!labeler.label(&clip));
/// assert_eq!(labeler.calls(), 1);
/// assert_eq!(labeler.cost_s(), 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LithoLabeler {
    sim: LithoSimulator,
    calls: Cell<usize>,
}

impl LithoLabeler {
    /// Wraps a simulator with a zeroed call counter.
    pub fn new(sim: LithoSimulator) -> Self {
        LithoLabeler {
            sim,
            calls: Cell::new(0),
        }
    }

    /// The wrapped simulator.
    pub fn simulator(&self) -> &LithoSimulator {
        &self.sim
    }
}

impl Labeler for LithoLabeler {
    fn label(&self, clip: &Clip) -> bool {
        self.calls.set(self.calls.get() + 1);
        self.sim.label_clip(clip)
    }

    fn calls(&self) -> usize {
        self.calls.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LithoConfig;
    use hotspot_geometry::Rect;

    fn labeler() -> LithoLabeler {
        LithoLabeler::new(LithoSimulator::new(LithoConfig::default()).unwrap())
    }

    #[test]
    fn counts_calls_and_cost() {
        let l = labeler();
        assert_eq!(l.calls(), 0);
        assert_eq!(l.cost_s(), 0.0);
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        clip.push(Rect::new(500, 100, 640, 1100).unwrap());
        let first = l.label(&clip);
        let second = l.label(&clip);
        assert_eq!(first, second, "oracle must be deterministic");
        assert_eq!(l.calls(), 2);
        assert_eq!(l.cost_s(), 2.0 * SIM_TIME_PER_CLIP_S);
    }

    #[test]
    fn matches_direct_simulation() {
        let l = labeler();
        let mut dense = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        for i in 0..6 {
            dense.push(Rect::new(300 + i * 100, 0, 350 + i * 100, 1200).unwrap());
        }
        assert_eq!(l.label(&dense), l.simulator().label_clip(&dense));
    }
}
