//! Separable optical point-spread-function kernels.

use crate::LithoError;
use serde::{Deserialize, Serialize};

/// A 1-D convolution kernel with odd support `2 * radius + 1`, normalised to
/// unit sum so that large clear areas reach intensity 1.0.
///
/// A Gaussian is separable, so the 2-D PSF is applied as two 1-D passes —
/// this is what keeps full-benchmark labelling tractable.
///
/// # Examples
///
/// ```
/// use hotspot_litho::Kernel1d;
///
/// # fn main() -> Result<(), hotspot_litho::LithoError> {
/// let k = Kernel1d::gaussian(30.0, 10)?; // σ = 30 nm at 10 nm/pixel
/// let s: f32 = k.weights().iter().sum();
/// assert!((s - 1.0).abs() < 1e-6);
/// assert_eq!(k.weights().len(), 2 * k.radius() + 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel1d {
    radius: usize,
    weights: Vec<f32>,
}

impl Kernel1d {
    /// Builds a normalised Gaussian kernel for standard deviation `sigma_nm`
    /// sampled at `resolution_nm` per pixel. Support is truncated at ±3σ.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidParameter`] when `sigma_nm` is not
    /// positive/finite or `resolution_nm` is zero.
    pub fn gaussian(sigma_nm: f64, resolution_nm: u32) -> Result<Self, LithoError> {
        if !(sigma_nm.is_finite() && sigma_nm > 0.0) {
            return Err(LithoError::InvalidParameter {
                name: "sigma_nm",
                value: sigma_nm,
            });
        }
        if resolution_nm == 0 {
            return Err(LithoError::InvalidParameter {
                name: "resolution_nm",
                value: 0.0,
            });
        }
        let sigma_px = sigma_nm / resolution_nm as f64;
        let radius = (3.0 * sigma_px).ceil().max(1.0) as usize;
        let mut weights = Vec::with_capacity(2 * radius + 1);
        let denom = 2.0 * sigma_px * sigma_px;
        for i in 0..=(2 * radius) {
            let d = i as f64 - radius as f64;
            weights.push((-d * d / denom).exp() as f32);
        }
        let sum: f32 = weights.iter().sum();
        for w in &mut weights {
            *w /= sum;
        }
        Ok(Kernel1d { radius, weights })
    }

    /// Builds the defocused PSF: focus error `defocus_nm` broadens the
    /// effective Gaussian width in quadrature,
    /// `σ_eff = √(σ² + (c · defocus)²)` with blur coupling `c = 0.5`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Kernel1d::gaussian`]; `defocus_nm` must be
    /// finite and non-negative.
    pub fn gaussian_defocused(
        sigma_nm: f64,
        defocus_nm: f64,
        resolution_nm: u32,
    ) -> Result<Self, LithoError> {
        if !(defocus_nm.is_finite() && defocus_nm >= 0.0) {
            return Err(LithoError::InvalidParameter {
                name: "defocus_nm",
                value: defocus_nm,
            });
        }
        let blur = 0.5 * defocus_nm;
        Self::gaussian((sigma_nm * sigma_nm + blur * blur).sqrt(), resolution_nm)
    }

    /// Half-width of the support in pixels.
    #[inline]
    pub fn radius(&self) -> usize {
        self.radius
    }

    /// Normalised weights, length `2 * radius + 1`.
    #[inline]
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Kernel1d::gaussian(0.0, 10).is_err());
        assert!(Kernel1d::gaussian(-5.0, 10).is_err());
        assert!(Kernel1d::gaussian(f64::NAN, 10).is_err());
        assert!(Kernel1d::gaussian(30.0, 0).is_err());
        assert!(Kernel1d::gaussian_defocused(30.0, -1.0, 10).is_err());
    }

    #[test]
    fn normalised_and_symmetric() {
        let k = Kernel1d::gaussian(25.0, 5).unwrap();
        let w = k.weights();
        let sum: f64 = w.iter().map(|&v| v as f64).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        for i in 0..w.len() / 2 {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-7);
        }
        // Peak at centre.
        assert!(w[k.radius()] >= *w.iter().last().unwrap());
    }

    #[test]
    fn defocus_broadens_kernel() {
        let nominal = Kernel1d::gaussian(30.0, 10).unwrap();
        let blurred = Kernel1d::gaussian_defocused(30.0, 80.0, 10).unwrap();
        // Wider support and lower peak.
        assert!(blurred.radius() >= nominal.radius());
        assert!(blurred.weights()[blurred.radius()] < nominal.weights()[nominal.radius()]);
    }

    #[test]
    fn zero_defocus_matches_nominal() {
        let a = Kernel1d::gaussian(30.0, 10).unwrap();
        let b = Kernel1d::gaussian_defocused(30.0, 0.0, 10).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn radius_scales_with_sigma() {
        let narrow = Kernel1d::gaussian(10.0, 10).unwrap();
        let wide = Kernel1d::gaussian(50.0, 10).unwrap();
        assert!(wide.radius() > narrow.radius());
        assert_eq!(narrow.radius(), 3); // 3σ at 1 px σ
    }
}
