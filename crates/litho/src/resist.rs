//! Constant-threshold resist model.

use crate::LithoError;
use hotspot_geometry::Grid;
use serde::{Deserialize, Serialize};

/// A constant-threshold resist: a pixel prints when
/// `dose × intensity ≥ threshold`.
///
/// This is the standard first-order resist model used in fast printability
/// checks; dose variation enters multiplicatively, exactly how exposure
/// latitude is swept in a process-window analysis.
///
/// # Examples
///
/// ```
/// use hotspot_geometry::Grid;
/// use hotspot_litho::ResistModel;
///
/// # fn main() -> Result<(), hotspot_litho::LithoError> {
/// let resist = ResistModel::new(0.5)?;
/// let aerial = Grid::from_vec(2, 1, vec![0.6f32, 0.3]);
/// let printed = resist.develop(&aerial, 1.0);
/// assert_eq!(printed.as_slice(), &[true, false]);
/// // Under-dosing drops the bright pixel too.
/// let under = resist.develop(&aerial, 0.8);
/// assert_eq!(under.as_slice(), &[false, false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResistModel {
    threshold: f32,
}

impl ResistModel {
    /// Creates a resist with print threshold in `(0, 1)`.
    ///
    /// # Errors
    ///
    /// Returns [`LithoError::InvalidParameter`] outside that range.
    pub fn new(threshold: f32) -> Result<Self, LithoError> {
        if !(threshold.is_finite() && threshold > 0.0 && threshold < 1.0) {
            return Err(LithoError::InvalidParameter {
                name: "threshold",
                value: threshold as f64,
            });
        }
        Ok(ResistModel { threshold })
    }

    /// The print threshold.
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Develops an aerial image at relative `dose` into a printed binary
    /// image.
    pub fn develop(&self, aerial: &Grid<f32>, dose: f32) -> Grid<bool> {
        let t = self.threshold;
        aerial.map(|&v| v * dose >= t)
    }
}

impl Default for ResistModel {
    /// The suite-wide default threshold of 0.45.
    fn default() -> Self {
        ResistModel { threshold: 0.45 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_range_validated() {
        assert!(ResistModel::new(0.0).is_err());
        assert!(ResistModel::new(1.0).is_err());
        assert!(ResistModel::new(f32::NAN).is_err());
        assert!(ResistModel::new(0.45).is_ok());
    }

    #[test]
    fn higher_dose_prints_no_fewer_pixels() {
        let resist = ResistModel::default();
        let aerial = Grid::from_vec(4, 1, vec![0.1f32, 0.4, 0.5, 0.9]);
        let lo = resist.develop(&aerial, 0.9);
        let hi = resist.develop(&aerial, 1.1);
        for (l, h) in lo.iter().zip(hi.iter()) {
            assert!(!l | h, "printed at low dose but not high dose");
        }
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(
            ResistModel::default().threshold(),
            ResistModel::new(0.45).unwrap().threshold()
        );
    }

    #[test]
    fn exact_threshold_prints() {
        let resist = ResistModel::new(0.5).unwrap();
        let aerial = Grid::from_vec(1, 1, vec![0.5f32]);
        assert!(resist.develop(&aerial, 1.0)[(0, 0)]);
    }
}
