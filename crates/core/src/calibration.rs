//! Probability calibration analysis.
//!
//! Biased learning deliberately *decalibrates* the non-hotspot class —
//! Theorem 1's proof rests on making the model "less confident" about
//! non-hotspots. This module quantifies that effect: reliability bins and
//! expected calibration error (ECE) before and after biased fine-tuning
//! make the mechanism measurable rather than anecdotal.

use crate::mgd::predict_hotspot_prob;
use hotspot_nn::{Network, Tensor};
use serde::{Deserialize, Serialize};

/// One bin of a reliability diagram.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityBin {
    /// Bin lower edge (probabilities in `[lo, lo + width)`).
    pub lo: f32,
    /// Mean predicted hotspot probability of samples in the bin.
    pub mean_predicted: f64,
    /// Empirical hotspot fraction of samples in the bin.
    pub empirical: f64,
    /// Samples in the bin.
    pub count: usize,
}

/// Bins predictions into a reliability diagram with `bins` equal-width
/// probability bins. Empty bins are omitted.
///
/// # Panics
///
/// Panics if lengths differ or `bins == 0`.
pub fn reliability_diagram(
    net: &Network,
    features: &[Tensor],
    labels: &[bool],
    bins: usize,
) -> Vec<ReliabilityBin> {
    assert_eq!(features.len(), labels.len(), "feature/label mismatch");
    assert!(bins > 0, "bins must be nonzero");
    let mut sums = vec![(0.0f64, 0usize, 0usize); bins]; // (Σp, hotspots, count)
    for (f, &l) in features.iter().zip(labels.iter()) {
        let p = predict_hotspot_prob(net, f);
        let b = ((p * bins as f32) as usize).min(bins - 1);
        sums[b].0 += p as f64;
        if l {
            sums[b].1 += 1;
        }
        sums[b].2 += 1;
    }
    sums.into_iter()
        .enumerate()
        .filter(|(_, (_, _, count))| *count > 0)
        .map(|(i, (sum_p, hs, count))| ReliabilityBin {
            lo: i as f32 / bins as f32,
            mean_predicted: sum_p / count as f64,
            empirical: hs as f64 / count as f64,
            count,
        })
        .collect()
}

/// Expected calibration error: the count-weighted mean absolute gap
/// between predicted probability and empirical frequency across bins.
/// 0 = perfectly calibrated.
///
/// # Panics
///
/// Same conditions as [`reliability_diagram`].
pub fn expected_calibration_error(
    net: &Network,
    features: &[Tensor],
    labels: &[bool],
    bins: usize,
) -> f64 {
    let diagram = reliability_diagram(net, features, labels, bins);
    let total: usize = diagram.iter().map(|b| b.count).sum();
    if total == 0 {
        return 0.0;
    }
    diagram
        .iter()
        .map(|b| (b.mean_predicted - b.empirical).abs() * b.count as f64)
        .sum::<f64>()
        / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::{Dense, Layer};

    /// A network outputting hotspot logit = w·x for scalar input.
    fn scoring_net(weight: f32) -> Network {
        let mut net = Network::new();
        let mut d = Dense::new(1, 2, 0);
        let mut call = 0;
        d.visit_params(&mut |w, _| {
            if call == 0 {
                w.copy_from_slice(&[0.0, weight]);
            } else {
                w.copy_from_slice(&[0.0, 0.0]);
            }
            call += 1;
        });
        net.push(d);
        net
    }

    fn feature(x: f32) -> Tensor {
        Tensor::from_vec(vec![1], vec![x])
    }

    #[test]
    fn bins_partition_all_samples() {
        let net = scoring_net(2.0);
        let xs: Vec<Tensor> = (-10..=10).map(|i| feature(i as f32 / 5.0)).collect();
        let ys: Vec<bool> = (-10..=10).map(|i| i > 0).collect();
        let diagram = reliability_diagram(&net, &xs, &ys, 10);
        let total: usize = diagram.iter().map(|b| b.count).sum();
        assert_eq!(total, xs.len());
        for b in &diagram {
            assert!(b.mean_predicted >= b.lo as f64 - 1e-9);
            assert!(b.mean_predicted <= b.lo as f64 + 0.1 + 1e-6);
            assert!((0.0..=1.0).contains(&b.empirical));
        }
    }

    #[test]
    fn perfectly_confident_correct_model_has_low_ece() {
        // Steep logit: predictions saturate at ~0/1 and match labels.
        let net = scoring_net(50.0);
        let xs: Vec<Tensor> = (-20..=20)
            .filter(|&i| i != 0)
            .map(|i| feature(i as f32))
            .collect();
        let ys: Vec<bool> = (-20..=20).filter(|&i| i != 0).map(|i| i > 0).collect();
        let ece = expected_calibration_error(&net, &xs, &ys, 10);
        assert!(ece < 0.02, "ece {ece}");
    }

    #[test]
    fn anti_correlated_model_has_high_ece() {
        // Confidently wrong: logit sign flipped.
        let net = scoring_net(-50.0);
        let xs: Vec<Tensor> = (-20..=20)
            .filter(|&i| i != 0)
            .map(|i| feature(i as f32))
            .collect();
        let ys: Vec<bool> = (-20..=20).filter(|&i| i != 0).map(|i| i > 0).collect();
        let ece = expected_calibration_error(&net, &xs, &ys, 10);
        assert!(ece > 0.9, "ece {ece}");
    }

    #[test]
    fn empty_input_is_zero_ece() {
        let net = scoring_net(1.0);
        assert_eq!(expected_calibration_error(&net, &[], &[], 5), 0.0);
    }

    #[test]
    #[should_panic(expected = "bins must be nonzero")]
    fn zero_bins_rejected() {
        let net = scoring_net(1.0);
        let _ = reliability_diagram(&net, &[], &[], 0);
    }
}
