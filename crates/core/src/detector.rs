//! End-to-end detector API.

use crate::biased::{BiasedLearningConfig, BiasedLearningReport, CheckpointEvent};
use crate::cascade::{CascadeConfig, CascadePrefilter};
use crate::checkpoint::Checkpoint;
use crate::feature::FeaturePipeline;
use crate::metrics::EvalResult;
use crate::mgd;
use crate::model::CnnConfig;
use crate::parallelism::Parallelism;
use crate::CoreError;
use hotspot_datagen::Dataset;
use hotspot_geometry::Clip;
use hotspot_nn::Network;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Full configuration of the deep biased-learning detector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct DetectorConfig {
    /// Feature-tensor pipeline settings.
    pub pipeline: FeaturePipeline,
    /// CNN architecture (input dimensions must match the pipeline; `fit`
    /// reconciles them automatically).
    pub cnn: CnnConfig,
    /// Biased-learning schedule. Set `rounds = 1` for an unbiased model.
    pub biased: BiasedLearningConfig,
    /// Convenience access to the initial trainer settings.
    pub mgd: crate::mgd::MgdConfig,
    /// Worker policy for batch scoring ([`HotspotDetector::predict_batch`],
    /// [`HotspotDetector::evaluate`], [`HotspotDetector::scan`]). Defaults
    /// to [`Parallelism::auto`]; never affects results, only latency.
    pub parallelism: Parallelism,
}

impl DetectorConfig {
    /// The CNN architecture with its input dimensions reconciled to the
    /// feature pipeline (grid size and retained DCT coefficients).
    pub fn reconciled_cnn(&self) -> CnnConfig {
        CnnConfig {
            input_grid: self.pipeline.grid_dim(),
            input_channels: self.pipeline.coefficients(),
            ..self.cnn
        }
    }

    /// The effective biased-learning schedule: `mgd` supplies the initial
    /// trainer settings, and the fine-tune step budget is capped at a
    /// quarter of the initial budget when left above it.
    pub fn schedule(&self) -> BiasedLearningConfig {
        let mut biased = self.biased.clone();
        biased.initial = self.mgd.clone();
        if biased.fine_tune.max_steps > self.mgd.max_steps {
            biased.fine_tune.max_steps = (self.mgd.max_steps / 4).max(1);
        }
        biased
    }
}

/// A trained hotspot detector: feature pipeline + CNN + (optionally)
/// biased learning.
///
/// See the crate-level example for the full train/evaluate flow.
pub struct HotspotDetector {
    pipeline: FeaturePipeline,
    net: Network,
    report: BiasedLearningReport,
    parallelism: Parallelism,
}

impl std::fmt::Debug for HotspotDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotspotDetector")
            .field("pipeline", &self.pipeline)
            .field("final_epsilon", &self.report.final_epsilon())
            .field("parallelism", &self.parallelism)
            .finish()
    }
}

impl HotspotDetector {
    /// Trains a detector on a labelled clip dataset with the paper's full
    /// procedure (feature tensors → MGD → biased fine-tuning).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction and training errors; the training set
    /// must contain both classes.
    pub fn fit(train: &Dataset, config: &DetectorConfig) -> Result<Self, CoreError> {
        Self::fit_resumable(train, config, None, 0, &mut |_, _| Ok(()))
    }

    /// [`HotspotDetector::fit`] with crash-safe checkpointing: `hook`
    /// fires at every checkpointable moment (every `checkpoint_every`
    /// optimiser steps and at every round boundary — see
    /// [`crate::biased::train_biased_resumable`]), and `resume` restarts
    /// an interrupted run from a [`Checkpoint`], reproducing bit-identical
    /// final weights to the uninterrupted run.
    ///
    /// Callers are responsible for validating the checkpoint against the
    /// run configuration first ([`Checkpoint::validate_run`]); this method
    /// only verifies that it fits the constructed network.
    ///
    /// # Errors
    ///
    /// Everything [`HotspotDetector::fit`] rejects, plus
    /// [`CoreError::Checkpoint`] for a checkpoint that does not match the
    /// network or schedule, and any error the hook returns.
    pub fn fit_resumable(
        train: &Dataset,
        config: &DetectorConfig,
        resume: Option<&Checkpoint>,
        checkpoint_every: usize,
        hook: &mut dyn FnMut(CheckpointEvent<'_>, &mut Network) -> Result<(), CoreError>,
    ) -> Result<Self, CoreError> {
        if train.hotspot_count() == 0 || train.non_hotspot_count() == 0 {
            return Err(CoreError::DegenerateTrainingSet(
                "training set must contain both classes",
            ));
        }
        let pipeline = config.pipeline.clone();
        let (features, labels) = pipeline.extract_dataset(train)?;
        let mut session = crate::session::TrainSession::new(
            config.reconciled_cnn().build(),
            features,
            labels,
            config.schedule(),
        );
        if let Some(ckpt) = resume {
            let resume_state = ckpt.apply(session.network_mut())?;
            session.restore(resume_state);
        }
        let report = session.run_schedule(checkpoint_every, hook)?;
        Ok(HotspotDetector {
            pipeline,
            net: session.into_network(),
            report,
            parallelism: config.parallelism,
        })
    }

    /// [`HotspotDetector::fit`] plus a calibrated cascade prefilter
    /// trained on the *same* dataset: the CNN learns the paper's biased
    /// procedure, and the prefilter's AdaBoost-over-density stage is
    /// calibrated to `cascade.target_fnr` on a deterministic held-out
    /// split (see [`CascadePrefilter::train`]). Feed the prefilter to
    /// [`crate::ScanConfig::with_cascade`] for two-stage scanning.
    ///
    /// # Errors
    ///
    /// Everything [`HotspotDetector::fit`] rejects, plus
    /// [`CoreError::Prefilter`] /
    /// [`CoreError::InvalidConfig`] for cascade training and calibration
    /// failures.
    pub fn fit_with_cascade(
        train: &Dataset,
        config: &DetectorConfig,
        cascade: &CascadeConfig,
    ) -> Result<(Self, CascadePrefilter), CoreError> {
        let detector = Self::fit(train, config)?;
        let prefilter = detector.train_prefilter(train, cascade)?;
        Ok((detector, prefilter))
    }

    /// Trains and calibrates a cascade prefilter against this detector's
    /// raster resolution (so scan-time density crops reproduce the
    /// training-time vectors bit-for-bit).
    ///
    /// # Errors
    ///
    /// See [`CascadePrefilter::train`].
    pub fn train_prefilter(
        &self,
        train: &Dataset,
        cascade: &CascadeConfig,
    ) -> Result<CascadePrefilter, CoreError> {
        CascadePrefilter::train(train, self.pipeline.resolution_nm(), cascade)
    }

    /// Wraps an already-trained network (e.g. restored from a model file)
    /// in a detector, with an empty training report and the default
    /// ([`Parallelism::auto`]) worker policy.
    ///
    /// The caller is responsible for the network matching the pipeline's
    /// [`FeaturePipeline::input_shape`]; a mismatch surfaces as a shape
    /// panic on the first prediction, exactly as it would when driving the
    /// network directly.
    pub fn from_network(pipeline: FeaturePipeline, net: Network) -> Self {
        HotspotDetector {
            pipeline,
            net,
            report: BiasedLearningReport { rounds: Vec::new() },
            parallelism: Parallelism::default(),
        }
    }

    /// Assembles a detector from a finished training session (the
    /// active-learning driver in [`crate::active`]).
    pub(crate) fn from_session(
        pipeline: FeaturePipeline,
        net: Network,
        report: BiasedLearningReport,
        parallelism: Parallelism,
    ) -> Self {
        HotspotDetector {
            pipeline,
            net,
            report,
            parallelism,
        }
    }

    /// The biased-learning training report.
    pub fn training_report(&self) -> &BiasedLearningReport {
        &self.report
    }

    /// The feature pipeline the detector was trained with.
    pub fn pipeline(&self) -> &FeaturePipeline {
        &self.pipeline
    }

    /// The underlying trained network.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the underlying network (for boundary-shift
    /// experiments and fine-tuning studies).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// The current batch-scoring worker policy.
    pub fn parallelism(&self) -> Parallelism {
        self.parallelism
    }

    /// Overrides the worker policy inherited from
    /// [`DetectorConfig::parallelism`].
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// Predicted hotspot probability of one clip.
    ///
    /// Inference is read-only (`Network::forward_inference`), so a shared
    /// detector can score clips from many threads concurrently.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn predict_proba(&self, clip: &Clip) -> Result<f32, CoreError> {
        let feature = self.pipeline.extract(clip)?;
        Ok(mgd::predict_hotspot_prob(&self.net, &feature))
    }

    /// Hard hotspot decision at the standard 0.5 threshold.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn predict(&self, clip: &Clip) -> Result<bool, CoreError> {
        Ok(self.predict_proba(clip)? > 0.5)
    }

    /// Predicted hotspot probabilities for a batch of clips, with feature
    /// extraction and CNN inference fanned out over the configured
    /// [`Parallelism`] (fixed-order chunks, results in clip order). All
    /// workers share the network immutably — no replica cloning.
    ///
    /// Per-clip computation is pure, so the output is **bit-identical to
    /// calling [`HotspotDetector::predict_proba`] serially**, for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// Propagates the first feature-extraction failure (in clip order).
    pub fn predict_batch(&self, clips: &[Clip]) -> Result<Vec<f32>, CoreError> {
        self.predict_batch_workers(clips, self.parallelism.workers())
    }

    fn predict_batch_workers(&self, clips: &[Clip], workers: usize) -> Result<Vec<f32>, CoreError> {
        // Nothing to score: answer immediately instead of spinning up
        // workers or planning a degenerate workspace.
        if clips.is_empty() {
            return Ok(Vec::new());
        }
        let workers = workers.min(clips.len()).max(1);
        let pipeline = &self.pipeline;
        let net = &self.net;
        let k = pipeline.coefficients();
        let n = pipeline.grid_dim();
        let in_shape = [k, n, n];
        let feat_len = k * n * n;
        let probe = net.plan(&in_shape);
        let out_len = probe.out_len();
        let block = probe.suggested_batch();
        // Each worker extracts a block of clip features into one flat
        // buffer and scores the whole block through the batched planner —
        // one GEMM per layer per block — so after the first block the CNN
        // forward pass allocates nothing (the ragged final block replans
        // once). Batched scoring is bit-identical per clip.
        let score_chunk = |slice: &[Clip]| -> Result<Vec<f32>, CoreError> {
            let mut ex = hotspot_nn::engine::Executor::new();
            let mut soft = vec![0.0f32; out_len];
            let mut probs = Vec::with_capacity(slice.len());
            let mut flat = vec![0.0f32; block.min(slice.len()).max(1) * feat_len];
            for chunk in slice.chunks(block) {
                for (clip, dst) in chunk.iter().zip(flat.chunks_exact_mut(feat_len)) {
                    let feature = pipeline.extract(clip)?;
                    dst.copy_from_slice(feature.as_slice());
                }
                let logits =
                    ex.infer_batch(net, &flat[..chunk.len() * feat_len], &in_shape, chunk.len());
                for y in logits.chunks_exact(out_len) {
                    hotspot_nn::loss::softmax_into(y, &mut soft);
                    probs.push(soft[1]);
                }
            }
            Ok(probs)
        };
        if workers == 1 {
            return score_chunk(clips);
        }
        let chunk = clips.len().div_ceil(workers);
        let mut slots: Vec<Result<Vec<f32>, CoreError>> =
            (0..workers).map(|_| Ok(Vec::new())).collect();
        let score_chunk = &score_chunk;
        if let Err(payload) = crossbeam::thread::scope(|scope| {
            for (worker, slot) in slots.iter_mut().enumerate() {
                let start = (worker * chunk).min(clips.len());
                let slice = &clips[start..(start + chunk).min(clips.len())];
                scope.spawn(move |_| {
                    *slot = score_chunk(slice);
                });
            }
        }) {
            // A worker panic is a bug, not a recoverable condition:
            // propagate the original payload.
            std::panic::resume_unwind(payload);
        }
        let mut probs = Vec::with_capacity(clips.len());
        for slot in slots {
            probs.extend(slot?);
        }
        Ok(probs)
    }

    /// Incrementally updates the trained model with newly labelled clips —
    /// the "online update capability of MGD" the paper highlights as the
    /// answer to its long initial training time (§5: "the trained model
    /// can be effectively updated with newly incoming instances").
    ///
    /// Each `(clip, hotspot)` pair contributes one gradient step at rate
    /// `lr` towards its (optionally biased) target; `epsilon` plays the
    /// same role as in [`crate::biased`].
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures and rejects ε outside
    /// `[0, 0.5)`.
    pub fn update_online(
        &mut self,
        samples: &[(Clip, bool)],
        lr: f32,
        epsilon: f32,
    ) -> Result<(), CoreError> {
        if !(0.0..0.5).contains(&epsilon) {
            return Err(CoreError::InvalidConfig("ε must be in [0, 0.5)"));
        }
        let mut ex = hotspot_nn::engine::Executor::new();
        let mut grad = Vec::new();
        for (clip, hotspot) in samples {
            let feature = self.pipeline.extract(clip)?;
            self.net.zero_grads();
            {
                let logits = ex.forward_train(&mut self.net, &feature);
                grad.resize(logits.len(), 0.0);
                let _ = hotspot_nn::loss::softmax_cross_entropy_into(
                    logits,
                    &mgd::target_for(*hotspot, epsilon),
                    &mut grad,
                );
            }
            ex.backward(&mut self.net, &grad);
            self.net.apply_gradients(lr);
        }
        Ok(())
    }

    /// Snapshots the trained weights (e.g. for persistence via serde).
    pub fn export_parameters(&mut self) -> hotspot_nn::serialize::ParameterBlob {
        hotspot_nn::serialize::ParameterBlob::from_network(&mut self.net)
    }

    /// Restores weights exported from an identically-configured detector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when the parameter counts
    /// disagree (different architecture or pipeline `k`).
    pub fn import_parameters(
        &mut self,
        blob: &hotspot_nn::serialize::ParameterBlob,
    ) -> Result<(), CoreError> {
        blob.load_into(&mut self.net)
            .map_err(|_| CoreError::InvalidConfig("parameter blob does not match architecture"))
    }

    /// Evaluates on a labelled test set, producing Table-2-style metrics
    /// (accuracy, false alarms, CPU seconds, ODST). Scoring fans out per
    /// the configured [`Parallelism`]; predictions are identical to a
    /// serial pass (see [`HotspotDetector::predict_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures (a test clip whose geometry
    /// does not match the training pipeline configuration).
    pub fn evaluate(&self, test: &Dataset) -> Result<EvalResult, CoreError> {
        self.evaluate_workers(test, self.parallelism.workers())
    }

    fn evaluate_workers(&self, test: &Dataset, workers: usize) -> Result<EvalResult, CoreError> {
        let start = Instant::now();
        let clips: Vec<Clip> = test.iter().map(|s| s.clip.clone()).collect();
        let probs = self.predict_batch_workers(&clips, workers)?;
        let predictions: Vec<bool> = probs.iter().map(|&p| p > 0.5).collect();
        let labels: Vec<bool> = test.iter().map(|s| s.hotspot).collect();
        let eval_time = start.elapsed().as_secs_f64();
        Ok(EvalResult::from_predictions(
            &predictions,
            &labels,
            eval_time,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgd::MgdConfig;
    use hotspot_datagen::suite::SuiteSpec;
    use hotspot_litho::{LithoConfig, LithoSimulator};

    fn quick_config() -> DetectorConfig {
        let mgd = MgdConfig {
            lr: 2e-3,
            alpha: 0.7,
            decay_step: 150,
            batch_size: 16,
            max_steps: 400,
            val_interval: 100,
            patience: 3,
            val_fraction: 0.25,
            seed: 5,
            balanced_sampling: true,
            threads: 1,
        };
        let mut cfg = DetectorConfig::default();
        // k = 8 keeps the unit test fast; the experiments use 32.
        cfg.pipeline = FeaturePipeline::new(10, 12, 8).unwrap();
        cfg.biased.rounds = 2;
        cfg.biased.fine_tune = MgdConfig {
            max_steps: 100,
            ..mgd.clone()
        };
        cfg.mgd = mgd;
        cfg
    }

    /// A small, class-balanced, single-archetype benchmark: learnable
    /// within a unit-test step budget.
    fn balanced_spec() -> SuiteSpec {
        SuiteSpec {
            name: "unit".into(),
            train_hs: 40,
            train_nhs: 40,
            test_hs: 20,
            test_nhs: 20,
            mix: vec![
                (hotspot_datagen::PatternKind::LineArray, 1.0),
                (hotspot_datagen::PatternKind::LineTips, 1.0),
            ],
            // Pinned to a draw the quick-budget detector learns with
            // margin; the bound checks wiring, not a specific seed.
            seed: 107,
            version: hotspot_datagen::suite::SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
    }

    #[test]
    fn fit_and_evaluate_tiny_benchmark() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = balanced_spec().build(&sim);
        let mut detector = HotspotDetector::fit(&data.train, &quick_config()).unwrap();
        let result = detector.evaluate(&data.test).unwrap();
        assert_eq!(
            result.hotspot_total + result.non_hotspot_total,
            data.test.len()
        );
        // This test guards end-to-end wiring, not model quality (the
        // experiment binaries measure that at realistic budgets): a
        // briefly-trained model must still clearly beat chance overall
        // and detect a nontrivial share of hotspots.
        assert!(result.accuracy > 0.35, "accuracy {}", result.accuracy);
        assert!(
            result.overall_accuracy() > 0.6,
            "overall {}",
            result.overall_accuracy()
        );
        assert!(result.odst_s >= result.eval_time_s);
        // Prediction API is consistent with evaluation.
        let sample = &data.test.samples()[0];
        let p = detector.predict_proba(&sample.clip).unwrap();
        assert!((0.0..=1.0).contains(&p));

        // Batch prediction is bit-identical to the serial API for any
        // worker policy.
        let clips: Vec<Clip> = data.test.iter().map(|s| s.clip.clone()).collect();
        let serial: Vec<f32> = clips
            .iter()
            .map(|c| detector.predict_proba(c).unwrap())
            .collect();
        for workers in [1, 2, 3, 8] {
            detector.set_parallelism(Parallelism::fixed(workers).unwrap());
            assert_eq!(
                detector.predict_batch(&clips).unwrap(),
                serial,
                "workers = {workers}"
            );
        }
        detector.set_parallelism(Parallelism::auto());
        assert_eq!(detector.predict_batch(&clips).unwrap(), serial);
        // A shared reference scores concurrently: predict_proba is &self.
        let shared = &detector;
        let first = &clips[0];
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..2)
                .map(|_| scope.spawn(move |_| shared.predict_proba(first).unwrap()))
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), serial[0]);
            }
        })
        .unwrap();
    }

    #[test]
    fn empty_clip_batch_returns_empty() {
        // Regression: a zero-clip batch must answer `[]` immediately for
        // every worker policy instead of planning a degenerate workspace
        // (or dividing by a zero chunk size).
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = balanced_spec().build(&sim);
        let mut cfg = quick_config();
        cfg.mgd.max_steps = 60;
        cfg.biased.rounds = 1;
        let mut detector = HotspotDetector::fit(&data.train, &cfg).unwrap();
        for workers in [1usize, 4] {
            detector.set_parallelism(Parallelism::fixed(workers).unwrap());
            assert!(detector.predict_batch(&[]).unwrap().is_empty());
        }
        detector.set_parallelism(Parallelism::auto());
        assert!(detector.predict_batch(&[]).unwrap().is_empty());
        // An empty test set evaluates to the degenerate-but-defined
        // all-empty result rather than panicking.
        let empty: Dataset = std::iter::empty::<hotspot_datagen::Sample>().collect();
        let result = detector.evaluate(&empty).unwrap();
        assert_eq!(result.hotspot_total + result.non_hotspot_total, 0);
    }

    #[test]
    fn rejects_single_class_training() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = SuiteSpec::iccad(0.002).build(&sim);
        let only_hs: Dataset = data.train.iter().filter(|s| s.hotspot).cloned().collect();
        assert!(matches!(
            HotspotDetector::fit(&only_hs, &quick_config()),
            Err(CoreError::DegenerateTrainingSet(_))
        ));
    }

    #[test]
    fn online_updates_shift_predictions() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = balanced_spec().build(&sim);
        let mut cfg = quick_config();
        cfg.mgd.max_steps = 100; // deliberately undertrained
        cfg.biased.rounds = 1;
        let mut detector = HotspotDetector::fit(&data.train, &cfg).unwrap();
        // Stream one hotspot clip repeatedly: its probability must rise.
        let hs = data
            .train
            .iter()
            .find(|s| s.hotspot)
            .expect("has hotspots")
            .clip
            .clone();
        let before = detector.predict_proba(&hs).unwrap();
        let stream: Vec<(hotspot_geometry::Clip, bool)> =
            (0..20).map(|_| (hs.clone(), true)).collect();
        detector.update_online(&stream, 1e-2, 0.0).unwrap();
        let after = detector.predict_proba(&hs).unwrap();
        assert!(
            after > before,
            "online updates must raise probability: {before} -> {after}"
        );
        // Invalid ε rejected.
        assert!(detector.update_online(&stream, 1e-2, 0.7).is_err());
    }

    #[test]
    fn parameter_export_import_roundtrip() {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        let data = balanced_spec().build(&sim);
        let mut cfg = quick_config();
        cfg.mgd.max_steps = 60;
        cfg.biased.rounds = 1;
        let mut a = HotspotDetector::fit(&data.train, &cfg).unwrap();
        let blob = a.export_parameters();
        // A detector trained with a different seed...
        let mut cfg_b = cfg.clone();
        cfg_b.cnn.seed = 777;
        cfg_b.mgd.seed = 777;
        let mut b = HotspotDetector::fit(&data.train, &cfg_b).unwrap();
        let clip = &data.test.samples()[0].clip;
        // ...diverges, then matches after import.
        b.import_parameters(&blob).unwrap();
        assert_eq!(
            a.predict_proba(clip).unwrap(),
            b.predict_proba(clip).unwrap()
        );
        // Mismatched architecture rejected.
        let mut cfg_small = cfg.clone();
        cfg_small.pipeline = FeaturePipeline::new(10, 12, 4).unwrap();
        let mut small = HotspotDetector::fit(&data.train, &cfg_small).unwrap();
        assert!(small.import_parameters(&blob).is_err());
    }
}
