//! The paper's CNN architecture (Figure 2 / Table 1).

use hotspot_nn::layers::{Conv2d, Dense, Dropout, Flatten, MaxPool2, Relu};
use hotspot_nn::Network;
use serde::{Deserialize, Serialize};

/// Architecture hyper-parameters of the Table-1 CNN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CnnConfig {
    /// Spatial input dimension `n` (12 in the paper).
    pub input_grid: usize,
    /// Input channels `k` (the feature-tensor coefficient count).
    pub input_channels: usize,
    /// Feature maps of the first convolution stage (16).
    pub stage1_maps: usize,
    /// Feature maps of the second convolution stage (32).
    pub stage2_maps: usize,
    /// Hidden width of the first fully-connected layer (250).
    pub fc_width: usize,
    /// Dropout probability on the first FC layer (0.5), scaled by 100 to
    /// stay `Eq`-friendly: 50 means p = 0.5.
    pub dropout_pct: u8,
    /// Weight-initialisation seed.
    pub seed: u64,
}

impl Default for CnnConfig {
    /// The paper's exact configuration with `k = 32` input channels.
    fn default() -> Self {
        CnnConfig {
            input_grid: 12,
            input_channels: 32,
            stage1_maps: 16,
            stage2_maps: 32,
            fc_width: 250,
            dropout_pct: 50,
            seed: 2017,
        }
    }
}

impl CnnConfig {
    /// Builds the network: two convolution stages — each two 3×3 "same"
    /// convolutions with a ReLU after every convolution, closed by 2×2 max
    /// pooling — then `Flatten → FC(fc_width) → ReLU → Dropout → FC(2)`.
    ///
    /// With the default configuration the per-layer output shapes reproduce
    /// Table 1: 12×12×16, 12×12×16, 6×6×16, 6×6×32, 6×6×32, 3×3×32,
    /// 250, 2.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `dropout_pct >= 100`.
    pub fn build(&self) -> Network {
        assert!(
            self.input_grid >= 4 && self.input_channels > 0,
            "input shape too small"
        );
        assert!(
            self.stage1_maps > 0 && self.stage2_maps > 0 && self.fc_width > 0,
            "zero layer width"
        );
        assert!(self.dropout_pct < 100, "dropout must be < 100%");
        let s = self.seed;
        let mut net = Network::new();
        // Stage 1.
        net.push(Conv2d::new(self.input_channels, self.stage1_maps, 3, 1, s));
        net.push(Relu::new());
        net.push(Conv2d::new(self.stage1_maps, self.stage1_maps, 3, 1, s + 1));
        net.push(Relu::new());
        net.push(MaxPool2::new());
        // Stage 2.
        net.push(Conv2d::new(self.stage1_maps, self.stage2_maps, 3, 1, s + 2));
        net.push(Relu::new());
        net.push(Conv2d::new(self.stage2_maps, self.stage2_maps, 3, 1, s + 3));
        net.push(Relu::new());
        net.push(MaxPool2::new());
        // Dense head.
        let spatial = self.input_grid / 4;
        net.push(Flatten::new());
        net.push(Dense::new(
            self.stage2_maps * spatial * spatial,
            self.fc_width,
            s + 4,
        ));
        net.push(Relu::new());
        net.push(Dropout::new(self.dropout_pct as f32 / 100.0, s + 5));
        net.push(Dense::new(self.fc_width, 2, s + 6));
        net
    }

    /// The CHW input shape `[k, n, n]`.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![self.input_channels, self.input_grid, self.input_grid]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::Tensor;

    #[test]
    fn table1_shapes_reproduced() {
        let cfg = CnnConfig::default();
        let net = cfg.build();
        let rows = net.summary(&cfg.input_shape());
        // Pull out the shapes after each named layer of Table 1.
        let shapes: Vec<(String, Vec<usize>)> = rows;
        let find = |name: &str, nth: usize| -> Vec<usize> {
            shapes
                .iter()
                .filter(|(n, _)| n == name)
                .nth(nth)
                .map(|(_, s)| s.clone())
                .expect("layer present")
        };
        assert_eq!(find("conv", 0), vec![16, 12, 12]); // conv1-1
        assert_eq!(find("conv", 1), vec![16, 12, 12]); // conv1-2
        assert_eq!(find("maxpool", 0), vec![16, 6, 6]); // maxpooling1
        assert_eq!(find("conv", 2), vec![32, 6, 6]); // conv2-1
        assert_eq!(find("conv", 3), vec![32, 6, 6]); // conv2-2
        assert_eq!(find("maxpool", 1), vec![32, 3, 3]); // maxpooling2
        assert_eq!(find("fc", 0), vec![250]); // fc1
        assert_eq!(find("fc", 1), vec![2]); // fc2
    }

    #[test]
    fn forward_produces_two_logits() {
        let cfg = CnnConfig {
            input_channels: 4,
            ..CnnConfig::default()
        };
        let mut net = cfg.build();
        let y = net.forward(&Tensor::zeros(cfg.input_shape()), false);
        assert_eq!(y.shape(), &[2]);
    }

    #[test]
    fn parameter_count_matches_arithmetic() {
        let cfg = CnnConfig::default();
        let mut net = cfg.build();
        let expected = (16 * 32 * 9 + 16)
            + (16 * 16 * 9 + 16)
            + (32 * 16 * 9 + 32)
            + (32 * 32 * 9 + 32)
            + (288 * 250 + 250)
            + (250 * 2 + 2);
        assert_eq!(net.parameter_count(), expected);
    }

    #[test]
    fn seeded_builds_are_identical() {
        let cfg = CnnConfig::default();
        let mut a = cfg.build();
        let mut b = cfg.build();
        let x = Tensor::zeros(cfg.input_shape());
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    #[should_panic(expected = "dropout")]
    fn dropout_pct_validated() {
        let cfg = CnnConfig {
            dropout_pct: 100,
            ..CnnConfig::default()
        };
        let _ = cfg.build();
    }
}
