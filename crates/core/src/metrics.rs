//! Evaluation metrics (paper Definitions 1–3).

use hotspot_litho::simtime;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating a detector on a labelled test set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EvalResult {
    /// Hotspot detection accuracy (Definition 1): correctly-predicted
    /// hotspots / all real hotspots. This is hotspot *recall*, the metric
    /// the ICCAD-2012 contest and the paper call "Accuracy".
    pub accuracy: f64,
    /// False alarms (Definition 2): non-hotspots flagged as hotspots.
    pub false_alarms: usize,
    /// Correctly detected hotspots.
    pub true_detections: usize,
    /// Real hotspots in the test set.
    pub hotspot_total: usize,
    /// Non-hotspots in the test set.
    pub non_hotspot_total: usize,
    /// Detector evaluation time in seconds (the "CPU" column).
    pub eval_time_s: f64,
    /// Overall detection and simulation time (Definition 3): 10 s of
    /// lithography simulation per flagged clip plus evaluation time.
    pub odst_s: f64,
}

impl EvalResult {
    /// Builds a result from per-sample predictions and ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn from_predictions(predictions: &[bool], labels: &[bool], eval_time_s: f64) -> Self {
        assert_eq!(
            predictions.len(),
            labels.len(),
            "predictions/labels length mismatch"
        );
        let mut true_detections = 0usize;
        let mut false_alarms = 0usize;
        let mut hotspot_total = 0usize;
        for (&p, &l) in predictions.iter().zip(labels.iter()) {
            if l {
                hotspot_total += 1;
                if p {
                    true_detections += 1;
                }
            } else if p {
                false_alarms += 1;
            }
        }
        let non_hotspot_total = labels.len() - hotspot_total;
        let accuracy = if hotspot_total == 0 {
            1.0
        } else {
            true_detections as f64 / hotspot_total as f64
        };
        EvalResult {
            accuracy,
            false_alarms,
            true_detections,
            hotspot_total,
            non_hotspot_total,
            eval_time_s,
            odst_s: simtime::odst_seconds(true_detections, false_alarms, eval_time_s),
        }
    }

    /// Overall (both-class) classification accuracy — used for validation
    /// monitoring, not for Table 2.
    pub fn overall_accuracy(&self) -> f64 {
        let total = self.hotspot_total + self.non_hotspot_total;
        if total == 0 {
            return 1.0;
        }
        let correct = self.true_detections + (self.non_hotspot_total - self.false_alarms);
        correct as f64 / total as f64
    }

    /// False-alarm rate over the non-hotspot population.
    pub fn false_alarm_rate(&self) -> f64 {
        if self.non_hotspot_total == 0 {
            0.0
        } else {
            self.false_alarms as f64 / self.non_hotspot_total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_accuracy() {
        let labels = [true, true, true, false, false];
        let preds = [true, false, true, true, false];
        let r = EvalResult::from_predictions(&preds, &labels, 2.0);
        assert_eq!(r.true_detections, 2);
        assert_eq!(r.hotspot_total, 3);
        assert_eq!(r.false_alarms, 1);
        assert_eq!(r.non_hotspot_total, 2);
        assert!((r.accuracy - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.overall_accuracy() - 3.0 / 5.0).abs() < 1e-12);
        assert!((r.false_alarm_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn odst_accounts_for_all_flagged_clips() {
        let labels = [true, false];
        let preds = [true, true];
        let r = EvalResult::from_predictions(&preds, &labels, 5.0);
        // 2 flagged clips × 10 s + 5 s eval.
        assert!((r.odst_s - 25.0).abs() < 1e-9);
    }

    #[test]
    fn no_hotspots_means_perfect_accuracy() {
        let r = EvalResult::from_predictions(&[false, false], &[false, false], 0.0);
        assert_eq!(r.accuracy, 1.0);
        assert_eq!(r.overall_accuracy(), 1.0);
        assert_eq!(r.false_alarm_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = EvalResult::from_predictions(&[true], &[true, false], 0.0);
    }
}
