//! Multi-round training sessions over a growing dataset.
//!
//! [`TrainSession`] is the ownership core of the training stack: it holds
//! the network, the (growable) feature/label arrays, the biased-learning
//! schedule, the completed-round cursor, and any mid-round trainer state —
//! everything [`crate::biased::train_biased_resumable`] used to thread
//! through loose function arguments. One session value moves through an
//! entire multi-round run:
//!
//! - [`TrainSession::run_schedule`] executes the remaining rounds of the
//!   paper's biased-learning schedule (Algorithm 2), exactly as
//!   `train_biased_resumable` always has — that function is now a thin
//!   wrapper over a session, so resumed runs stay **bit-identical**.
//! - [`TrainSession::append`] grows the training set with newly labelled
//!   samples (validated, for the active-learning loop in
//!   [`crate::active`]).
//! - [`TrainSession::fine_tune`] runs one extra warm-start round on the
//!   grown set, continuing the same checkpoint-event stream.
//!
//! Construction never touches the network; every schedule/resume
//! validation error is reported by `run_schedule` before any training
//! step, leaving the session reusable.

use crate::biased::{BiasRound, BiasedLearningConfig, BiasedLearningReport, CheckpointEvent};
use crate::mgd::{self, MgdConfig, TrainerState};
use crate::CoreError;
use hotspot_nn::{Network, Tensor};

/// A resumable multi-round training session owning the network, the
/// training data, and the round cursor.
#[derive(Debug)]
pub struct TrainSession {
    net: Network,
    features: Vec<Tensor>,
    labels: Vec<bool>,
    config: BiasedLearningConfig,
    completed: Vec<BiasRound>,
    pending: Option<TrainerState>,
}

impl TrainSession {
    /// Wraps a network and training data into a fresh session (round
    /// cursor at zero). Validation is deferred to the training entry
    /// points, so constructing a session has no side effects.
    pub fn new(
        net: Network,
        features: Vec<Tensor>,
        labels: Vec<bool>,
        config: BiasedLearningConfig,
    ) -> Self {
        TrainSession {
            net,
            features,
            labels,
            config,
            completed: Vec::new(),
            pending: None,
        }
    }

    /// Positions the round cursor from a checkpoint's
    /// [`crate::biased::BiasedResume`]: rounds already completed, plus the
    /// interrupted round's mid-round trainer state, if any. The network
    /// must already carry the checkpointed parameters and RNG streams
    /// (see [`crate::checkpoint::Checkpoint::apply`]).
    pub fn restore(&mut self, resume: crate::biased::BiasedResume) {
        self.completed = resume.completed;
        self.pending = resume.trainer;
    }

    /// Runs the remaining rounds of the biased-learning schedule
    /// (Algorithm 2): ε = 0 at round 0, stepped by `epsilon_step` each
    /// round, `initial` trainer settings for round 0 and `fine_tune` for
    /// the rest.
    ///
    /// `hook` receives a [`CheckpointEvent::Step`] every
    /// `checkpoint_every` optimiser steps (when nonzero) and a
    /// [`CheckpointEvent::RoundEnd`] after every round. The returned
    /// report covers **all** completed rounds, including ones restored
    /// via [`TrainSession::restore`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the schedule is empty or pushes
    /// ε to 0.5 or beyond; [`CoreError::Checkpoint`] when the restored
    /// cursor disagrees with the schedule; trainer and hook errors.
    pub fn run_schedule(
        &mut self,
        checkpoint_every: usize,
        hook: &mut dyn FnMut(CheckpointEvent<'_>, &mut Network) -> Result<(), CoreError>,
    ) -> Result<BiasedLearningReport, CoreError> {
        if self.config.rounds == 0 {
            return Err(CoreError::InvalidConfig("rounds must be nonzero"));
        }
        let max_eps = self.config.epsilon_step * (self.config.rounds - 1) as f32;
        if !(0.0..0.5).contains(&max_eps) || self.config.epsilon_step < 0.0 {
            return Err(CoreError::InvalidConfig(
                "bias schedule must keep ε in [0, 0.5)",
            ));
        }
        if self.completed.len() > self.config.rounds {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint has {} completed rounds but the schedule only has {}",
                self.completed.len(),
                self.config.rounds
            )));
        }
        for (i, round) in self.completed.iter().enumerate() {
            let expected = self.config.epsilon_step * i as f32;
            if round.epsilon != expected {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint round {i} trained at ε = {} but the schedule expects {expected}",
                    round.epsilon
                )));
            }
        }
        if self.pending.is_some() && self.completed.len() == self.config.rounds {
            return Err(CoreError::Checkpoint(
                "checkpoint carries a mid-round state but every round is complete".into(),
            ));
        }
        let config = &self.config;
        let net = &mut self.net;
        let rounds = &mut self.completed;
        let pending = &mut self.pending;
        let features = &self.features;
        let labels = &self.labels;
        for i in rounds.len()..config.rounds {
            let epsilon = config.epsilon_step * i as f32;
            let cfg = if i == 0 {
                &config.initial
            } else {
                &config.fine_tune
            };
            let mid_round = pending.take();
            let report = mgd::train_resumable(
                net,
                features,
                labels,
                epsilon,
                cfg,
                mid_round.as_ref(),
                checkpoint_every,
                &mut |state, net| {
                    hook(
                        CheckpointEvent::Step {
                            completed: rounds,
                            state,
                        },
                        net,
                    )
                },
            )?;
            rounds.push(BiasRound { epsilon, report });
            hook(CheckpointEvent::RoundEnd { completed: rounds }, net)?;
        }
        Ok(BiasedLearningReport {
            rounds: rounds.clone(),
        })
    }

    /// Grows the training set with newly labelled samples, validating
    /// label count and feature dimension (used by the per-round
    /// fine-tune step of the active-learning loop).
    ///
    /// On error, the session is left unchanged.
    ///
    /// # Errors
    ///
    /// [`CoreError::Dataset`] on a feature/label count mismatch or a
    /// feature whose dimension differs from the session's.
    pub fn append(&mut self, features: Vec<Tensor>, labels: &[bool]) -> Result<(), CoreError> {
        if features.len() != labels.len() {
            return Err(CoreError::Dataset(format!(
                "{} features but {} labels",
                features.len(),
                labels.len()
            )));
        }
        let dim = self
            .features
            .first()
            .or_else(|| features.first())
            .map(Tensor::len);
        if let Some(dim) = dim {
            for (i, f) in features.iter().enumerate() {
                if f.len() != dim {
                    return Err(CoreError::Dataset(format!(
                        "appended feature {i} has {} values but the session trains on {dim}",
                        f.len()
                    )));
                }
            }
        }
        self.features.extend(features);
        self.labels.extend(labels.iter().copied());
        Ok(())
    }

    /// Runs one warm-start round at bias `epsilon` on the current
    /// (possibly grown) training set, continuing the session's
    /// checkpoint-event stream and appending the round to the completed
    /// trajectory. Consumes any pending mid-round trainer state (a
    /// resumed interrupted fine-tune).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for ε outside `[0, 0.5)`; trainer and
    /// hook errors.
    pub fn fine_tune(
        &mut self,
        epsilon: f32,
        cfg: &MgdConfig,
        checkpoint_every: usize,
        hook: &mut dyn FnMut(CheckpointEvent<'_>, &mut Network) -> Result<(), CoreError>,
    ) -> Result<&BiasRound, CoreError> {
        if !(0.0..0.5).contains(&epsilon) {
            return Err(CoreError::InvalidConfig("ε must be in [0, 0.5)"));
        }
        let net = &mut self.net;
        let rounds = &mut self.completed;
        let mid_round = self.pending.take();
        let report = mgd::train_resumable(
            net,
            &self.features,
            &self.labels,
            epsilon,
            cfg,
            mid_round.as_ref(),
            checkpoint_every,
            &mut |state, net| {
                hook(
                    CheckpointEvent::Step {
                        completed: rounds,
                        state,
                    },
                    net,
                )
            },
        )?;
        rounds.push(BiasRound { epsilon, report });
        hook(CheckpointEvent::RoundEnd { completed: rounds }, net)?;
        match rounds.last() {
            Some(round) => Ok(round),
            None => unreachable!("a round was just pushed"),
        }
    }

    /// The biased-learning schedule this session runs.
    pub fn config(&self) -> &BiasedLearningConfig {
        &self.config
    }

    /// All completed rounds, in execution order.
    pub fn completed(&self) -> &[BiasRound] {
        &self.completed
    }

    /// Whether a mid-round trainer state is pending consumption.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Number of training samples currently in the session.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the session holds no training samples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// The full training trajectory as a report.
    pub fn report(&self) -> BiasedLearningReport {
        BiasedLearningReport {
            rounds: self.completed.clone(),
        }
    }

    /// The network being trained.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Mutable access to the network being trained.
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Simultaneous access to the network and the completed rounds, as
    /// [`crate::checkpoint::Checkpoint::new`] needs both at once.
    pub fn snapshot(&mut self) -> (&mut Network, &[BiasRound]) {
        (&mut self.net, &self.completed)
    }

    /// Consumes the session, yielding the trained network.
    pub fn into_network(self) -> Network {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let s: f32 = v.iter().sum();
            features.push(Tensor::from_vec(vec![4], v));
            labels.push(s > 0.0);
        }
        (features, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 8, seed));
        net.push(Relu::new());
        net.push(Dense::new(8, 2, seed + 1));
        net
    }

    fn quick_cfg() -> BiasedLearningConfig {
        let initial = MgdConfig {
            lr: 0.05,
            alpha: 0.7,
            decay_step: 100,
            batch_size: 8,
            max_steps: 120,
            val_interval: 40,
            patience: 10,
            val_fraction: 0.25,
            seed: 3,
            balanced_sampling: true,
            threads: 1,
        };
        let fine_tune = MgdConfig {
            max_steps: 60,
            lr: 0.02,
            ..initial.clone()
        };
        BiasedLearningConfig {
            epsilon_step: 0.1,
            rounds: 2,
            initial,
            fine_tune,
        }
    }

    #[test]
    fn schedule_matches_train_biased() {
        let (features, labels) = toy_data(80, 2);
        let mut reference = toy_net(7);
        let ref_report =
            crate::biased::train_biased(&mut reference, &features, &labels, &quick_cfg()).unwrap();

        let mut session = TrainSession::new(toy_net(7), features.clone(), labels, quick_cfg());
        let report = session.run_schedule(0, &mut |_, _| Ok(())).unwrap();
        assert_eq!(report.rounds.len(), ref_report.rounds.len());
        let x = &features[0];
        assert_eq!(
            session.network().forward_inference(x),
            reference.forward_inference(x),
            "session schedule must be bit-identical to train_biased"
        );
        assert_eq!(session.completed().len(), 2);
        assert!(!session.has_pending());
    }

    #[test]
    fn append_validates_and_grows() {
        let (features, labels) = toy_data(40, 4);
        let mut session = TrainSession::new(toy_net(1), features, labels, quick_cfg());
        assert_eq!(session.len(), 40);
        // Count mismatch rejected, session unchanged.
        let extra = vec![Tensor::from_vec(vec![4], vec![0.0; 4])];
        assert!(matches!(
            session.append(extra.clone(), &[true, false]),
            Err(CoreError::Dataset(_))
        ));
        assert_eq!(session.len(), 40);
        // Dimension mismatch rejected.
        let wrong = vec![Tensor::from_vec(vec![3], vec![0.0; 3])];
        assert!(matches!(
            session.append(wrong, &[true]),
            Err(CoreError::Dataset(_))
        ));
        assert_eq!(session.len(), 40);
        // Valid growth.
        session.append(extra, &[true]).unwrap();
        assert_eq!(session.len(), 41);
    }

    #[test]
    fn fine_tune_extends_the_trajectory() {
        let (features, labels) = toy_data(60, 5);
        let mut session = TrainSession::new(toy_net(9), features, labels, quick_cfg());
        session.run_schedule(0, &mut |_, _| Ok(())).unwrap();
        let (more_f, more_l) = toy_data(20, 6);
        session.append(more_f, &more_l).unwrap();
        let cfg = quick_cfg().fine_tune;
        let round = session.fine_tune(0.1, &cfg, 0, &mut |_, _| Ok(())).unwrap();
        assert_eq!(round.epsilon, 0.1);
        assert_eq!(session.completed().len(), 3);
        assert_eq!(session.report().rounds.len(), 3);
        // Invalid ε rejected without touching the cursor.
        assert!(session.fine_tune(0.6, &cfg, 0, &mut |_, _| Ok(())).is_err());
        assert_eq!(session.completed().len(), 3);
    }

    #[test]
    fn empty_schedule_rejected_before_training() {
        let (features, labels) = toy_data(20, 8);
        let mut cfg = quick_cfg();
        cfg.rounds = 0;
        let mut session = TrainSession::new(toy_net(3), features, labels, cfg);
        assert!(session.run_schedule(0, &mut |_, _| Ok(())).is_err());
    }
}
