//! Biased learning (paper Algorithm 2 and Theorem 1).

use crate::mgd::{MgdConfig, TrainReport, TrainerState};
use crate::session::TrainSession;
use crate::CoreError;
use hotspot_nn::{Network, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the biased-learning loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasedLearningConfig {
    /// Bias step δε added each round.
    pub epsilon_step: f32,
    /// Number of fine-tuning rounds t (the paper uses t = 4 with
    /// δε = 0.1, i.e. ε ∈ {0, 0.1, 0.2, 0.3}).
    pub rounds: usize,
    /// Trainer settings for the initial ε = 0 training.
    pub initial: MgdConfig,
    /// Trainer settings for each fine-tuning round (typically shorter).
    pub fine_tune: MgdConfig,
}

impl Default for BiasedLearningConfig {
    /// The paper's schedule: δε = 0.1, t = 4 (initial round plus three
    /// fine-tunes), fine-tuning at a quarter of the initial step budget.
    fn default() -> Self {
        let initial = MgdConfig::default();
        let fine_tune = MgdConfig {
            max_steps: initial.max_steps / 4,
            lr: initial.lr * 0.5,
            ..initial.clone()
        };
        BiasedLearningConfig {
            epsilon_step: 0.1,
            rounds: 4,
            initial,
            fine_tune,
        }
    }
}

/// One round of the biased-learning trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasRound {
    /// The bias ε this round trained towards.
    pub epsilon: f32,
    /// The trainer's report for the round.
    pub report: TrainReport,
}

/// Outcome of the full biased-learning procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasedLearningReport {
    /// Per-round reports, ε ascending (round 0 is the unbiased model).
    pub rounds: Vec<BiasRound>,
}

impl BiasedLearningReport {
    /// The final bias the model was trained with.
    pub fn final_epsilon(&self) -> f32 {
        self.rounds.last().map(|r| r.epsilon).unwrap_or(0.0)
    }

    /// Total training time across rounds.
    pub fn total_train_time_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.report.train_time_s).sum()
    }
}

/// Runs Algorithm 2: normal MGD at ε = 0, then `rounds - 1` fine-tuning
/// passes with ε increased by `epsilon_step` each time, the hotspot ground
/// truth fixed at `[0, 1]` throughout.
///
/// The network is trained in place; the returned report records every
/// round.
///
/// # Errors
///
/// Propagates trainer errors and returns [`CoreError::InvalidConfig`] when
/// the schedule would push ε to 0.5 or beyond (outside Theorem 1's validity
/// range) or `rounds == 0`.
pub fn train_biased(
    net: &mut Network,
    features: &[Tensor],
    labels: &[bool],
    config: &BiasedLearningConfig,
) -> Result<BiasedLearningReport, CoreError> {
    train_biased_resumable(net, features, labels, config, None, 0, &mut |_, _| Ok(()))
}

/// Where in the biased-learning loop a checkpointable moment occurred.
#[derive(Debug)]
pub enum CheckpointEvent<'a> {
    /// Periodic mid-round snapshot, every `checkpoint_every` optimiser
    /// steps.
    Step {
        /// Rounds fully completed before the in-flight one.
        completed: &'a [BiasRound],
        /// Full mid-round trainer state.
        state: &'a TrainerState,
    },
    /// A training round just finished (fires for every round, regardless
    /// of the periodic cadence).
    RoundEnd {
        /// All completed rounds, including the one that just ended.
        completed: &'a [BiasRound],
    },
}

/// Where to pick the biased-learning loop back up.
///
/// `completed` holds the rounds that already finished; `trainer`, when
/// present, is the mid-round state of the round that was interrupted (its
/// ε must be the next one in the schedule). The network passed to
/// [`train_biased_resumable`] must already carry the checkpointed
/// parameters and RNG states when `trainer` is `None` (round boundary);
/// with a mid-round state the trainer restores them itself.
#[derive(Debug, Clone, PartialEq)]
pub struct BiasedResume {
    /// Rounds already completed, ε ascending.
    pub completed: Vec<BiasRound>,
    /// Mid-round trainer state of the interrupted round, if any.
    pub trainer: Option<TrainerState>,
}

/// [`train_biased`] with crash-safe checkpointing and resume support.
///
/// `hook` receives a [`CheckpointEvent::Step`] every `checkpoint_every`
/// optimiser steps (when nonzero) and a [`CheckpointEvent::RoundEnd`]
/// after every round; an error from the hook aborts training. Resuming an
/// interrupted run via `resume` reproduces **bit-identical** final weights
/// to the uninterrupted run, because every RNG stream is part of the
/// captured state (see [`mgd::train_resumable`]).
///
/// This is a thin wrapper that moves the network through a
/// [`TrainSession`] for the duration of the run; multi-round callers that
/// grow the dataset between rounds (the active-learning loop) drive a
/// session directly.
///
/// # Errors
///
/// Everything [`train_biased`] rejects, plus [`CoreError::Checkpoint`]
/// when the resume state disagrees with the configured schedule, and any
/// error returned by the hook.
pub fn train_biased_resumable(
    net: &mut Network,
    features: &[Tensor],
    labels: &[bool],
    config: &BiasedLearningConfig,
    resume: Option<BiasedResume>,
    checkpoint_every: usize,
    hook: &mut dyn FnMut(CheckpointEvent<'_>, &mut Network) -> Result<(), CoreError>,
) -> Result<BiasedLearningReport, CoreError> {
    let owned = std::mem::replace(net, Network::new());
    let mut session = TrainSession::new(owned, features.to_vec(), labels.to_vec(), config.clone());
    if let Some(r) = resume {
        session.restore(r);
    }
    let result = session.run_schedule(checkpoint_every, hook);
    *net = session.into_network();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgd::{self, predict_hotspot_prob};
    use hotspot_nn::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let s: f32 = v.iter().sum();
            features.push(Tensor::from_vec(vec![4], v));
            // Noisy boundary makes a hotspot-recall / false-alarm trade-off
            // possible.
            labels.push(s + rng.gen_range(-0.4f32..0.4) > 0.0);
        }
        (features, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 12, seed));
        net.push(Relu::new());
        net.push(Dense::new(12, 2, seed + 1));
        net
    }

    fn quick_cfg() -> BiasedLearningConfig {
        let initial = MgdConfig {
            lr: 0.05,
            alpha: 0.7,
            decay_step: 200,
            batch_size: 16,
            max_steps: 600,
            val_interval: 100,
            patience: 3,
            val_fraction: 0.25,
            seed: 11,
            balanced_sampling: true,
            threads: 1,
        };
        let fine_tune = MgdConfig {
            max_steps: 200,
            lr: 0.02,
            ..initial.clone()
        };
        BiasedLearningConfig {
            epsilon_step: 0.1,
            rounds: 4,
            initial,
            fine_tune,
        }
    }

    #[test]
    fn runs_the_paper_schedule() {
        let (features, labels) = toy_data(240, 8);
        let mut net = toy_net(9);
        let report = train_biased(&mut net, &features, &labels, &quick_cfg()).unwrap();
        assert_eq!(report.rounds.len(), 4);
        let eps: Vec<f32> = report.rounds.iter().map(|r| r.epsilon).collect();
        assert_eq!(
            eps,
            [0.0, 0.1, 0.2, 0.30000001]
                .iter()
                .zip(&eps)
                .map(|(_, &e)| e)
                .collect::<Vec<_>>()
        );
        assert!((report.final_epsilon() - 0.3).abs() < 1e-5);
        assert!(report.total_train_time_s() > 0.0);
    }

    #[test]
    fn bias_increases_hotspot_recall() {
        // The core claim (Theorem 1 direction): after biased fine-tuning,
        // hotspot recall is at least that of the unbiased model.
        let (features, labels) = toy_data(400, 10);
        let recall = |net: &mut Network| {
            let mut hit = 0usize;
            let mut total = 0usize;
            for (f, &l) in features.iter().zip(labels.iter()) {
                if l {
                    total += 1;
                    if predict_hotspot_prob(net, f) > 0.5 {
                        hit += 1;
                    }
                }
            }
            hit as f64 / total as f64
        };
        let cfg = quick_cfg();
        let mut unbiased = toy_net(12);
        mgd::train(&mut unbiased, &features, &labels, 0.0, &cfg.initial).unwrap();
        let r0 = recall(&mut unbiased);
        let mut biased = toy_net(12);
        train_biased(&mut biased, &features, &labels, &cfg).unwrap();
        let r1 = recall(&mut biased);
        assert!(
            r1 >= r0 - 0.02,
            "biased recall {r1} should not fall below unbiased {r0}"
        );
    }

    #[test]
    fn resumed_biased_run_matches_uninterrupted() {
        use crate::checkpoint::Checkpoint;
        use hotspot_nn::serialize::ParameterBlob;

        let dropnet = || {
            let mut net = Network::new();
            net.push(Dense::new(4, 12, 5));
            net.push(Relu::new());
            net.push(hotspot_nn::layers::Dropout::new(0.3, 6));
            net.push(Dense::new(12, 2, 7));
            net
        };
        let (features, labels) = toy_data(160, 17);
        let mut cfg = quick_cfg();
        cfg.initial.max_steps = 200;
        cfg.initial.patience = 50;
        cfg.fine_tune.max_steps = 120;
        cfg.fine_tune.patience = 50;

        let mut reference = dropnet();
        let ref_report = train_biased(&mut reference, &features, &labels, &cfg).unwrap();

        // Interrupted run: persist real checkpoints every 50 steps, crash
        // right after the first mid-round snapshot of the ε = 0.1 round.
        let mut latest: Option<Checkpoint> = None;
        let mut first = dropnet();
        let crash = train_biased_resumable(
            &mut first,
            &features,
            &labels,
            &cfg,
            None,
            50,
            &mut |event, net| {
                match event {
                    CheckpointEvent::Step { completed, state } => {
                        latest = Some(Checkpoint::new(
                            cfg.initial.seed,
                            cfg.initial.threads,
                            "toy".into(),
                            net,
                            completed,
                            Some(state),
                        ));
                        if completed.len() == 1 && state.steps >= 50 {
                            return Err(CoreError::Checkpoint("simulated crash".into()));
                        }
                    }
                    CheckpointEvent::RoundEnd { completed } => {
                        latest = Some(Checkpoint::new(
                            cfg.initial.seed,
                            cfg.initial.threads,
                            "toy".into(),
                            net,
                            completed,
                            None,
                        ));
                    }
                }
                Ok(())
            },
        );
        assert!(crash.is_err());

        // Round-trip the checkpoint through its wire format, then resume
        // into a fresh network.
        let ckpt = Checkpoint::from_bytes(&latest.unwrap().to_bytes()).unwrap();
        ckpt.validate_run(cfg.initial.seed, cfg.initial.threads, "toy")
            .unwrap();
        let mut resumed_net = dropnet();
        let resume = ckpt.apply(&mut resumed_net).unwrap();
        assert_eq!(resume.completed.len(), 1);
        let report = train_biased_resumable(
            &mut resumed_net,
            &features,
            &labels,
            &cfg,
            Some(resume),
            0,
            &mut |_, _| Ok(()),
        )
        .unwrap();

        assert_eq!(report.rounds.len(), ref_report.rounds.len());
        for (a, b) in report.rounds.iter().zip(&ref_report.rounds) {
            assert_eq!(a.epsilon, b.epsilon);
            assert_eq!(a.report.steps, b.report.steps);
            assert_eq!(a.report.best_val_accuracy, b.report.best_val_accuracy);
        }
        assert_eq!(
            ParameterBlob::from_network(&mut resumed_net),
            ParameterBlob::from_network(&mut reference)
        );

        // A checkpoint disagreeing with the schedule is rejected.
        let mut skewed = ckpt.clone();
        skewed.completed[0].epsilon = 0.05;
        let bad_resume = skewed.apply(&mut dropnet()).unwrap();
        assert!(train_biased_resumable(
            &mut dropnet(),
            &features,
            &labels,
            &cfg,
            Some(bad_resume),
            0,
            &mut |_, _| Ok(())
        )
        .is_err());
    }

    #[test]
    fn rejects_invalid_schedules() {
        let (features, labels) = toy_data(40, 1);
        let mut net = toy_net(2);
        let mut cfg = quick_cfg();
        cfg.rounds = 0;
        assert!(train_biased(&mut net, &features, &labels, &cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.epsilon_step = 0.2;
        cfg.rounds = 4; // ε reaches 0.6 ≥ 0.5
        assert!(train_biased(&mut net, &features, &labels, &cfg).is_err());
    }

    #[test]
    fn single_round_is_plain_mgd() {
        let (features, labels) = toy_data(100, 3);
        let cfg = BiasedLearningConfig {
            rounds: 1,
            ..quick_cfg()
        };
        let mut a = toy_net(4);
        let ra = train_biased(&mut a, &features, &labels, &cfg).unwrap();
        assert_eq!(ra.rounds.len(), 1);
        assert_eq!(ra.rounds[0].epsilon, 0.0);
        let mut b = toy_net(4);
        mgd::train(&mut b, &features, &labels, 0.0, &cfg.initial).unwrap();
        let x = &features[0];
        assert_eq!(a.forward(x, false), b.forward(x, false));
    }
}
