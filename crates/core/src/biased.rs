//! Biased learning (paper Algorithm 2 and Theorem 1).

use crate::mgd::{self, MgdConfig, TrainReport};
use crate::CoreError;
use hotspot_nn::{Network, Tensor};
use serde::{Deserialize, Serialize};

/// Configuration of the biased-learning loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasedLearningConfig {
    /// Bias step δε added each round.
    pub epsilon_step: f32,
    /// Number of fine-tuning rounds t (the paper uses t = 4 with
    /// δε = 0.1, i.e. ε ∈ {0, 0.1, 0.2, 0.3}).
    pub rounds: usize,
    /// Trainer settings for the initial ε = 0 training.
    pub initial: MgdConfig,
    /// Trainer settings for each fine-tuning round (typically shorter).
    pub fine_tune: MgdConfig,
}

impl Default for BiasedLearningConfig {
    /// The paper's schedule: δε = 0.1, t = 4 (initial round plus three
    /// fine-tunes), fine-tuning at a quarter of the initial step budget.
    fn default() -> Self {
        let initial = MgdConfig::default();
        let fine_tune = MgdConfig {
            max_steps: initial.max_steps / 4,
            lr: initial.lr * 0.5,
            ..initial.clone()
        };
        BiasedLearningConfig {
            epsilon_step: 0.1,
            rounds: 4,
            initial,
            fine_tune,
        }
    }
}

/// One round of the biased-learning trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasRound {
    /// The bias ε this round trained towards.
    pub epsilon: f32,
    /// The trainer's report for the round.
    pub report: TrainReport,
}

/// Outcome of the full biased-learning procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BiasedLearningReport {
    /// Per-round reports, ε ascending (round 0 is the unbiased model).
    pub rounds: Vec<BiasRound>,
}

impl BiasedLearningReport {
    /// The final bias the model was trained with.
    pub fn final_epsilon(&self) -> f32 {
        self.rounds.last().map(|r| r.epsilon).unwrap_or(0.0)
    }

    /// Total training time across rounds.
    pub fn total_train_time_s(&self) -> f64 {
        self.rounds.iter().map(|r| r.report.train_time_s).sum()
    }
}

/// Runs Algorithm 2: normal MGD at ε = 0, then `rounds - 1` fine-tuning
/// passes with ε increased by `epsilon_step` each time, the hotspot ground
/// truth fixed at `[0, 1]` throughout.
///
/// The network is trained in place; the returned report records every
/// round.
///
/// # Errors
///
/// Propagates trainer errors and returns [`CoreError::InvalidConfig`] when
/// the schedule would push ε to 0.5 or beyond (outside Theorem 1's validity
/// range) or `rounds == 0`.
pub fn train_biased(
    net: &mut Network,
    features: &[Tensor],
    labels: &[bool],
    config: &BiasedLearningConfig,
) -> Result<BiasedLearningReport, CoreError> {
    if config.rounds == 0 {
        return Err(CoreError::InvalidConfig("rounds must be nonzero"));
    }
    let max_eps = config.epsilon_step * (config.rounds - 1) as f32;
    if !(0.0..0.5).contains(&max_eps) || config.epsilon_step < 0.0 {
        return Err(CoreError::InvalidConfig(
            "bias schedule must keep ε in [0, 0.5)",
        ));
    }
    let mut rounds = Vec::with_capacity(config.rounds);
    for i in 0..config.rounds {
        let epsilon = config.epsilon_step * i as f32;
        let cfg = if i == 0 {
            &config.initial
        } else {
            &config.fine_tune
        };
        let report = mgd::train(net, features, labels, epsilon, cfg)?;
        rounds.push(BiasRound { epsilon, report });
    }
    Ok(BiasedLearningReport { rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mgd::predict_hotspot_prob;
    use hotspot_nn::layers::{Dense, Relu};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> = (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let s: f32 = v.iter().sum();
            features.push(Tensor::from_vec(vec![4], v));
            // Noisy boundary makes a hotspot-recall / false-alarm trade-off
            // possible.
            labels.push(s + rng.gen_range(-0.4f32..0.4) > 0.0);
        }
        (features, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 12, seed));
        net.push(Relu::new());
        net.push(Dense::new(12, 2, seed + 1));
        net
    }

    fn quick_cfg() -> BiasedLearningConfig {
        let initial = MgdConfig {
            lr: 0.05,
            alpha: 0.7,
            decay_step: 200,
            batch_size: 16,
            max_steps: 600,
            val_interval: 100,
            patience: 3,
            val_fraction: 0.25,
            seed: 11,
            balanced_sampling: true,
            threads: 1,
        };
        let fine_tune = MgdConfig {
            max_steps: 200,
            lr: 0.02,
            ..initial.clone()
        };
        BiasedLearningConfig {
            epsilon_step: 0.1,
            rounds: 4,
            initial,
            fine_tune,
        }
    }

    #[test]
    fn runs_the_paper_schedule() {
        let (features, labels) = toy_data(240, 8);
        let mut net = toy_net(9);
        let report = train_biased(&mut net, &features, &labels, &quick_cfg()).unwrap();
        assert_eq!(report.rounds.len(), 4);
        let eps: Vec<f32> = report.rounds.iter().map(|r| r.epsilon).collect();
        assert_eq!(
            eps,
            [0.0, 0.1, 0.2, 0.30000001]
                .iter()
                .zip(&eps)
                .map(|(_, &e)| e)
                .collect::<Vec<_>>()
        );
        assert!((report.final_epsilon() - 0.3).abs() < 1e-5);
        assert!(report.total_train_time_s() > 0.0);
    }

    #[test]
    fn bias_increases_hotspot_recall() {
        // The core claim (Theorem 1 direction): after biased fine-tuning,
        // hotspot recall is at least that of the unbiased model.
        let (features, labels) = toy_data(400, 10);
        let recall = |net: &mut Network| {
            let mut hit = 0usize;
            let mut total = 0usize;
            for (f, &l) in features.iter().zip(labels.iter()) {
                if l {
                    total += 1;
                    if predict_hotspot_prob(net, f) > 0.5 {
                        hit += 1;
                    }
                }
            }
            hit as f64 / total as f64
        };
        let cfg = quick_cfg();
        let mut unbiased = toy_net(12);
        mgd::train(&mut unbiased, &features, &labels, 0.0, &cfg.initial).unwrap();
        let r0 = recall(&mut unbiased);
        let mut biased = toy_net(12);
        train_biased(&mut biased, &features, &labels, &cfg).unwrap();
        let r1 = recall(&mut biased);
        assert!(
            r1 >= r0 - 0.02,
            "biased recall {r1} should not fall below unbiased {r0}"
        );
    }

    #[test]
    fn rejects_invalid_schedules() {
        let (features, labels) = toy_data(40, 1);
        let mut net = toy_net(2);
        let mut cfg = quick_cfg();
        cfg.rounds = 0;
        assert!(train_biased(&mut net, &features, &labels, &cfg).is_err());
        let mut cfg = quick_cfg();
        cfg.epsilon_step = 0.2;
        cfg.rounds = 4; // ε reaches 0.6 ≥ 0.5
        assert!(train_biased(&mut net, &features, &labels, &cfg).is_err());
    }

    #[test]
    fn single_round_is_plain_mgd() {
        let (features, labels) = toy_data(100, 3);
        let cfg = BiasedLearningConfig {
            rounds: 1,
            ..quick_cfg()
        };
        let mut a = toy_net(4);
        let ra = train_biased(&mut a, &features, &labels, &cfg).unwrap();
        assert_eq!(ra.rounds.len(), 1);
        assert_eq!(ra.rounds[0].epsilon, 0.0);
        let mut b = toy_net(4);
        mgd::train(&mut b, &features, &labels, 0.0, &cfg.initial).unwrap();
        let x = &features[0];
        assert_eq!(a.forward(x, false), b.forward(x, false));
    }
}
