//! Full-layout sliding-window scanning with block-DCT reuse.
//!
//! The paper classifies isolated 1200×1200 nm clips; deployment scans a
//! *layout* — a region many windows wide — by sliding that window on a
//! stride grid and scoring every position. Done naively, each window is
//! re-rasterised and re-transformed from scratch even though adjacent
//! windows share most of their area. This module exploits the structure of
//! the feature tensor instead: the tensor is built from per-block DCT
//! coefficients on a fixed block grid, so when the scan stride is a
//! multiple of the block size, every window's blocks land on one shared
//! *layout-global* block lattice. The layout is rasterised once, each
//! lattice block is transformed once ([`hotspot_dct::BlockDctPlan`]), and
//! overlapping windows assemble their tensors from the shared cache — at a
//! dense stride of one block, this cuts DCT work per window from `n × n`
//! blocks to roughly `n`.
//!
//! The cache is **bit-exact**: rasterisation accumulates per-pixel coverage
//! only from shapes that actually touch a pixel (in insertion order), so a
//! pixel-aligned crop of the full-layout raster equals the raster of the
//! extracted clip, and [`hotspot_dct::BlockDctPlan::coefficients_for`]
//! replays exactly the per-block arithmetic of whole-image extraction.
//! Scan scores are therefore bit-identical to extracting each window with
//! [`hotspot_geometry::Clip::extract_window`] and scoring it through
//! [`HotspotDetector::predict_batch`] — a property pinned by a property
//! test at the workspace root. Windows whose position does not align with
//! the block lattice fall back to computing their blocks directly from the
//! shared raster (still rasterising only once, but without coefficient
//! reuse).
//!
//! The scan itself is **tiled**: the window-row grid is split into
//! horizontal bands, one worker thread per band (see
//! [`crate::Parallelism`]), and each worker owns its raster strip, its
//! block-DCT cache shard and its scoring workspace. Band results are
//! deterministic and thread-count-independent — scores are bit-identical
//! per window, regions merge globally after all bands join, and cache
//! statistics are reconstructed to match a single shared cache exactly.
//!
//! Optionally the scan runs as a **two-stage cascade**
//! ([`ScanConfig::with_cascade`]): a calibrated density/AdaBoost
//! prefilter ([`CascadePrefilter`]) scores every window's raster crop
//! first, and only windows whose signed margin clears the calibrated
//! threshold are forwarded to the CNN. Cleared windows record their
//! margin, score `0.0` and `hotspot: false`; forwarded windows are
//! compacted into full scoring blocks and their CNN scores are
//! bit-identical to the non-cascade scan (batched scoring is
//! composition-independent, so compaction never changes a score).
//!
//! Flagged windows are merged into hotspot *regions* by
//! connected-component clustering: two positive windows belong to the same
//! region when their windows overlap. A [`ScanReport`] carries the
//! per-window scores (with the stage that decided each window), the
//! merged regions, cache statistics, CNN-evaluation counts, the resolved
//! thread count, per-phase wall times and throughput, and serialises
//! itself to JSON for downstream tooling.

use crate::api::{self, ModelProvenance};
use crate::cascade::{prefilter_features, CascadePrefilter};
use crate::detector::HotspotDetector;
use crate::CoreError;
use hotspot_dct::BlockDctPlan;
use hotspot_features::density_feature;
use hotspot_geometry::{raster, Clip, Grid, Point, Rect};
use hotspot_nn::engine::{ShapePlan, Workspace};
use hotspot_nn::{loss, Network};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Sliding-window scan parameters.
///
/// Built with [`ScanConfig::new`] plus builder-style refinement; every
/// setter validates, so a constructed config is internally consistent
/// (detector-dependent constraints — resolution and block-grid
/// divisibility — are checked by [`HotspotDetector::scan`]).
///
/// # Examples
///
/// ```
/// use hotspot_core::ScanConfig;
///
/// # fn main() -> Result<(), hotspot_core::CoreError> {
/// let config = ScanConfig::new(600)?.with_threshold(0.7)?;
/// assert_eq!(config.window_nm(), 1200); // the paper's clip size
/// assert!(ScanConfig::new(0).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScanConfig {
    stride_nm: i64,
    window_nm: i64,
    threshold: f32,
    score_block: Option<usize>,
    cascade: Option<CascadePrefilter>,
    provenance: Option<ModelProvenance>,
}

impl ScanConfig {
    /// A scan advancing `stride_nm` per step with the paper's 1200 nm
    /// window and a 0.5 decision threshold.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive stride.
    pub fn new(stride_nm: i64) -> Result<Self, CoreError> {
        if stride_nm <= 0 {
            return Err(CoreError::InvalidConfig("scan stride must be positive"));
        }
        Ok(ScanConfig {
            stride_nm,
            window_nm: 1200,
            threshold: 0.5,
            score_block: None,
            cascade: None,
            provenance: None,
        })
    }

    /// Overrides the window side length.
    ///
    /// # Errors
    ///
    /// Rejects a non-positive window.
    pub fn with_window_nm(mut self, window_nm: i64) -> Result<Self, CoreError> {
        if window_nm <= 0 {
            return Err(CoreError::InvalidConfig("scan window must be positive"));
        }
        self.window_nm = window_nm;
        Ok(self)
    }

    /// Overrides the hotspot decision threshold (a window is flagged when
    /// its score is strictly greater).
    ///
    /// # Errors
    ///
    /// Rejects thresholds outside `[0, 1]`.
    pub fn with_threshold(mut self, threshold: f32) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&threshold) {
            return Err(CoreError::InvalidConfig("scan threshold must be in [0, 1]"));
        }
        self.threshold = threshold;
        Ok(self)
    }

    /// Overrides how many windows are scored per batched GEMM pass. By
    /// default the block size is chosen from the execution plan's arena
    /// footprint ([`hotspot_nn::engine::ShapePlan::suggested_batch`]);
    /// scores are bit-identical for every block size, so this knob trades
    /// only memory against GEMM efficiency.
    ///
    /// # Errors
    ///
    /// Rejects a zero block size.
    pub fn with_score_block(mut self, block: usize) -> Result<Self, CoreError> {
        if block == 0 {
            return Err(CoreError::InvalidConfig("scan score block must be nonzero"));
        }
        self.score_block = Some(block);
        Ok(self)
    }

    /// Enables two-stage cascade scanning: every window is margin-scored
    /// by `prefilter` first, and only passing windows reach the CNN.
    /// Cleared windows keep score `0.0` and record their margin. The
    /// prefilter's density grid must divide the scan window in pixels
    /// (checked by [`HotspotDetector::scan`], which knows the raster
    /// resolution).
    #[must_use]
    pub fn with_cascade(mut self, prefilter: CascadePrefilter) -> Self {
        self.cascade = Some(prefilter);
        self
    }

    /// Removes a previously configured cascade prefilter.
    #[must_use]
    pub fn without_cascade(mut self) -> Self {
        self.cascade = None;
        self
    }

    /// Stamps the scan with the provenance of the model that will run
    /// it, so the report names the exact weights behind every score.
    #[must_use]
    pub fn with_provenance(mut self, provenance: ModelProvenance) -> Self {
        self.provenance = Some(provenance);
        self
    }

    /// The configured provenance stamp, if any.
    pub fn provenance(&self) -> Option<ModelProvenance> {
        self.provenance
    }

    /// The configured cascade prefilter, if any.
    pub fn cascade(&self) -> Option<&CascadePrefilter> {
        self.cascade.as_ref()
    }

    /// Step between window positions, nm.
    #[inline]
    pub fn stride_nm(&self) -> i64 {
        self.stride_nm
    }

    /// Window side length, nm.
    #[inline]
    pub fn window_nm(&self) -> i64 {
        self.window_nm
    }

    /// Decision threshold.
    #[inline]
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Configured scoring block size (`None` defers to the plan's
    /// suggestion).
    #[inline]
    pub fn score_block(&self) -> Option<usize> {
        self.score_block
    }
}

/// Block-DCT cache accounting for one scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Blocks transformed with a fresh DCT.
    pub computed: usize,
    /// Block lookups served from the shared cache.
    pub hits: usize,
}

impl CacheStats {
    /// Total block fetches (`computed + hits`).
    #[inline]
    pub fn lookups(&self) -> usize {
        self.computed + self.hits
    }

    /// Fraction of block fetches served from the cache (0 when no blocks
    /// were fetched).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// Which cascade stage produced a window's final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStage {
    /// The prefilter cleared the window; the CNN never saw it.
    Prefilter,
    /// The CNN scored the window (always the case without a cascade).
    Cnn,
}

impl ScanStage {
    /// Stable lower-case name used in the JSON report.
    pub fn as_str(self) -> &'static str {
        match self {
            ScanStage::Prefilter => "prefilter",
            ScanStage::Cnn => "cnn",
        }
    }
}

/// One scored window position (layout-frame nm coordinates of the window's
/// low corner).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowScore {
    /// Window low-corner x, nm.
    pub x_nm: i64,
    /// Window low-corner y, nm.
    pub y_nm: i64,
    /// Predicted hotspot probability (`0.0` for prefilter-cleared
    /// windows, which the CNN never scored).
    pub score: f32,
    /// Whether the score exceeded the scan threshold (always `false` for
    /// prefilter-cleared windows).
    pub hotspot: bool,
    /// The prefilter's signed ensemble margin (`None` when the scan ran
    /// without a cascade; cascade scans record it for every window).
    pub margin: Option<f32>,
    /// The stage whose decision this window carries.
    pub stage: ScanStage,
}

/// A cluster of overlapping flagged windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotspotRegion {
    /// Bounding-box low x, nm (layout frame).
    pub x0_nm: i64,
    /// Bounding-box low y, nm.
    pub y0_nm: i64,
    /// Bounding-box high x, nm.
    pub x1_nm: i64,
    /// Bounding-box high y, nm.
    pub y1_nm: i64,
    /// Flagged windows merged into this region.
    pub windows: usize,
    /// Highest window score in the region.
    pub peak_score: f32,
    /// Mean window score in the region.
    pub mean_score: f32,
}

/// Cascade accounting for one scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeScanStats {
    /// The calibrated margin threshold the prefilter applied.
    pub margin_threshold: f32,
    /// Windows the prefilter cleared (CNN never evaluated them).
    pub cleared: usize,
    /// Windows forwarded to (and scored by) the CNN.
    pub forwarded: usize,
}

/// Everything a full-layout scan produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanReport {
    /// Layout extent along x, nm.
    pub layout_width_nm: i64,
    /// Layout extent along y, nm.
    pub layout_height_nm: i64,
    /// Scan stride, nm.
    pub stride_nm: i64,
    /// Window side, nm.
    pub window_nm: i64,
    /// Decision threshold.
    pub threshold: f32,
    /// Window positions along x.
    pub grid_cols: usize,
    /// Window positions along y.
    pub grid_rows: usize,
    /// Per-window scores, row-major (y-major, x-minor) over the stride
    /// grid.
    pub windows: Vec<WindowScore>,
    /// Merged hotspot regions, sorted by (y, x) of their low corner.
    pub regions: Vec<HotspotRegion>,
    /// Block-DCT cache accounting.
    pub cache: CacheStats,
    /// Windows the CNN actually evaluated (equal to `windows.len()`
    /// without a cascade).
    pub cnn_evals: usize,
    /// Cascade accounting (`None` when the scan ran without a cascade).
    pub cascade: Option<CascadeScanStats>,
    /// Worker threads the tiled scan resolved to (bands actually used).
    pub threads: usize,
    /// Wall time of the serial prefix (validation, geometry, execution
    /// planning), seconds.
    pub prepare_s: f64,
    /// Wall time of the tiled rasterise + feature + score phase, seconds.
    pub scan_s: f64,
    /// Wall time of window assembly and region merging, seconds.
    pub merge_s: f64,
    /// Wall-clock scan time, seconds.
    pub elapsed_s: f64,
    /// Identity of the weights that produced the scores (`None` when the
    /// caller did not stamp one via [`ScanConfig::with_provenance`]).
    pub provenance: Option<ModelProvenance>,
}

impl ScanReport {
    /// Number of flagged windows.
    pub fn positives(&self) -> usize {
        self.windows.iter().filter(|w| w.hotspot).count()
    }

    /// Scored windows per second of wall-clock time (0 for an
    /// instantaneous scan).
    pub fn windows_per_sec(&self) -> f64 {
        if self.elapsed_s > 0.0 {
            self.windows.len() as f64 / self.elapsed_s
        } else {
            0.0
        }
    }

    /// CNN forward passes per scanned window — 1.0 without a cascade,
    /// lower when the prefilter cleared windows (0 for an empty scan).
    pub fn cnn_evals_per_window(&self) -> f64 {
        if self.windows.is_empty() {
            0.0
        } else {
            self.cnn_evals as f64 / self.windows.len() as f64
        }
    }

    /// Serialises the report as the canonical v1 JSON object
    /// ([`api::scan_report_json`]) — the same schema the serve daemon
    /// embeds in its `scan` responses, validated by the CI smoke jobs.
    pub fn to_json(&self) -> String {
        api::scan_report_json(self)
    }
}

/// Window low-corner offsets covering `extent_nm`: stride multiples while
/// the window fits, plus a flush-to-edge position so the far border is
/// always scanned.
fn axis_positions(extent_nm: i64, window_nm: i64, stride_nm: i64) -> Vec<i64> {
    let mut xs = Vec::new();
    let mut x = 0;
    while x + window_nm <= extent_nm {
        xs.push(x);
        x += stride_nm;
    }
    let flush = extent_nm - window_nm;
    if xs.last() != Some(&flush) {
        xs.push(flush);
    }
    xs
}

/// Assembles one window's feature tensor from per-block DCT coefficients,
/// written into the caller's `data` slice (length `k·n·n`) so a scan can
/// fill one flat feature buffer without allocating per window.
///
/// Aligned windows (low corner on the block lattice) fetch blocks through
/// the shared cache; others transform their blocks directly from the
/// layout raster. Either path reproduces
/// [`crate::feature::FeaturePipeline::extract`] bit-for-bit.
///
/// `x_px`/`y_px` and the cache keys are **layout-global** pixel/lattice
/// coordinates; `raster_y0_px` is the global pixel row where the caller's
/// (possibly strip-cropped) `layout_raster` begins, so a tiled scan can
/// pass a per-band raster strip while keeping cache keys comparable
/// across bands.
#[allow(clippy::too_many_arguments)]
fn window_feature_into(
    data: &mut [f32],
    layout_raster: &Grid<f32>,
    raster_y0_px: usize,
    plan: &BlockDctPlan,
    cache: &mut HashMap<(usize, usize), Vec<f32>>,
    stats: &mut CacheStats,
    x_px: usize,
    y_px: usize,
    grid_dim: usize,
) -> Result<(), CoreError> {
    let b = plan.block_size();
    let k = plan.coefficients();
    let n = grid_dim;
    debug_assert_eq!(data.len(), k * n * n, "window feature slice length");
    let scale = 1.0 / b as f32;
    let aligned = x_px.is_multiple_of(b) && y_px.is_multiple_of(b);
    for j in 0..n {
        for i in 0..n {
            if aligned {
                let key = (x_px / b + i, y_px / b + j);
                let coeffs: &Vec<f32> = match cache.entry(key) {
                    std::collections::hash_map::Entry::Occupied(entry) => {
                        stats.hits += 1;
                        entry.into_mut()
                    }
                    std::collections::hash_map::Entry::Vacant(entry) => {
                        let crop = layout_raster.window(key.0 * b, key.1 * b - raster_y0_px, b, b);
                        let mut coeffs = plan.coefficients_for(&crop)?;
                        for c in coeffs.iter_mut() {
                            *c *= scale;
                        }
                        stats.computed += 1;
                        entry.insert(coeffs)
                    }
                };
                for c in 0..k {
                    data[(c * n + j) * n + i] = coeffs[c];
                }
            } else {
                let crop = layout_raster.window(x_px + i * b, y_px + j * b - raster_y0_px, b, b);
                let coeffs = plan.coefficients_for(&crop)?;
                stats.computed += 1;
                for (c, &v) in coeffs.iter().enumerate() {
                    data[(c * n + j) * n + i] = v * scale;
                }
            }
        }
    }
    Ok(())
}

/// Splits `rows` window rows into at most `bands` contiguous near-equal
/// ranges; leading bands take the remainder rows.
fn band_ranges(rows: usize, bands: usize) -> Vec<(usize, usize)> {
    let bands = bands.clamp(1, rows.max(1));
    let base = rows / bands;
    let extra = rows % bands;
    let mut out = Vec::with_capacity(bands);
    let mut r0 = 0;
    for t in 0..bands {
        let len = base + usize::from(t < extra);
        out.push((r0, r0 + len));
        r0 += len;
    }
    out
}

/// What a band worker hands back: its raw cache accounting plus the
/// cache itself (keyed on the *layout-global* block lattice), so the
/// caller can reconstruct exactly the stats a single shared cache would
/// have reported.
type BandOutcome = Result<(CacheStats, HashMap<(usize, usize), Vec<f32>>), CoreError>;

/// One window's result cell in the band score grid: the CNN probability
/// (0 when the window never reached the CNN), the prefilter margin (NaN
/// without a cascade) and whether the CNN evaluated the window.
#[derive(Debug, Clone, Copy)]
struct BandCell {
    score: f32,
    margin: f32,
    cnn: bool,
}

impl Default for BandCell {
    fn default() -> Self {
        BandCell {
            score: 0.0,
            margin: f32::NAN,
            cnn: false,
        }
    }
}

/// Everything a band worker needs, bundled so the crossbeam closure moves
/// one value.
struct BandArgs<'a> {
    normalized: &'a Clip,
    resolution_nm: u32,
    window_nm: i64,
    window_px: usize,
    xs: &'a [i64],
    /// This band's window rows (a contiguous slice of the scan's `ys`).
    ys: &'a [i64],
    plan: &'a BlockDctPlan,
    grid_dim: usize,
    feat_len: usize,
    net: &'a Network,
    in_shape: [usize; 3],
    block: usize,
    block_plan: &'a ShapePlan,
    out_len: usize,
    cascade: Option<&'a CascadePrefilter>,
}

/// Scans one horizontal band of window rows.
///
/// The band rasterises only the strip of layout its windows cover
/// (adjacent strips overlap by up to one window extent), assembles window
/// features through a band-local block-DCT cache keyed on the global
/// lattice, and scores windows in streaming blocks through its own warm
/// [`Workspace`] — so peak memory is bounded by `threads × (strip raster +
/// one score block of features)` rather than the whole scan.
///
/// With a cascade configured, a prefilter pass runs first: every window's
/// raster crop is reduced to a density vector and margin-scored, and only
/// passing windows survive to the CNN pass, **compacted** into full
/// scoring blocks (batched CNN scoring is composition-independent, so
/// compaction never changes a surviving window's bits). Without a cascade
/// every window survives, reproducing the single-stage scan exactly.
///
/// Returns the band's raw cache accounting plus its cache so the caller
/// can reconstruct exactly the stats a single shared cache would report.
fn scan_band(args: &BandArgs<'_>, cells: &mut [BandCell]) -> BandOutcome {
    let res = i64::from(args.resolution_nm);
    let y_lo = args.ys[0];
    let y_hi = args.ys[args.ys.len() - 1] + args.window_nm;
    let width_nm = args.normalized.window().width();
    // Positive by construction (window > 0, nonempty band rows, validated
    // layout width), but routed as an error rather than a panic.
    let strip_rect = match Rect::from_size(Point::new(0, y_lo), width_nm, y_hi - y_lo) {
        Ok(rect) => rect,
        Err(_) => {
            return Err(CoreError::InvalidConfig(
                "scan band strip extent must be positive",
            ))
        }
    };
    // The raster of an extracted strip equals the matching pixel rows of
    // the full-layout raster bit-for-bit (coverage accumulates only from
    // shapes touching a pixel, in insertion order — the same pinned
    // property that makes window extraction bit-exact).
    let strip = args.normalized.extract_window(strip_rect);
    let strip_raster = raster::rasterize_clip(&strip, args.resolution_nm);
    let y0_px = (y_lo / res) as usize;

    let cols = args.xs.len();
    let band_total = cols * args.ys.len();
    debug_assert_eq!(cells.len(), band_total, "band cell slice length");

    // Stage 1 — prefilter pass. Each window's margin comes from the
    // density vector of its raster crop, which equals the raster of the
    // extracted window clip bit-for-bit, so margins match training-time
    // extraction and are independent of the banding. Survivor indices are
    // collected in scan order.
    let survivors: Vec<usize> = match args.cascade {
        None => {
            for cell in cells.iter_mut() {
                cell.cnn = true;
            }
            (0..band_total).collect()
        }
        Some(prefilter) => {
            let grid = prefilter.grid_dim();
            let mut alive = Vec::with_capacity(band_total);
            for (idx, cell) in cells.iter_mut().enumerate() {
                let y = args.ys[idx / cols];
                let x = args.xs[idx % cols];
                let crop = strip_raster.window(
                    (x / res) as usize,
                    (y / res) as usize - y0_px,
                    args.window_px,
                    args.window_px,
                );
                let features = prefilter_features(density_feature(&crop, grid)?);
                let margin = prefilter.try_margin(&features)?;
                cell.margin = margin;
                if prefilter.passes(margin) {
                    cell.cnn = true;
                    alive.push(idx);
                }
            }
            alive
        }
    };

    // Stage 2 — CNN pass over the survivors, compacted into full scoring
    // blocks (only the final block is ragged, exactly as before).
    let mut cache: HashMap<(usize, usize), Vec<f32>> = HashMap::new();
    let mut stats = CacheStats::default();
    let mut ws = Workspace::new();
    let mut soft = vec![0.0f32; args.out_len];
    let mut tail_plan: Option<ShapePlan> = None;
    let mut feats = vec![0.0f32; args.block * args.feat_len];
    let mut done = 0usize;
    while done < survivors.len() {
        let b = args.block.min(survivors.len() - done);
        for (w, &idx) in survivors[done..done + b].iter().enumerate() {
            let y = args.ys[idx / cols];
            let x = args.xs[idx % cols];
            window_feature_into(
                &mut feats[w * args.feat_len..(w + 1) * args.feat_len],
                &strip_raster,
                y0_px,
                args.plan,
                &mut cache,
                &mut stats,
                (x / res) as usize,
                (y / res) as usize,
                args.grid_dim,
            )?;
        }
        let plan = if b == args.block {
            args.block_plan
        } else {
            tail_plan.get_or_insert_with(|| args.net.plan_batch(&args.in_shape, b))
        };
        let logits = args
            .net
            .forward_batch_with(plan, &mut ws, &feats[..b * args.feat_len]);
        for (logit, &idx) in logits
            .chunks_exact(args.out_len)
            .zip(&survivors[done..done + b])
        {
            loss::softmax_into(logit, &mut soft);
            cells[idx].score = soft[1];
        }
        done += b;
    }
    Ok((stats, cache))
}

/// Connected-component clustering of flagged windows: two positives join
/// the same region when their windows strictly overlap.
fn merge_regions(windows: &[WindowScore], window_nm: i64) -> Vec<HotspotRegion> {
    let pos: Vec<&WindowScore> = windows.iter().filter(|w| w.hotspot).collect();
    let mut parent: Vec<usize> = (0..pos.len()).collect();
    fn find(parent: &mut [usize], mut a: usize) -> usize {
        while parent[a] != a {
            parent[a] = parent[parent[a]];
            a = parent[a];
        }
        a
    }
    for a in 0..pos.len() {
        for b in a + 1..pos.len() {
            if (pos[a].x_nm - pos[b].x_nm).abs() < window_nm
                && (pos[a].y_nm - pos[b].y_nm).abs() < window_nm
            {
                let ra = find(&mut parent, a);
                let rb = find(&mut parent, b);
                if ra != rb {
                    parent[ra] = rb;
                }
            }
        }
    }
    let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for a in 0..pos.len() {
        let root = find(&mut parent, a);
        groups.entry(root).or_default().push(a);
    }
    let mut regions: Vec<HotspotRegion> = groups
        .into_values()
        .map(|members| {
            let mut x0 = i64::MAX;
            let mut y0 = i64::MAX;
            let mut x1 = i64::MIN;
            let mut y1 = i64::MIN;
            let mut peak = 0.0f32;
            let mut sum = 0.0f64;
            for &m in &members {
                let w = pos[m];
                x0 = x0.min(w.x_nm);
                y0 = y0.min(w.y_nm);
                x1 = x1.max(w.x_nm + window_nm);
                y1 = y1.max(w.y_nm + window_nm);
                peak = peak.max(w.score);
                sum += f64::from(w.score);
            }
            HotspotRegion {
                x0_nm: x0,
                y0_nm: y0,
                x1_nm: x1,
                y1_nm: y1,
                windows: members.len(),
                peak_score: peak,
                mean_score: (sum / members.len() as f64) as f32,
            }
        })
        .collect();
    regions.sort_by_key(|r| (r.y0_nm, r.x0_nm));
    regions
}

impl HotspotDetector {
    /// Scans a full layout with a sliding window, scoring every stride
    /// position and merging flagged windows into hotspot regions.
    ///
    /// The scan is sharded into horizontal bands of window rows, one
    /// crossbeam worker per band (band count from the configured
    /// [`crate::Parallelism`], capped at the row count). Each worker
    /// rasterises only the layout strip its windows cover (adjacent
    /// strips overlap by up to one window extent), assembles per-window
    /// feature tensors from per-block DCT coefficients through a
    /// band-local cache shard keyed on the global block lattice, and
    /// scores its windows in streaming blocks through the batched
    /// execution planner (block size from
    /// [`ScanConfig::with_score_block`] or the plan's arena-footprint
    /// suggestion) — so peak memory is bounded by the strip rasters plus
    /// one score block of features per worker, not the layout size.
    ///
    /// Scores, flagged windows, merged regions and cache statistics are
    /// **independent of the thread count** and bit-identical to
    /// extracting each window as a standalone clip and calling
    /// [`HotspotDetector::predict_batch`]: per-window arithmetic never
    /// sees the banding, regions are merged globally after all bands
    /// join, and cache stats are reconstructed to exactly the accounting
    /// a single shared cache would report.
    ///
    /// With a cascade configured ([`ScanConfig::with_cascade`]) the scan
    /// runs two stages: the prefilter margin-scores every window's raster
    /// crop, cleared windows record their margin with score `0.0` and
    /// `hotspot: false`, and only survivors are CNN-scored — with bits
    /// identical to the non-cascade scan for every window the CNN sees,
    /// at every thread count.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] when the scan geometry is inconsistent
    /// with the feature pipeline: stride, window and layout extents must
    /// be multiples of the raster resolution, the window must divide into
    /// the pipeline's block grid, and the layout must be at least one
    /// window in each axis. [`CoreError::Prefilter`] when a configured
    /// cascade prefilter's density grid does not divide the scan window.
    pub fn scan(&self, layout: &Clip, config: &ScanConfig) -> Result<ScanReport, CoreError> {
        let start = Instant::now();
        let pipeline = self.pipeline();
        let res = i64::from(pipeline.resolution_nm());
        let n = pipeline.grid_dim();
        let width_nm = layout.window().width();
        let height_nm = layout.window().height();
        if config.stride_nm % res != 0 {
            return Err(CoreError::InvalidConfig(
                "scan stride must be a multiple of the raster resolution",
            ));
        }
        if config.window_nm % res != 0 {
            return Err(CoreError::InvalidConfig(
                "scan window must be a multiple of the raster resolution",
            ));
        }
        if width_nm % res != 0 || height_nm % res != 0 {
            return Err(CoreError::InvalidConfig(
                "layout extents must be multiples of the raster resolution",
            ));
        }
        let window_px = (config.window_nm / res) as usize;
        if !window_px.is_multiple_of(n) {
            return Err(CoreError::InvalidConfig(
                "scan window does not divide into the pipeline block grid",
            ));
        }
        if let Some(prefilter) = config.cascade() {
            // Checked here — not deep inside the band workers — so an
            // incompatible prefilter surfaces before any scanning as a
            // precise geometry error instead of a per-window feature
            // failure.
            let g = prefilter.grid_dim();
            if !window_px.is_multiple_of(g) {
                return Err(CoreError::Prefilter(format!(
                    "scan window of {window_px} px cannot be divided into the prefilter's \
                     {g}x{g} density grid"
                )));
            }
        }
        if width_nm < config.window_nm || height_nm < config.window_nm {
            return Err(CoreError::InvalidConfig(
                "layout is smaller than the scan window",
            ));
        }
        let block_px = window_px / n;
        let plan = BlockDctPlan::new(block_px, pipeline.coefficients())?;
        let normalized = layout.normalized();
        let xs = axis_positions(width_nm, config.window_nm, config.stride_nm);
        let ys = axis_positions(height_nm, config.window_nm, config.stride_nm);
        let k = pipeline.coefficients();
        let feat_len = k * n * n;
        let total = xs.len() * ys.len();
        let net = self.network();
        let in_shape = [k, n, n];
        let probe = net.plan(&in_shape);
        let out_len = probe.out_len();
        let block = config
            .score_block
            .unwrap_or_else(|| probe.suggested_batch())
            .min(total)
            .max(1);
        let block_plan = net.plan_batch(&in_shape, block);
        let bands = band_ranges(ys.len(), self.parallelism().workers());
        let threads = bands.len();
        let prepare_s = start.elapsed().as_secs_f64();

        // Tiled scan phase — the layout is sharded into horizontal bands
        // of window rows, one crossbeam worker per band. Each worker owns
        // its raster strip, block-DCT cache shard, batch plan and warm
        // workspace; scores land in disjoint slices of the global
        // row-major score grid, so results are independent of the band
        // count (the per-window arithmetic never sees the banding).
        let scan_t = Instant::now();
        let mut cells = vec![BandCell::default(); total];
        let band_args = |rows: &std::ops::Range<usize>| BandArgs {
            normalized: &normalized,
            resolution_nm: pipeline.resolution_nm(),
            window_nm: config.window_nm,
            window_px,
            xs: &xs,
            ys: &ys[rows.clone()],
            plan: &plan,
            grid_dim: n,
            feat_len,
            net,
            in_shape,
            block,
            block_plan: &block_plan,
            out_len,
            cascade: config.cascade(),
        };
        let outcomes: Vec<BandOutcome> = if threads == 1 {
            vec![scan_band(&band_args(&(0..ys.len())), &mut cells)]
        } else {
            let mut slices: Vec<&mut [BandCell]> = Vec::with_capacity(threads);
            let mut rest: &mut [BandCell] = &mut cells;
            for &(r0, r1) in &bands {
                let (head, tail) = rest.split_at_mut((r1 - r0) * xs.len());
                slices.push(head);
                rest = tail;
            }
            match crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = bands
                    .iter()
                    .zip(slices)
                    .map(|(&(r0, r1), slice)| {
                        let args = band_args(&(r0..r1));
                        scope.spawn(move |_| scan_band(&args, slice))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(outcome) => outcome,
                        Err(payload) => std::panic::resume_unwind(payload),
                    })
                    .collect()
            }) {
                Ok(outcomes) => outcomes,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        };
        // Reconstruct exactly the accounting one shared cache would have
        // produced: a block is a serial cache miss only on its first fetch
        // anywhere, so `computed` is the number of *distinct* cached keys
        // across all band shards (plus the uncached unaligned transforms),
        // and every remaining fetch is a hit.
        let mut distinct: HashSet<(usize, usize)> = HashSet::new();
        let mut unaligned_computed = 0usize;
        let mut lookups = 0usize;
        for outcome in outcomes {
            let (band_stats, band_cache) = outcome?;
            lookups += band_stats.lookups();
            unaligned_computed += band_stats.computed - band_cache.len();
            distinct.extend(band_cache.into_keys());
        }
        let stats = CacheStats {
            computed: distinct.len() + unaligned_computed,
            hits: lookups - distinct.len() - unaligned_computed,
        };
        let scan_s = scan_t.elapsed().as_secs_f64();

        let merge_t = Instant::now();
        let lo = layout.window().lo();
        let cascaded = config.cascade().is_some();
        let mut windows = Vec::with_capacity(total);
        let mut cnn_evals = 0usize;
        let mut idx = 0;
        for &y in &ys {
            for &x in &xs {
                let cell = cells[idx];
                cnn_evals += usize::from(cell.cnn);
                windows.push(WindowScore {
                    x_nm: lo.x + x,
                    y_nm: lo.y + y,
                    score: cell.score,
                    hotspot: cell.cnn && cell.score > config.threshold,
                    margin: cascaded.then_some(cell.margin),
                    stage: if cell.cnn {
                        ScanStage::Cnn
                    } else {
                        ScanStage::Prefilter
                    },
                });
                idx += 1;
            }
        }
        let cascade_stats = config.cascade().map(|p| CascadeScanStats {
            margin_threshold: p.margin_threshold(),
            cleared: total - cnn_evals,
            forwarded: cnn_evals,
        });
        let regions = merge_regions(&windows, config.window_nm);
        let merge_s = merge_t.elapsed().as_secs_f64();
        Ok(ScanReport {
            layout_width_nm: width_nm,
            layout_height_nm: height_nm,
            stride_nm: config.stride_nm,
            window_nm: config.window_nm,
            threshold: config.threshold,
            grid_cols: xs.len(),
            grid_rows: ys.len(),
            windows,
            regions,
            cache: stats,
            cnn_evals,
            cascade: cascade_stats,
            threads,
            prepare_s,
            scan_s,
            merge_s,
            elapsed_s: start.elapsed().as_secs_f64(),
            provenance: config.provenance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feature::FeaturePipeline;
    use crate::model::CnnConfig;
    use hotspot_datagen::LayoutSpec;

    /// A small untrained detector: res 10 nm/px, 4×4 block grid, k = 4,
    /// sized for 400 nm scan windows (blocks of 10 px / 100 nm).
    fn tiny_detector() -> HotspotDetector {
        let pipeline = FeaturePipeline::new(10, 4, 4).expect("valid pipeline");
        let net = CnnConfig {
            input_grid: 4,
            input_channels: 4,
            stage1_maps: 4,
            stage2_maps: 4,
            fc_width: 8,
            dropout_pct: 50,
            seed: 11,
        }
        .build();
        HotspotDetector::from_network(pipeline, net)
    }

    fn tiny_config(stride_nm: i64) -> ScanConfig {
        ScanConfig::new(stride_nm)
            .expect("positive stride")
            .with_window_nm(400)
            .expect("positive window")
    }

    #[test]
    fn config_validates() {
        assert!(ScanConfig::new(0).is_err());
        assert!(ScanConfig::new(-100).is_err());
        assert!(ScanConfig::new(100).unwrap().with_window_nm(0).is_err());
        assert!(ScanConfig::new(100).unwrap().with_threshold(1.5).is_err());
        assert!(ScanConfig::new(100).unwrap().with_threshold(-0.1).is_err());
        assert!(ScanConfig::new(100).unwrap().with_score_block(0).is_err());
        let c = ScanConfig::new(600).unwrap();
        assert_eq!(
            (c.stride_nm(), c.window_nm(), c.threshold()),
            (600, 1200, 0.5)
        );
        assert_eq!(c.score_block(), None);
        let c = c.with_score_block(7).unwrap();
        assert_eq!(c.score_block(), Some(7));
    }

    #[test]
    fn scan_rejects_inconsistent_geometry() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 3).build();
        // Stride not a multiple of the 10 nm resolution.
        assert!(detector.scan(&layout, &tiny_config(105)).is_err());
        // Window not a multiple of the resolution.
        let c = ScanConfig::new(200).unwrap().with_window_nm(405).unwrap();
        assert!(detector.scan(&layout, &c).is_err());
        // Window pixels (45) not divisible by the 4-block grid.
        let c = ScanConfig::new(200).unwrap().with_window_nm(450).unwrap();
        assert!(detector.scan(&layout, &c).is_err());
        // Layout smaller than the window.
        let c = ScanConfig::new(200).unwrap().with_window_nm(2000).unwrap();
        assert!(detector.scan(&layout, &c).is_err());
    }

    #[test]
    fn aligned_scan_transforms_each_block_at_most_once() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(2, 2, 7).build(); // 2400×2400 nm
                                                           // Stride 200 nm = 2 blocks: every window lands on the lattice.
        let report = detector.scan(&layout, &tiny_config(200)).unwrap();
        assert_eq!(report.grid_cols, 11);
        assert_eq!(report.grid_rows, 11);
        assert_eq!(report.windows.len(), 121);
        // 121 windows × 16 blocks fetched, but ≤ 24×24 distinct layout
        // blocks ever transformed — everything else is a cache hit.
        assert_eq!(report.cache.lookups(), 121 * 16);
        assert!(
            report.cache.computed <= 24 * 24,
            "computed {}",
            report.cache.computed
        );
        assert!(report.cache.hits > 0);
        assert!(
            report.cache.hit_rate() > 0.5,
            "hit rate {}",
            report.cache.hit_rate()
        );
    }

    #[test]
    fn scan_scores_match_naive_clip_extraction() {
        use hotspot_geometry::Rect;
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(2, 1, 19).build(); // 2400×1200 nm
        for stride in [200, 150] {
            // 200 nm is block-aligned; 150 nm is not (block = 100 nm).
            let report = detector.scan(&layout, &tiny_config(stride)).unwrap();
            let clips: Vec<Clip> = report
                .windows
                .iter()
                .map(|w| {
                    layout.extract_window(
                        Rect::from_size(hotspot_geometry::Point::new(w.x_nm, w.y_nm), 400, 400)
                            .unwrap(),
                    )
                })
                .collect();
            let naive = detector.predict_batch(&clips).unwrap();
            for (w, p) in report.windows.iter().zip(naive.iter()) {
                assert_eq!(
                    w.score.to_bits(),
                    p.to_bits(),
                    "stride {stride}, window ({}, {})",
                    w.x_nm,
                    w.y_nm
                );
            }
        }
    }

    #[test]
    fn regions_merge_overlapping_positives() {
        let w = |x_nm: i64, y_nm: i64, score: f32| WindowScore {
            x_nm,
            y_nm,
            score,
            hotspot: score > 0.5,
            margin: None,
            stage: ScanStage::Cnn,
        };
        // Two overlapping positives, one isolated positive, one negative.
        let windows = vec![
            w(0, 0, 0.9),
            w(200, 0, 0.7),
            w(2000, 2000, 0.8),
            w(800, 0, 0.1),
        ];
        let regions = merge_regions(&windows, 400);
        assert_eq!(regions.len(), 2);
        assert_eq!(
            (
                regions[0].x0_nm,
                regions[0].y0_nm,
                regions[0].x1_nm,
                regions[0].y1_nm
            ),
            (0, 0, 600, 400)
        );
        assert_eq!(regions[0].windows, 2);
        assert!((regions[0].peak_score - 0.9).abs() < 1e-6);
        assert!((regions[0].mean_score - 0.8).abs() < 1e-6);
        assert_eq!(regions[1].windows, 1);
        // Windows that merely touch (distance == window) stay separate.
        let touching = vec![w(0, 0, 0.9), w(400, 0, 0.9)];
        assert_eq!(merge_regions(&touching, 400).len(), 2);
    }

    #[test]
    fn single_window_layout_scores_exactly_once() {
        // Layout exactly one window in each axis: the stride grid
        // degenerates to the single flush position, and the batched
        // scoring path must handle a one-window block.
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 13).build(); // 1200×1200 nm
        let config = ScanConfig::new(400).unwrap().with_window_nm(1200).unwrap();
        let report = detector.scan(&layout, &config).unwrap();
        assert_eq!((report.grid_cols, report.grid_rows), (1, 1));
        assert_eq!(report.windows.len(), 1);
        assert_eq!((report.windows[0].x_nm, report.windows[0].y_nm), (0, 0));
        // Identical to scoring the layout as one standalone clip.
        let naive = detector
            .predict_batch(std::slice::from_ref(&layout))
            .unwrap();
        assert_eq!(report.windows[0].score.to_bits(), naive[0].to_bits());
    }

    #[test]
    fn layout_smaller_than_window_is_rejected() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 3).build(); // 1200×1200 nm
        let config = ScanConfig::new(400).unwrap().with_window_nm(1600).unwrap();
        match detector.scan(&layout, &config) {
            Err(CoreError::InvalidConfig(why)) => {
                assert!(why.contains("smaller than the scan window"), "{why}");
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn threshold_one_flags_no_windows_and_yields_no_regions() {
        // Scores are probabilities in [0, 1] and flagging is strictly
        // `score > threshold`, so threshold 1.0 (valid) flags nothing.
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 5).build();
        let report = detector
            .scan(&layout, &tiny_config(200).with_threshold(1.0).unwrap())
            .unwrap();
        assert_eq!(report.positives(), 0);
        assert!(report.regions.is_empty());
        assert!(report.windows.iter().all(|w| !w.hotspot));
    }

    #[test]
    fn corner_touching_positives_stay_separate() {
        // Two flagged windows sharing only the corner point (400, 400):
        // |dx| == |dy| == window, so neither axis strictly overlaps and
        // the union-find must keep them in distinct regions.
        let w = |x_nm: i64, y_nm: i64| WindowScore {
            x_nm,
            y_nm,
            score: 0.9,
            hotspot: true,
            margin: None,
            stage: ScanStage::Cnn,
        };
        let corner = vec![w(0, 0), w(400, 400)];
        let regions = merge_regions(&corner, 400);
        assert_eq!(regions.len(), 2);
        // One nm of overlap in both axes merges them.
        let overlapping = vec![w(0, 0), w(399, 399)];
        assert_eq!(merge_regions(&overlapping, 400).len(), 1);
    }

    #[test]
    fn score_block_size_changes_neither_scores_nor_cache_stats() {
        // The block-DCT cache is filled in Phase 1, before scoring, so
        // CacheStats must be byte-identical for every score block size —
        // and so must every window score — at both a block-aligned stride
        // (200 nm) and an unaligned one (150 nm).
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(2, 2, 17).build(); // 2400×2400 nm
        for stride in [200, 150] {
            let baseline = detector
                .scan(&layout, &tiny_config(stride).with_score_block(1).unwrap())
                .unwrap();
            assert!(baseline.cache.lookups() > 0);
            for block in [2usize, 5, 64] {
                let report = detector
                    .scan(
                        &layout,
                        &tiny_config(stride).with_score_block(block).unwrap(),
                    )
                    .unwrap();
                assert_eq!(
                    report.cache, baseline.cache,
                    "stride {stride} block {block}"
                );
                assert_eq!(report.windows.len(), baseline.windows.len());
                for (a, b) in report.windows.iter().zip(baseline.windows.iter()) {
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "stride {stride} block {block} window ({}, {})",
                        a.x_nm,
                        a.y_nm
                    );
                }
            }
            // The default (plan-suggested) block agrees too.
            let default = detector.scan(&layout, &tiny_config(stride)).unwrap();
            assert_eq!(default.cache, baseline.cache);
            for (a, b) in default.windows.iter().zip(baseline.windows.iter()) {
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn report_json_has_schema_keys() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 5).build();
        let report = detector
            .scan(&layout, &tiny_config(400).with_threshold(0.0).unwrap())
            .unwrap();
        // threshold 0: every window is positive, so regions are nonempty.
        assert!(report.positives() > 0);
        assert!(!report.regions.is_empty());
        let json = report.to_json();
        for key in [
            "\"v\"",
            "\"provenance\"",
            "\"layout\"",
            "\"scan\"",
            "\"cache\"",
            "\"hit_rate\"",
            "\"throughput\"",
            "\"windows_per_sec\"",
            "\"execution\"",
            "\"threads\"",
            "\"prepare_s\"",
            "\"scan_s\"",
            "\"merge_s\"",
            "\"positives\"",
            "\"regions\"",
            "\"windows\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(report.threads >= 1);
    }

    /// A hand-built single-stump prefilter on the tiny detector's 40 px
    /// window: density grid 4 (16 features), margin ±1 from whether the
    /// window's top-left block density exceeds `stump_threshold`, decided
    /// at `margin_threshold`.
    fn tiny_prefilter(margin_threshold: f32, stump_threshold: f32) -> CascadePrefilter {
        use hotspot_baselines::{AdaBoost, CalibratedAdaBoost, DecisionStump};
        let stump = DecisionStump {
            feature: 0,
            threshold: stump_threshold,
            polarity: 1.0,
        };
        let model = AdaBoost::from_parts(vec![(1.0, stump)], 17).expect("valid stump");
        CascadePrefilter::new(
            CalibratedAdaBoost::new(model, margin_threshold, 0.0, 0.0),
            4,
        )
        .expect("grid matches feature length")
    }

    #[test]
    fn cascade_rejects_indivisible_prefilter_grid() {
        use hotspot_baselines::{AdaBoost, CalibratedAdaBoost, DecisionStump};
        let stump = DecisionStump {
            feature: 0,
            threshold: 0.5,
            polarity: 1.0,
        };
        let model = AdaBoost::from_parts(vec![(1.0, stump)], 50).unwrap();
        // Grid 7 does not divide the 40 px scan window: the error must
        // surface at scan time, before any band work, naming the grid.
        let prefilter =
            CascadePrefilter::new(CalibratedAdaBoost::new(model, 0.0, 0.0, 0.0), 7).unwrap();
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(1, 1, 3).build();
        match detector.scan(&layout, &tiny_config(200).with_cascade(prefilter)) {
            Err(CoreError::Prefilter(why)) => {
                assert!(why.contains("7x7 density grid"), "{why}");
            }
            other => panic!("expected Prefilter error, got {other:?}"),
        }
    }

    #[test]
    fn all_pass_cascade_matches_plain_scan_exactly() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(2, 2, 7).build();
        for stride in [200, 150] {
            let plain = detector.scan(&layout, &tiny_config(stride)).unwrap();
            let cascade_cfg =
                tiny_config(stride).with_cascade(tiny_prefilter(f32::NEG_INFINITY, 0.5));
            let cascaded = detector.scan(&layout, &cascade_cfg).unwrap();
            // Every window passes the forced all-pass prefilter, so the
            // CNN work — scores, flags, regions, cache accounting — is
            // exactly the plain scan's.
            assert_eq!(cascaded.cache, plain.cache, "stride {stride}");
            assert_eq!(cascaded.cnn_evals, plain.windows.len());
            assert_eq!(cascaded.regions, plain.regions);
            let stats = cascaded.cascade.expect("cascade stats present");
            assert_eq!((stats.cleared, stats.forwarded), (0, plain.windows.len()));
            assert!(plain.cascade.is_none());
            assert_eq!(plain.cnn_evals, plain.windows.len());
            for (c, p) in cascaded.windows.iter().zip(plain.windows.iter()) {
                assert_eq!((c.x_nm, c.y_nm), (p.x_nm, p.y_nm));
                assert_eq!(c.score.to_bits(), p.score.to_bits());
                assert_eq!(c.hotspot, p.hotspot);
                assert_eq!(c.stage, ScanStage::Cnn);
                assert!(c.margin.is_some());
                assert_eq!(p.stage, ScanStage::Cnn);
                assert_eq!(p.margin, None);
            }
        }
    }

    #[test]
    fn none_pass_cascade_clears_every_window() {
        let detector = tiny_detector();
        let layout = LayoutSpec::uniform(2, 1, 7).build();
        let config = tiny_config(200)
            .with_threshold(0.0)
            .unwrap()
            .with_cascade(tiny_prefilter(f32::INFINITY, 0.5));
        let report = detector.scan(&layout, &config).unwrap();
        assert_eq!(report.cnn_evals, 0);
        assert_eq!(report.cnn_evals_per_window(), 0.0);
        assert_eq!(report.positives(), 0);
        assert!(report.regions.is_empty());
        let stats = report.cascade.unwrap();
        assert_eq!(stats.cleared, report.windows.len());
        assert_eq!(stats.forwarded, 0);
        for w in &report.windows {
            assert_eq!(w.stage, ScanStage::Prefilter);
            assert_eq!(w.score, 0.0);
            assert!(!w.hotspot);
            assert!(!w.margin.unwrap().is_nan());
        }
        // No CNN ran, so the block-DCT cache was never touched.
        assert_eq!(report.cache.lookups(), 0);
        // The JSON renders the non-finite forced threshold as null.
        let json = report.to_json();
        assert!(json.contains("\"enabled\": true"));
        assert!(json.contains("\"margin_threshold\": null"));
        assert!(json.contains("\"stage\": \"prefilter\""));
    }

    #[test]
    fn cascade_survivors_score_bit_identical_at_every_thread_count() {
        use crate::Parallelism;
        let layout = LayoutSpec::uniform(2, 2, 29).build();
        let mut detector = tiny_detector();
        detector.set_parallelism(Parallelism::serial());
        let stride = 200;
        let plain = detector.scan(&layout, &tiny_config(stride)).unwrap();
        // A data-dependent stump threshold splits the windows: some
        // cleared, some forwarded (0.5 ≈ a typical mid density).
        let config = tiny_config(stride).with_cascade(tiny_prefilter(0.0, 0.5));
        let serial = detector.scan(&layout, &config).unwrap();
        let stats = serial.cascade.unwrap();
        assert_eq!(stats.cleared + stats.forwarded, serial.windows.len());
        assert_eq!(serial.cnn_evals, stats.forwarded);
        for (c, p) in serial.windows.iter().zip(plain.windows.iter()) {
            match c.stage {
                // The pin: every CNN-scored window is bit-identical to
                // the full scan.
                ScanStage::Cnn => assert_eq!(c.score.to_bits(), p.score.to_bits()),
                ScanStage::Prefilter => {
                    assert_eq!(c.score, 0.0);
                    assert!(!c.hotspot);
                }
            }
        }
        // Cascade decisions and scores are thread-count invariant.
        for workers in [2usize, 3, 7] {
            detector.set_parallelism(Parallelism::fixed(workers).unwrap());
            let tiled = detector.scan(&layout, &config).unwrap();
            assert_eq!(tiled.cnn_evals, serial.cnn_evals, "workers {workers}");
            assert_eq!(tiled.cascade, serial.cascade);
            assert_eq!(tiled.cache, serial.cache);
            assert_eq!(tiled.regions, serial.regions);
            for (a, b) in tiled.windows.iter().zip(serial.windows.iter()) {
                assert_eq!(a.stage, b.stage);
                assert_eq!(a.score.to_bits(), b.score.to_bits());
                assert_eq!(a.margin.unwrap().to_bits(), b.margin.unwrap().to_bits());
            }
        }
    }

    #[test]
    fn band_ranges_partition_contiguously() {
        assert_eq!(band_ranges(7, 3), vec![(0, 3), (3, 5), (5, 7)]);
        assert_eq!(band_ranges(2, 5), vec![(0, 1), (1, 2)]);
        assert_eq!(band_ranges(1, 4), vec![(0, 1)]);
        assert_eq!(band_ranges(6, 1), vec![(0, 6)]);
        // Degenerate zero-row grid still yields one (empty) band, which
        // the scan never hits (layouts hold at least one window row).
        assert_eq!(band_ranges(0, 3), vec![(0, 0)]);
    }

    /// Tiled multithreaded scans must equal the serial scan exactly:
    /// same score bits, same flagged windows, same regions in the same
    /// order, same cache totals — at a block-aligned stride and an
    /// unaligned one, with regions spanning band seams (threshold 0 makes
    /// every window positive, so one region crosses every seam).
    #[test]
    fn banded_scan_is_thread_count_invariant() {
        use crate::Parallelism;
        let layout = LayoutSpec::uniform(2, 2, 23).build(); // 2400×2400 nm
        for stride in [200, 150] {
            let mut detector = tiny_detector();
            detector.set_parallelism(Parallelism::serial());
            let config = tiny_config(stride).with_threshold(0.0).unwrap();
            let serial = detector.scan(&layout, &config).unwrap();
            assert_eq!(serial.threads, 1);
            for workers in [2usize, 3, 7, 64] {
                detector.set_parallelism(Parallelism::fixed(workers).unwrap());
                let tiled = detector.scan(&layout, &config).unwrap();
                assert_eq!(tiled.threads, workers.min(serial.grid_rows));
                assert_eq!(
                    tiled.cache, serial.cache,
                    "stride {stride} workers {workers}"
                );
                assert_eq!(tiled.windows.len(), serial.windows.len());
                for (a, b) in tiled.windows.iter().zip(serial.windows.iter()) {
                    assert_eq!(a.x_nm, b.x_nm);
                    assert_eq!(a.y_nm, b.y_nm);
                    assert_eq!(a.hotspot, b.hotspot);
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "stride {stride} workers {workers} window ({}, {})",
                        a.x_nm,
                        a.y_nm
                    );
                }
                assert_eq!(
                    tiled.regions, serial.regions,
                    "stride {stride} workers {workers}"
                );
                // Threshold 0 flags everything: the single merged region
                // spans every band seam.
                assert_eq!(tiled.regions.len(), 1);
            }
        }
    }

    /// A layout exactly one window tall cannot be split: any worker count
    /// resolves to a single band.
    #[test]
    fn single_row_layout_stays_one_band() {
        use crate::Parallelism;
        let mut detector = tiny_detector();
        detector.set_parallelism(Parallelism::fixed(8).unwrap());
        let layout = LayoutSpec::uniform(2, 1, 9).build(); // 2400×1200 nm
                                                           // A 1200 nm window spans the full layout height: one window row.
        let config = ScanConfig::new(400).unwrap().with_window_nm(1200).unwrap();
        let report = detector.scan(&layout, &config).unwrap();
        assert_eq!(report.grid_rows, 1);
        assert_eq!(report.threads, 1);
        assert!(report.prepare_s >= 0.0 && report.scan_s >= 0.0 && report.merge_s >= 0.0);
    }

    #[test]
    fn flush_positions_cover_the_far_edge() {
        // Extent 1000, window 400, stride 300: 0, 300, 600 fit; flush 600
        // already present. Stride 250: 0, 250, 500 + flush 600.
        assert_eq!(axis_positions(1000, 400, 300), vec![0, 300, 600]);
        assert_eq!(axis_positions(1000, 400, 250), vec![0, 250, 500, 600]);
        assert_eq!(axis_positions(400, 400, 100), vec![0]);
    }
}
