//! Decision-boundary shifting (paper Eq. (11)) — the naive alternative to
//! biased learning.

use crate::mgd::predict_hotspot_prob;
use hotspot_nn::{Network, Tensor};

/// Predicts hotspots with a shifted decision boundary: `F ∈ H` iff
/// `y(1) > 0.5 - λ` (Eq. (11)). `λ = 0` is the standard rule; larger λ
/// trades false alarms for accuracy *without retraining* — the strategy
/// Figure 4 shows to be inferior to biased learning.
pub fn predict_with_shift(net: &Network, features: &[Tensor], lambda: f32) -> Vec<bool> {
    let threshold = 0.5 - lambda;
    features
        .iter()
        .map(|f| predict_hotspot_prob(net, f) > threshold)
        .collect()
}

/// Finds the smallest shift λ (over a grid of `steps` values in
/// `[0, 0.5)`) whose hotspot recall reaches `target_accuracy`, returning
/// `(λ, achieved accuracy, false alarms)`.
///
/// Used by the Figure-4 experiment to match the boundary-shifted baseline
/// to each biased model's accuracy before comparing false alarms. Returns
/// the largest-λ result even when the target is unreachable (recall is
/// monotone in λ, so that is the best achievable).
///
/// # Panics
///
/// Panics if `features` and `labels` differ in length or `steps == 0`.
pub fn shift_for_accuracy(
    net: &Network,
    features: &[Tensor],
    labels: &[bool],
    target_accuracy: f64,
    steps: usize,
) -> (f32, f64, usize) {
    assert_eq!(features.len(), labels.len(), "feature/label mismatch");
    assert!(steps > 0, "steps must be nonzero");
    // Score once; sweep thresholds over the cached probabilities.
    let probs: Vec<f32> = features
        .iter()
        .map(|f| predict_hotspot_prob(net, f))
        .collect();
    let hotspot_total = labels.iter().filter(|&&l| l).count().max(1);
    let mut last = (0.0f32, 0.0f64, 0usize);
    for s in 0..steps {
        let lambda = 0.5 * s as f32 / steps as f32;
        let threshold = 0.5 - lambda;
        let mut hits = 0usize;
        let mut fas = 0usize;
        for (&p, &l) in probs.iter().zip(labels.iter()) {
            if p > threshold {
                if l {
                    hits += 1;
                } else {
                    fas += 1;
                }
            }
        }
        let acc = hits as f64 / hotspot_total as f64;
        last = (lambda, acc, fas);
        if acc >= target_accuracy {
            return last;
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::Dense;
    use hotspot_nn::Layer;

    /// A 1-feature "network" whose hotspot probability is sigmoid-ish in
    /// the input: logits = [0, w·x].
    fn scoring_net() -> Network {
        let mut net = Network::new();
        let mut d = Dense::new(1, 2, 0);
        let mut call = 0;
        d.visit_params(&mut |w, _| {
            if call == 0 {
                w.copy_from_slice(&[0.0, 4.0]); // logit_h = 4x
            } else {
                w.copy_from_slice(&[0.0, 0.0]);
            }
            call += 1;
        });
        net.push(d);
        net
    }

    fn data() -> (Vec<Tensor>, Vec<bool>) {
        // Hotspots at high x, with two "hard" hotspots at slightly negative
        // x that a 0.5 threshold misses.
        let xs = [-1.0f32, -0.6, -0.25, -0.1, 0.2, 0.5, 1.0];
        let labels = [false, false, true, true, true, true, true];
        (
            xs.iter()
                .map(|&x| Tensor::from_vec(vec![1], vec![x]))
                .collect(),
            labels.to_vec(),
        )
    }

    #[test]
    fn lambda_zero_is_standard_rule() {
        let (features, labels) = data();
        let net = scoring_net();
        let preds = predict_with_shift(&net, &features, 0.0);
        // p > 0.5 iff x > 0.
        assert_eq!(preds, vec![false, false, false, false, true, true, true]);
        let _ = labels;
    }

    #[test]
    fn larger_lambda_flags_more() {
        let (features, _) = data();
        let net = scoring_net();
        let count = |l: f32| {
            predict_with_shift(&net, &features, l)
                .iter()
                .filter(|&&p| p)
                .count()
        };
        assert!(count(0.0) <= count(0.2));
        assert!(count(0.2) <= count(0.45));
    }

    #[test]
    fn shift_search_reaches_target() {
        let (features, labels) = data();
        let net = scoring_net();
        let (lambda, acc, fas) = shift_for_accuracy(&net, &features, &labels, 1.0, 100);
        assert!(acc >= 1.0, "full recall reachable, got {acc}");
        assert!(lambda > 0.0);
        // Catching x = -0.25 (p = sigmoid(-1) ≈ 0.27) costs flagging
        // nothing else here: the nearest non-hotspot sits at x = -0.6.
        assert_eq!(fas, 0);
    }

    #[test]
    fn unreachable_target_returns_best() {
        // All-negative scores and a hotspot that can never cross: acc
        // capped below the target.
        let (features, labels) = data();
        let net = scoring_net();
        let (lambda, acc, _) = shift_for_accuracy(&net, &features, &labels, 2.0, 50);
        assert!(acc <= 1.0);
        assert!(lambda >= 0.49 - 1e-6);
    }

    #[test]
    fn false_alarms_grow_with_recall_target() {
        // A non-hotspot scoring *above* the hardest hotspot: reaching full
        // recall must flag it.
        let xs = [-1.0f32, -0.1, -0.2, 0.4, 1.0];
        let labels = vec![false, false, true, true, true];
        let features: Vec<Tensor> = xs
            .iter()
            .map(|&x| Tensor::from_vec(vec![1], vec![x]))
            .collect();
        let net = scoring_net();
        let (_, _, fa_low) = shift_for_accuracy(&net, &features, &labels, 0.66, 100);
        let (_, _, fa_high) = shift_for_accuracy(&net, &features, &labels, 1.0, 100);
        assert!(fa_high >= fa_low);
        assert!(fa_high >= 1, "full recall must flag the -0.1 non-hotspot");
    }
}
