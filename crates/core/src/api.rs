//! Versioned wire/API schema (v1) shared by the CLI scan report and the
//! `hotspot serve` daemon.
//!
//! One schema, two transports: `hotspot scan --report` writes a
//! [`ScanReport`] rendered by [`scan_report_json`] to a file, and the
//! daemon embeds the *same* rendering in its `scan` response — so a
//! report consumer never has to care whether JSON came from a file or a
//! socket. Every object carries an explicit `"v": 1` field; consumers
//! reject other versions instead of misreading future layouts.
//!
//! The wire protocol is newline-delimited JSON over a Unix domain
//! socket: one request object per line in, one response object per line
//! out, matched by the client-chosen `"id"` string. Requests are parsed
//! by [`Request::parse`]; responses are rendered by the `render`
//! methods here and parsed back (for the CLI client and tests) by the
//! matching `parse` methods.
//!
//! Everything is hand-rolled on a small recursive-descent JSON parser
//! ([`Json`]) — the vendored `serde` is an offline stub, and the wire
//! types are few enough that explicit code beats a derive. Numbers are
//! kept as raw source tokens ([`Json::Num`]) so an `f32` score rendered
//! with Rust's shortest-round-trip `{}` formatting parses back
//! *bit-identical* via `str::parse::<f32>()` — no intermediate `f64`
//! double rounding.

use crate::scan::ScanReport;
use hotspot_geometry::{Clip, Rect};
use std::fmt;

/// Wire/schema version stamped into every request, response, and report.
pub const WIRE_VERSION: u32 = 1;

/// Parser recursion limit; the wire types nest 4-5 levels deep, so 32
/// rejects hostile deeply-nested input long before the stack feels it.
const MAX_DEPTH: usize = 32;

// ---------------------------------------------------------------------------
// JSON values
// ---------------------------------------------------------------------------

/// A parsed JSON value.
///
/// Numbers stay raw source tokens so callers choose the decode type
/// (`f32` scores keep bit-exactness; `u64` CRCs never round).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its validated source token.
    Num(String),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are rejected).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document; trailing non-whitespace is an
    /// error.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Decodes a number token as `f32` — directly from the source token,
    /// so values rendered with [`render_f32`] round-trip bit-identically.
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Decodes a number token as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Decodes a number token as `u64` (rejects fractions and signs).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// Decodes a number token as `i64` (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(tok) => tok.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH}"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(bytes, pos, depth),
        Some(b'[') => parse_arr(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one leading zero, or a nonzero digit run.
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return Err(format!("malformed number at byte {start}")),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("malformed number at byte {start}"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            return Err(format!("malformed number at byte {start}"));
        }
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    // Every byte accepted above is ASCII, so the token is valid UTF-8.
    match std::str::from_utf8(&bytes[start..*pos]) {
        Ok(tok) => Ok(Json::Num(tok.to_string())),
        Err(_) => unreachable!("number token contains only ASCII digits, sign, dot, exponent"),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates are rejected rather than paired; the
                        // wire never emits them.
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(format!("unescaped control byte at {}", *pos));
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so boundaries
                // are valid).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| "invalid UTF-8")?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut fields: Vec<(String, Json)> = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate key '{key}'"));
        }
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering primitives
// ---------------------------------------------------------------------------

/// Renders a string as a JSON string literal with the mandatory escapes.
pub fn render_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an `f32` as a JSON number using Rust's shortest-round-trip
/// formatting, so parsing the token back with `str::parse::<f32>()`
/// recovers the exact bits. Non-finite values map to `null` — JSON has
/// no infinity literal.
pub fn render_f32(v: f32) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Renders an `f32` with fixed 6-decimal precision (the scan-report
/// style: human-scannable, stable across runs), `null` when non-finite.
pub fn render_f32_fixed(v: f32) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Renders an `f64` with fixed 6-decimal precision, `null` when
/// non-finite.
pub fn render_f64_fixed(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

// ---------------------------------------------------------------------------
// Model provenance
// ---------------------------------------------------------------------------

/// Which exact weights produced a result: the model file's CRC-32 and
/// format version, plus the cascade prefilter payload checksum when one
/// was loaded. Embedded in every scan report and daemon response so any
/// output can be traced to the bytes that generated it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelProvenance {
    /// The model file's CRC-32 (IEEE) — the `crc` header line of the
    /// `hsmodel` file.
    pub model_crc: u32,
    /// The model file format version (`hsmodel <version>`).
    pub model_version: u32,
    /// CRC-32 of the serialised cascade prefilter, when the run loaded
    /// one.
    pub cascade_crc: Option<u32>,
}

impl ModelProvenance {
    /// Renders as a JSON object (`{"model_crc": "0x...", ...}`). CRCs are
    /// hex strings — the format operators see in the model header.
    pub fn render(&self) -> String {
        let cascade = match self.cascade_crc {
            Some(crc) => format!("\"{crc:#010x}\""),
            None => "null".into(),
        };
        format!(
            "{{\"model_crc\": \"{:#010x}\", \"model_version\": {}, \"cascade_crc\": {cascade}}}",
            self.model_crc, self.model_version
        )
    }

    /// Parses the object rendered by [`ModelProvenance::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let crc_field = |key: &str| -> Result<u32, String> {
            let s = v
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format!("provenance missing '{key}'"))?;
            u32::from_str_radix(s.strip_prefix("0x").unwrap_or(s), 16)
                .map_err(|_| format!("provenance '{key}' is not a hex crc"))
        };
        let model_crc = crc_field("model_crc")?;
        let model_version = v
            .get("model_version")
            .and_then(Json::as_u64)
            .ok_or("provenance missing 'model_version'")? as u32;
        let cascade_crc = match v.get("cascade_crc") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(
                u32::from_str_radix(s.strip_prefix("0x").unwrap_or(s), 16)
                    .map_err(|_| "provenance 'cascade_crc' is not a hex crc".to_string())?,
            ),
            Some(_) => return Err("provenance 'cascade_crc' must be a string or null".into()),
        };
        Ok(ModelProvenance {
            model_crc,
            model_version,
            cascade_crc,
        })
    }
}

// ---------------------------------------------------------------------------
// Clip wire form
// ---------------------------------------------------------------------------

/// A clip in wire form: the window rectangle plus its shapes, each as
/// `[x0, y0, x1, y1]` nm (low-inclusive, high-exclusive — the
/// [`Rect::new`] convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClipSpec {
    /// Window `[x0, y0, x1, y1]`, nm.
    pub window: [i64; 4],
    /// Shape rectangles, same encoding.
    pub rects: Vec<[i64; 4]>,
}

impl ClipSpec {
    /// Captures a geometry clip.
    pub fn from_clip(clip: &Clip) -> Self {
        let enc = |r: Rect| [r.lo().x, r.lo().y, r.hi().x, r.hi().y];
        ClipSpec {
            window: enc(clip.window()),
            rects: clip.shapes().iter().map(|&r| enc(r)).collect(),
        }
    }

    /// Rebuilds the geometry clip.
    ///
    /// # Errors
    ///
    /// Returns a description for degenerate (empty) rectangles.
    pub fn to_clip(&self) -> Result<Clip, String> {
        let dec = |c: &[i64; 4]| {
            Rect::new(c[0], c[1], c[2], c[3]).map_err(|e| {
                format!(
                    "degenerate rect [{}, {}, {}, {}]: {e}",
                    c[0], c[1], c[2], c[3]
                )
            })
        };
        let mut clip = Clip::new(dec(&self.window)?);
        for r in &self.rects {
            clip.push(dec(r)?);
        }
        Ok(clip)
    }

    /// Renders as `{"window": [...], "rects": [[...], ...]}`.
    pub fn render(&self) -> String {
        let enc = |c: &[i64; 4]| format!("[{}, {}, {}, {}]", c[0], c[1], c[2], c[3]);
        let rects: Vec<String> = self.rects.iter().map(&enc).collect();
        format!(
            "{{\"window\": {}, \"rects\": [{}]}}",
            enc(&self.window),
            rects.join(", ")
        )
    }

    /// Parses the object rendered by [`ClipSpec::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let quad = |v: &Json, what: &str| -> Result<[i64; 4], String> {
            let items = v
                .as_arr()
                .ok_or_else(|| format!("{what} must be an array"))?;
            if items.len() != 4 {
                return Err(format!("{what} must have 4 coordinates"));
            }
            let mut out = [0i64; 4];
            for (slot, item) in out.iter_mut().zip(items) {
                *slot = item
                    .as_i64()
                    .ok_or_else(|| format!("{what} coordinates must be integers"))?;
            }
            Ok(out)
        };
        let window = quad(v.get("window").ok_or("clip missing 'window'")?, "window")?;
        let rects = match v.get("rects") {
            None => Vec::new(),
            Some(list) => {
                let items = list.as_arr().ok_or("'rects' must be an array")?;
                items
                    .iter()
                    .map(|r| quad(r, "rect"))
                    .collect::<Result<Vec<_>, _>>()?
            }
        };
        Ok(ClipSpec { window, rects })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Machine-readable error category carried in every [`ErrorReply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request line was not valid JSON or not a valid request shape.
    Parse,
    /// The request declared an unsupported schema version.
    Version,
    /// The micro-batching queue was full; retry later.
    Busy,
    /// A model could not be loaded, or mismatched the serving plan.
    Model,
    /// The request was well-formed but its payload was unusable
    /// (degenerate geometry, wrong clip size for the pipeline...).
    Data,
    /// The server is draining for shutdown and accepts no new work.
    Shutdown,
    /// An unexpected server-side failure.
    Internal,
}

impl ErrorKind {
    /// Stable lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::Version => "version",
            ErrorKind::Busy => "busy",
            ErrorKind::Model => "model",
            ErrorKind::Data => "data",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorKind::as_str`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "parse" => ErrorKind::Parse,
            "version" => ErrorKind::Version,
            "busy" => ErrorKind::Busy,
            "model" => ErrorKind::Model,
            "data" => ErrorKind::Data,
            "shutdown" => ErrorKind::Shutdown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }
}

/// A request-level failure: the kind routes client behaviour (retry on
/// `busy`, give up on `parse`), the message explains it to a human.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// Machine-readable category.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// Convenience constructor.
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        ApiError {
            kind,
            message: message.into(),
        }
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.as_str(), self.message)
    }
}

/// `{"v": 1, "id": ..., "op": "predict", "clips": [...], ...}`.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictRequest {
    /// Client-chosen request ID, echoed in the response.
    pub id: String,
    /// Clips to score, in response order.
    pub clips: Vec<ClipSpec>,
    /// Decision threshold (default 0.5).
    pub threshold: f32,
}

/// `{"v": 1, "id": ..., "op": "scan", "layout": {...}, ...}`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanRequest {
    /// Client-chosen request ID, echoed in the response.
    pub id: String,
    /// The layout to scan, as one (large) clip.
    pub layout: ClipSpec,
    /// Window step, nm (default 600).
    pub stride_nm: i64,
    /// Window side, nm (default 1200).
    pub window_nm: i64,
    /// Decision threshold (default 0.5).
    pub threshold: f32,
    /// Whether to include the per-window score list in the response
    /// report (default true; large layouts may want summaries only).
    pub include_windows: bool,
}

/// `{"v": 1, "id": ..., "op": "reload", "model_path": ..., ...}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadRequest {
    /// Client-chosen request ID, echoed in the response.
    pub id: String,
    /// Path to the `hsmodel` file to serve from now on.
    pub model_path: String,
    /// Optional path to an `hsprefilter` cascade to serve with it.
    pub cascade_path: Option<String>,
}

/// One parsed daemon request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Score a batch of clips.
    Predict(PredictRequest),
    /// Scan a full layout.
    Scan(ScanRequest),
    /// Report serving counters and the live model's provenance.
    Status {
        /// Client-chosen request ID, echoed in the response.
        id: String,
    },
    /// Swap the served model (and optionally cascade) without downtime.
    Reload(ReloadRequest),
    /// Drain the queue and exit.
    Shutdown {
        /// Client-chosen request ID, echoed in the response.
        id: String,
    },
}

impl Request {
    /// The request's ID (echoed into replies).
    pub fn id(&self) -> &str {
        match self {
            Request::Predict(r) => &r.id,
            Request::Scan(r) => &r.id,
            Request::Status { id } => id,
            Request::Reload(r) => &r.id,
            Request::Shutdown { id } => id,
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// [`ErrorKind::Parse`] for malformed JSON or a malformed request
    /// shape; [`ErrorKind::Version`] when `"v"` is missing or not
    /// [`WIRE_VERSION`]. The error carries the request ID when one was
    /// recoverable from the line, so the reply can still be correlated.
    pub fn parse(line: &str) -> Result<Request, (Option<String>, ApiError)> {
        let v = Json::parse(line).map_err(|e| {
            (
                None,
                ApiError::new(ErrorKind::Parse, format!("bad JSON: {e}")),
            )
        })?;
        let id = v.get("id").and_then(Json::as_str).map(str::to_string);
        match v.get("v").and_then(Json::as_u64) {
            Some(ver) if ver == u64::from(WIRE_VERSION) => {}
            Some(ver) => {
                return Err((
                    id,
                    ApiError::new(
                        ErrorKind::Version,
                        format!("unsupported schema version {ver} (expected {WIRE_VERSION})"),
                    ),
                ))
            }
            None => {
                return Err((
                    id,
                    ApiError::new(ErrorKind::Version, "missing schema version field 'v'"),
                ))
            }
        }
        let id = match id {
            Some(id) if !id.is_empty() => id,
            _ => {
                return Err((
                    None,
                    ApiError::new(ErrorKind::Parse, "missing or empty request 'id' string"),
                ))
            }
        };
        let fail1 = |msg: String| (Some(id.clone()), ApiError::new(ErrorKind::Parse, msg));
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| fail1("missing request 'op' string".into()))?;
        match op {
            "predict" => {
                let clips_json = v
                    .get("clips")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| fail1("predict needs a 'clips' array".into()))?;
                if clips_json.is_empty() {
                    return Err(fail1("predict 'clips' must be non-empty".into()));
                }
                let clips = clips_json
                    .iter()
                    .map(ClipSpec::from_json)
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| fail1(format!("bad clip: {e}")))?;
                let threshold = match v.get("threshold") {
                    None => 0.5,
                    Some(t) => t
                        .as_f32()
                        .filter(|t| (0.0..=1.0).contains(t))
                        .ok_or_else(|| fail1("'threshold' must be a number in [0, 1]".into()))?,
                };
                Ok(Request::Predict(PredictRequest {
                    id,
                    clips,
                    threshold,
                }))
            }
            "scan" => {
                let layout = ClipSpec::from_json(
                    v.get("layout")
                        .ok_or_else(|| fail1("scan needs a 'layout' clip object".into()))?,
                )
                .map_err(|e| fail1(format!("bad layout: {e}")))?;
                let int_field = |key: &str, default: i64| -> Result<i64, _> {
                    match v.get(key) {
                        None => Ok(default),
                        Some(t) => t
                            .as_i64()
                            .filter(|&t| t > 0)
                            .ok_or_else(|| fail1(format!("'{key}' must be a positive integer"))),
                    }
                };
                let stride_nm = int_field("stride_nm", 600)?;
                let window_nm = int_field("window_nm", 1200)?;
                let threshold = match v.get("threshold") {
                    None => 0.5,
                    Some(t) => t
                        .as_f32()
                        .filter(|t| (0.0..=1.0).contains(t))
                        .ok_or_else(|| fail1("'threshold' must be a number in [0, 1]".into()))?,
                };
                let include_windows = match v.get("include_windows") {
                    None => true,
                    Some(t) => t
                        .as_bool()
                        .ok_or_else(|| fail1("'include_windows' must be a boolean".into()))?,
                };
                Ok(Request::Scan(ScanRequest {
                    id,
                    layout,
                    stride_nm,
                    window_nm,
                    threshold,
                    include_windows,
                }))
            }
            "status" => Ok(Request::Status { id }),
            "reload" => {
                let model_path = v
                    .get("model_path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| fail1("reload needs a 'model_path' string".into()))?
                    .to_string();
                let cascade_path = match v.get("cascade_path") {
                    None | Some(Json::Null) => None,
                    Some(p) => Some(
                        p.as_str()
                            .ok_or_else(|| fail1("'cascade_path' must be a string".into()))?
                            .to_string(),
                    ),
                };
                Ok(Request::Reload(ReloadRequest {
                    id,
                    model_path,
                    cascade_path,
                }))
            }
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err(fail1(format!(
                "unknown op '{other}' (predict|scan|status|reload|shutdown)"
            ))),
        }
    }

    /// Renders the request as one wire line (used by the CLI client and
    /// the load generator; the daemon only parses).
    pub fn render(&self) -> String {
        match self {
            Request::Predict(r) => {
                let clips: Vec<String> = r.clips.iter().map(ClipSpec::render).collect();
                format!(
                    "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"op\": \"predict\", \"threshold\": {}, \"clips\": [{}]}}",
                    render_str(&r.id),
                    render_f32(r.threshold),
                    clips.join(", ")
                )
            }
            Request::Scan(r) => format!(
                "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"op\": \"scan\", \"stride_nm\": {}, \"window_nm\": {}, \"threshold\": {}, \"include_windows\": {}, \"layout\": {}}}",
                render_str(&r.id),
                r.stride_nm,
                r.window_nm,
                render_f32(r.threshold),
                r.include_windows,
                r.layout.render()
            ),
            Request::Status { id } => format!(
                "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"op\": \"status\"}}",
                render_str(id)
            ),
            Request::Reload(r) => {
                let cascade = match &r.cascade_path {
                    Some(p) => render_str(p),
                    None => "null".into(),
                };
                format!(
                    "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"op\": \"reload\", \"model_path\": {}, \"cascade_path\": {cascade}}}",
                    render_str(&r.id),
                    render_str(&r.model_path)
                )
            }
            Request::Shutdown { id } => format!(
                "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"op\": \"shutdown\"}}",
                render_str(id)
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Successful `predict` reply: per-clip scores (bit-exact round-trip)
/// and verdicts, plus the provenance of the weights that produced them.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictResponse {
    /// Echo of the request ID.
    pub id: String,
    /// Per-clip hotspot probabilities, request order.
    pub scores: Vec<f32>,
    /// `score > threshold` per clip.
    pub hotspots: Vec<bool>,
    /// Threshold the verdicts used.
    pub threshold: f32,
    /// How many clips the serving GEMM block scored together (this
    /// request's clips plus any coalesced neighbours).
    pub batched: usize,
    /// Weights that produced the scores.
    pub model: ModelProvenance,
}

impl PredictResponse {
    /// Renders as one wire line.
    pub fn render(&self) -> String {
        let scores: Vec<String> = self.scores.iter().map(|&s| render_f32(s)).collect();
        let hotspots: Vec<String> = self.hotspots.iter().map(|h| h.to_string()).collect();
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"predict\", \"scores\": [{}], \"hotspots\": [{}], \"threshold\": {}, \"batched\": {}, \"model\": {}}}",
            render_str(&self.id),
            scores.join(", "),
            hotspots.join(", "),
            render_f32(self.threshold),
            self.batched,
            self.model.render()
        )
    }

    /// Parses a line rendered by [`PredictResponse::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse_ok_response(line, "predict")?;
        let scores = v
            .get("scores")
            .and_then(Json::as_arr)
            .ok_or("missing 'scores' array")?
            .iter()
            .map(|s| s.as_f32().ok_or("score is not a number"))
            .collect::<Result<Vec<_>, _>>()?;
        let hotspots = v
            .get("hotspots")
            .and_then(Json::as_arr)
            .ok_or("missing 'hotspots' array")?
            .iter()
            .map(|h| h.as_bool().ok_or("hotspot flag is not a boolean"))
            .collect::<Result<Vec<_>, _>>()?;
        if scores.len() != hotspots.len() {
            return Err("scores/hotspots length mismatch".into());
        }
        Ok(PredictResponse {
            id: response_id(&v)?,
            scores,
            hotspots,
            threshold: v
                .get("threshold")
                .and_then(Json::as_f32)
                .ok_or("missing 'threshold'")?,
            batched: v
                .get("batched")
                .and_then(Json::as_u64)
                .ok_or("missing 'batched'")? as usize,
            model: ModelProvenance::from_json(v.get("model").ok_or("missing 'model'")?)?,
        })
    }
}

/// Successful `scan` reply: the full report object (same schema as the
/// `--report` file) under `"report"`.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanResponse {
    /// Echo of the request ID.
    pub id: String,
    /// The scan result; rendered via [`scan_report_json`].
    pub report: ScanReport,
}

impl ScanResponse {
    /// Renders as one wire line; `include_windows: false` drops the
    /// per-window list from the embedded report.
    pub fn render(&self, include_windows: bool) -> String {
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"scan\", \"report\": {}}}",
            render_str(&self.id),
            scan_report_json_opts(&self.report, include_windows)
        )
    }
}

/// Successful `status` reply: live provenance plus serving counters.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusResponse {
    /// Echo of the request ID.
    pub id: String,
    /// Weights currently being served.
    pub model: ModelProvenance,
    /// Seconds the daemon has been up.
    pub uptime_s: f64,
    /// Serving counters.
    pub counters: ServeCounters,
}

/// Monotonic serving counters reported by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Requests accepted (all ops).
    pub requests: u64,
    /// Predict requests completed.
    pub predicts: u64,
    /// Clips scored across all predicts.
    pub clips: u64,
    /// Scan requests completed.
    pub scans: u64,
    /// Successful reloads.
    pub reloads: u64,
    /// Error replies sent.
    pub errors: u64,
    /// Requests refused with `busy` (queue full).
    pub rejected_busy: u64,
    /// Micro-batch cycles the batcher ran.
    pub batches: u64,
    /// Largest number of clips one micro-batch scored together.
    pub max_batch: u64,
}

impl StatusResponse {
    /// Renders as one wire line.
    pub fn render(&self) -> String {
        let c = &self.counters;
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"status\", \"uptime_s\": {}, \"model\": {}, \"counters\": {{\"requests\": {}, \"predicts\": {}, \"clips\": {}, \"scans\": {}, \"reloads\": {}, \"errors\": {}, \"rejected_busy\": {}, \"batches\": {}, \"max_batch\": {}}}}}",
            render_str(&self.id),
            render_f64_fixed(self.uptime_s),
            self.model.render(),
            c.requests,
            c.predicts,
            c.clips,
            c.scans,
            c.reloads,
            c.errors,
            c.rejected_busy,
            c.batches,
            c.max_batch
        )
    }

    /// Parses a line rendered by [`StatusResponse::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse_ok_response(line, "status")?;
        let counters = v.get("counters").ok_or("missing 'counters'")?;
        let field = |key: &str| -> Result<u64, String> {
            counters
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing counter '{key}'"))
        };
        Ok(StatusResponse {
            id: response_id(&v)?,
            model: ModelProvenance::from_json(v.get("model").ok_or("missing 'model'")?)?,
            uptime_s: v
                .get("uptime_s")
                .and_then(Json::as_f64)
                .ok_or("missing 'uptime_s'")?,
            counters: ServeCounters {
                requests: field("requests")?,
                predicts: field("predicts")?,
                clips: field("clips")?,
                scans: field("scans")?,
                reloads: field("reloads")?,
                errors: field("errors")?,
                rejected_busy: field("rejected_busy")?,
                batches: field("batches")?,
                max_batch: field("max_batch")?,
            },
        })
    }
}

/// Successful `reload` reply: the provenance now being served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadResponse {
    /// Echo of the request ID.
    pub id: String,
    /// The freshly loaded weights.
    pub model: ModelProvenance,
}

impl ReloadResponse {
    /// Renders as one wire line.
    pub fn render(&self) -> String {
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"reload\", \"model\": {}}}",
            render_str(&self.id),
            self.model.render()
        )
    }

    /// Parses a line rendered by [`ReloadResponse::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse_ok_response(line, "reload")?;
        Ok(ReloadResponse {
            id: response_id(&v)?,
            model: ModelProvenance::from_json(v.get("model").ok_or("missing 'model'")?)?,
        })
    }
}

/// Successful `shutdown` acknowledgement, sent after the queue drained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownResponse {
    /// Echo of the request ID.
    pub id: String,
}

impl ShutdownResponse {
    /// Renders as one wire line.
    pub fn render(&self) -> String {
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {}, \"ok\": true, \"op\": \"shutdown\"}}",
            render_str(&self.id)
        )
    }
}

/// Structured error reply: `{"v": 1, "id": ..., "ok": false, "error":
/// {"kind": ..., "message": ...}}`. `id` is `null` when the failure
/// prevented recovering one (e.g. unparseable JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorReply {
    /// Echo of the request ID when recoverable.
    pub id: Option<String>,
    /// What went wrong.
    pub error: ApiError,
}

impl ErrorReply {
    /// Convenience constructor.
    pub fn new(id: Option<String>, kind: ErrorKind, message: impl Into<String>) -> Self {
        ErrorReply {
            id,
            error: ApiError::new(kind, message),
        }
    }

    /// Renders as one wire line.
    pub fn render(&self) -> String {
        let id = match &self.id {
            Some(id) => render_str(id),
            None => "null".into(),
        };
        format!(
            "{{\"v\": {WIRE_VERSION}, \"id\": {id}, \"ok\": false, \"error\": {{\"kind\": \"{}\", \"message\": {}}}}}",
            self.error.kind.as_str(),
            render_str(&self.error.message)
        )
    }

    /// Parses a line rendered by [`ErrorReply::render`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
        check_version(&v)?;
        if v.get("ok").and_then(Json::as_bool) != Some(false) {
            return Err("not an error reply ('ok' is not false)".into());
        }
        let id = match v.get("id") {
            None | Some(Json::Null) => None,
            Some(Json::Str(s)) => Some(s.clone()),
            Some(_) => return Err("'id' must be a string or null".into()),
        };
        let error = v.get("error").ok_or("missing 'error'")?;
        let kind = error
            .get("kind")
            .and_then(Json::as_str)
            .and_then(ErrorKind::from_name)
            .ok_or("missing or unknown error 'kind'")?;
        let message = error
            .get("message")
            .and_then(Json::as_str)
            .ok_or("missing error 'message'")?
            .to_string();
        Ok(ErrorReply {
            id,
            error: ApiError { kind, message },
        })
    }
}

/// Checks the `"v"` field of a parsed response object.
fn check_version(v: &Json) -> Result<(), String> {
    match v.get("v").and_then(Json::as_u64) {
        Some(ver) if ver == u64::from(WIRE_VERSION) => Ok(()),
        Some(ver) => Err(format!("unsupported response version {ver}")),
        None => Err("response missing schema version 'v'".into()),
    }
}

/// Parses and validates the common envelope of a successful response.
fn parse_ok_response(line: &str, op: &str) -> Result<Json, String> {
    let v = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    check_version(&v)?;
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {}
        _ => {
            // Surface the server's own error message when this is a
            // well-formed error reply.
            if let Ok(err) = ErrorReply::parse(line) {
                return Err(format!("server error ({})", err.error));
            }
            return Err("response 'ok' is not true".into());
        }
    }
    match v.get("op").and_then(Json::as_str) {
        Some(actual) if actual == op => Ok(v),
        Some(actual) => Err(format!("expected op '{op}', got '{actual}'")),
        None => Err("response missing 'op'".into()),
    }
}

fn response_id(v: &Json) -> Result<String, String> {
    v.get("id")
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| "response missing 'id'".into())
}

// ---------------------------------------------------------------------------
// Scan report rendering
// ---------------------------------------------------------------------------

/// Renders a [`ScanReport`] as the canonical v1 JSON object — the exact
/// bytes `hotspot scan --report` writes and the daemon embeds in its
/// `scan` response.
pub fn scan_report_json(report: &ScanReport) -> String {
    scan_report_json_opts(report, true)
}

/// [`scan_report_json`] with the per-window list optionally elided
/// (`"windows": null` signals elision, distinct from an empty scan's
/// `[]`).
pub fn scan_report_json_opts(report: &ScanReport, include_windows: bool) -> String {
    let mut s = String::with_capacity(1024 + 64 * report.windows.len());
    s.push_str(&format!("{{\"v\": {WIRE_VERSION}, "));
    match &report.provenance {
        Some(p) => s.push_str(&format!("\"provenance\": {}, ", p.render())),
        None => s.push_str("\"provenance\": null, "),
    }
    s.push_str(&format!(
        "\"layout\": {{\"width_nm\": {}, \"height_nm\": {}}}, ",
        report.layout_width_nm, report.layout_height_nm
    ));
    s.push_str(&format!(
        "\"scan\": {{\"stride_nm\": {}, \"window_nm\": {}, \"threshold\": {}, \"grid_cols\": {}, \"grid_rows\": {}}}, ",
        report.stride_nm, report.window_nm, report.threshold, report.grid_cols, report.grid_rows
    ));
    s.push_str(&format!(
        "\"cache\": {{\"blocks_computed\": {}, \"blocks_reused\": {}, \"hit_rate\": {}}}, ",
        report.cache.computed,
        report.cache.hits,
        render_f64_fixed(report.cache.hit_rate())
    ));
    s.push_str(&format!(
        "\"throughput\": {{\"windows\": {}, \"elapsed_s\": {}, \"windows_per_sec\": {:.3}, \"cnn_evals\": {}, \"cnn_evals_per_window\": {}}}, ",
        report.windows.len(),
        render_f64_fixed(report.elapsed_s),
        report.windows_per_sec(),
        report.cnn_evals,
        render_f64_fixed(report.cnn_evals_per_window())
    ));
    match &report.cascade {
        Some(c) => s.push_str(&format!(
            "\"cascade\": {{\"enabled\": true, \"margin_threshold\": {}, \"cleared\": {}, \"forwarded\": {}}}, ",
            render_f32_fixed(c.margin_threshold),
            c.cleared,
            c.forwarded
        )),
        None => s.push_str("\"cascade\": {\"enabled\": false}, "),
    }
    s.push_str(&format!(
        "\"execution\": {{\"threads\": {}, \"prepare_s\": {}, \"scan_s\": {}, \"merge_s\": {}}}, ",
        report.threads,
        render_f64_fixed(report.prepare_s),
        render_f64_fixed(report.scan_s),
        render_f64_fixed(report.merge_s)
    ));
    s.push_str(&format!("\"positives\": {}, ", report.positives()));
    s.push_str("\"regions\": [");
    for (idx, r) in report.regions.iter().enumerate() {
        if idx > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"x0_nm\": {}, \"y0_nm\": {}, \"x1_nm\": {}, \"y1_nm\": {}, \"windows\": {}, \"peak_score\": {}, \"mean_score\": {}}}",
            r.x0_nm,
            r.y0_nm,
            r.x1_nm,
            r.y1_nm,
            r.windows,
            render_f32_fixed(r.peak_score),
            render_f32_fixed(r.mean_score)
        ));
    }
    s.push_str("], ");
    if include_windows {
        s.push_str("\"windows\": [");
        for (idx, w) in report.windows.iter().enumerate() {
            if idx > 0 {
                s.push_str(", ");
            }
            let margin = match w.margin {
                Some(m) => render_f32_fixed(m),
                None => "null".into(),
            };
            s.push_str(&format!(
                "{{\"x_nm\": {}, \"y_nm\": {}, \"score\": {}, \"hotspot\": {}, \"stage\": \"{}\", \"margin\": {margin}}}",
                w.x_nm,
                w.y_nm,
                render_f32_fixed(w.score),
                w.hotspot,
                w.stage.as_str()
            ));
        }
        s.push_str("]}");
    } else {
        s.push_str("\"windows\": null}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    // -- JSON parser ------------------------------------------------------

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num("-1.5e3".into()));
        assert_eq!(
            Json::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
        let v = Json::parse("{\"a\": [1, 2], \"b\": {\"c\": null}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{'a': 1}",
            "tru",
            "nul",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "1e+",
            "--1",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"bad \\u12 escape\"",
            "{\"a\": 1} trailing",
            "[1] [2]",
            "{\"dup\": 1, \"dup\": 2}",
            "[1 2]",
            "{\"a\": 1,}",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
        // Unescaped control characters inside strings are invalid JSON.
        assert!(Json::parse("\"a\u{0}b\"").is_err());
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).unwrap_err().contains("nesting"));
        // At the limit it still parses.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        // Awkward values: subnormal, almost-1 scores, exact powers, and a
        // pseudo-random sweep over the unit interval.
        let mut values = vec![
            0.0f32,
            -0.0,
            1.0,
            0.5,
            f32::MIN_POSITIVE,
            1.0e-45,
            0.999_999_94,
            0.1,
            0.2,
            0.3,
            1.0 / 3.0,
        ];
        let mut x = 0x2545_f491u32;
        for _ in 0..500 {
            // xorshift; map to [0, 1).
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            values.push((x >> 8) as f32 / (1u32 << 24) as f32);
        }
        for v in values {
            let rendered = render_f32(v);
            let parsed = Json::parse(&rendered).unwrap().as_f32().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "round-trip broke {v:?}");
        }
        assert_eq!(render_f32(f32::NAN), "null");
        assert_eq!(render_f32(f32::INFINITY), "null");
    }

    #[test]
    fn strings_round_trip_through_escapes() {
        for s in [
            "",
            "plain",
            "with \"quotes\"",
            "tab\there",
            "new\nline",
            "back\\slash",
            "unicode ÿ✓",
        ] {
            let rendered = render_str(s);
            assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        }
    }

    // -- Wire types -------------------------------------------------------

    fn sample_clip() -> ClipSpec {
        ClipSpec {
            window: [0, 0, 1200, 1200],
            rects: vec![[10, 20, 110, 220], [400, 400, 900, 460]],
        }
    }

    #[test]
    fn clip_spec_round_trips_through_geometry_and_json() {
        let spec = sample_clip();
        let clip = spec.to_clip().unwrap();
        assert_eq!(ClipSpec::from_clip(&clip), spec);
        let parsed = ClipSpec::from_json(&Json::parse(&spec.render()).unwrap()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn clip_spec_rejects_degenerate_rects() {
        let spec = ClipSpec {
            window: [0, 0, 0, 1200],
            rects: vec![],
        };
        assert!(spec.to_clip().unwrap_err().contains("degenerate"));
    }

    #[test]
    fn predict_request_round_trips() {
        let req = Request::Predict(PredictRequest {
            id: "r-1".into(),
            clips: vec![sample_clip()],
            threshold: 0.7,
        });
        let parsed = Request::parse(&req.render()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn scan_request_round_trips_with_defaults() {
        let line = format!(
            "{{\"v\": 1, \"id\": \"s\", \"op\": \"scan\", \"layout\": {}}}",
            sample_clip().render()
        );
        match Request::parse(&line).unwrap() {
            Request::Scan(r) => {
                assert_eq!(r.stride_nm, 600);
                assert_eq!(r.window_nm, 1200);
                assert_eq!(r.threshold, 0.5);
                assert!(r.include_windows);
            }
            other => panic!("parsed {other:?}"),
        }
        let full = Request::Scan(ScanRequest {
            id: "s2".into(),
            layout: sample_clip(),
            stride_nm: 300,
            window_nm: 1200,
            threshold: 0.25,
            include_windows: false,
        });
        assert_eq!(Request::parse(&full.render()).unwrap(), full);
    }

    #[test]
    fn status_reload_shutdown_round_trip() {
        for req in [
            Request::Status { id: "q".into() },
            Request::Shutdown { id: "bye".into() },
            Request::Reload(ReloadRequest {
                id: "up".into(),
                model_path: "/tmp/m.hsnn".into(),
                cascade_path: Some("/tmp/c.hspf".into()),
            }),
            Request::Reload(ReloadRequest {
                id: "up2".into(),
                model_path: "/tmp/m.hsnn".into(),
                cascade_path: None,
            }),
        ] {
            assert_eq!(Request::parse(&req.render()).unwrap(), req);
        }
    }

    #[test]
    fn request_version_gate_is_exhaustive() {
        // Missing v.
        let (id, err) = Request::parse("{\"id\": \"a\", \"op\": \"status\"}").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Version);
        assert_eq!(id.as_deref(), Some("a"));
        // Wrong v (future version) — id still recovered for the reply.
        let (id, err) =
            Request::parse("{\"v\": 2, \"id\": \"b\", \"op\": \"status\"}").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Version);
        assert!(err.message.contains("version 2"));
        assert_eq!(id.as_deref(), Some("b"));
        // v of the wrong type.
        let (_, err) =
            Request::parse("{\"v\": \"1\", \"id\": \"c\", \"op\": \"status\"}").unwrap_err();
        assert_eq!(err.kind, ErrorKind::Version);
    }

    #[test]
    fn request_misparse_matrix() {
        // (line, expected kind, expected id echo)
        let cases: Vec<(String, ErrorKind, Option<&str>)> = vec![
            ("not json".into(), ErrorKind::Parse, None),
            ("{\"v\": 1}".into(), ErrorKind::Parse, None),
            ("{\"v\": 1, \"id\": \"\", \"op\": \"status\"}".into(), ErrorKind::Parse, None),
            ("{\"v\": 1, \"id\": 7, \"op\": \"status\"}".into(), ErrorKind::Parse, None),
            ("{\"v\": 1, \"id\": \"x\"}".into(), ErrorKind::Parse, Some("x")),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"frobnicate\"}".into(), ErrorKind::Parse, Some("x")),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"predict\"}".into(), ErrorKind::Parse, Some("x")),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"predict\", \"clips\": []}".into(), ErrorKind::Parse, Some("x")),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"predict\", \"clips\": [{}]}".into(), ErrorKind::Parse, Some("x")),
            (
                "{\"v\": 1, \"id\": \"x\", \"op\": \"predict\", \"clips\": [{\"window\": [0, 0, 10]}]}".into(),
                ErrorKind::Parse,
                Some("x"),
            ),
            (
                format!(
                    "{{\"v\": 1, \"id\": \"x\", \"op\": \"predict\", \"threshold\": 1.5, \"clips\": [{}]}}",
                    sample_clip().render()
                ),
                ErrorKind::Parse,
                Some("x"),
            ),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"scan\"}".into(), ErrorKind::Parse, Some("x")),
            (
                format!(
                    "{{\"v\": 1, \"id\": \"x\", \"op\": \"scan\", \"stride_nm\": -5, \"layout\": {}}}",
                    sample_clip().render()
                ),
                ErrorKind::Parse,
                Some("x"),
            ),
            ("{\"v\": 1, \"id\": \"x\", \"op\": \"reload\"}".into(), ErrorKind::Parse, Some("x")),
            (
                "{\"v\": 1, \"id\": \"x\", \"op\": \"reload\", \"model_path\": 3}".into(),
                ErrorKind::Parse,
                Some("x"),
            ),
        ];
        for (line, kind, want_id) in cases {
            let (id, err) = Request::parse(&line).unwrap_err();
            assert_eq!(err.kind, kind, "line {line}");
            assert_eq!(id.as_deref(), want_id, "line {line}");
        }
    }

    fn sample_provenance() -> ModelProvenance {
        ModelProvenance {
            model_crc: 0xdead_beef,
            model_version: 2,
            cascade_crc: Some(0x0000_0042),
        }
    }

    #[test]
    fn provenance_round_trips() {
        for p in [
            sample_provenance(),
            ModelProvenance {
                model_crc: 0,
                model_version: 2,
                cascade_crc: None,
            },
        ] {
            let v = Json::parse(&p.render()).unwrap();
            assert_eq!(ModelProvenance::from_json(&v).unwrap(), p);
        }
    }

    #[test]
    fn predict_response_round_trips_bit_exact() {
        let resp = PredictResponse {
            id: "r-9".into(),
            scores: vec![0.123_456_79, 1.0e-12, 0.999_999_94],
            hotspots: vec![false, false, true],
            threshold: 0.5,
            batched: 7,
            model: sample_provenance(),
        };
        let parsed = PredictResponse::parse(&resp.render()).unwrap();
        assert_eq!(parsed.id, resp.id);
        assert_eq!(parsed.batched, 7);
        assert_eq!(parsed.hotspots, resp.hotspots);
        assert_eq!(parsed.model, resp.model);
        for (a, b) in parsed.scores.iter().zip(&resp.scores) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn error_reply_round_trips() {
        for reply in [
            ErrorReply::new(Some("r".into()), ErrorKind::Busy, "queue full (64 jobs)"),
            ErrorReply::new(
                None,
                ErrorKind::Parse,
                "bad JSON: trailing garbage at byte 3",
            ),
            ErrorReply::new(Some("m".into()), ErrorKind::Model, "geometry mismatch"),
        ] {
            assert_eq!(ErrorReply::parse(&reply.render()).unwrap(), reply);
        }
    }

    #[test]
    fn ok_parser_surfaces_server_errors() {
        let err = ErrorReply::new(Some("r".into()), ErrorKind::Shutdown, "draining").render();
        let msg = PredictResponse::parse(&err).unwrap_err();
        assert!(msg.contains("shutdown"), "got: {msg}");
        assert!(msg.contains("draining"), "got: {msg}");
    }

    #[test]
    fn status_response_round_trips() {
        let resp = StatusResponse {
            id: "st".into(),
            model: sample_provenance(),
            uptime_s: 12.25,
            counters: ServeCounters {
                requests: 10,
                predicts: 6,
                clips: 40,
                scans: 1,
                reloads: 2,
                errors: 1,
                rejected_busy: 3,
                batches: 4,
                max_batch: 9,
            },
        };
        let parsed = StatusResponse::parse(&resp.render()).unwrap();
        assert_eq!(parsed.counters, resp.counters);
        assert_eq!(parsed.model, resp.model);
        let reload = ReloadResponse {
            id: "up".into(),
            model: sample_provenance(),
        };
        assert_eq!(ReloadResponse::parse(&reload.render()).unwrap(), reload);
    }

    #[test]
    fn error_kind_names_are_stable() {
        for kind in [
            ErrorKind::Parse,
            ErrorKind::Version,
            ErrorKind::Busy,
            ErrorKind::Model,
            ErrorKind::Data,
            ErrorKind::Shutdown,
            ErrorKind::Internal,
        ] {
            assert_eq!(ErrorKind::from_name(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::from_name("bogus"), None);
    }
}
