//! Worker-count policy for batch inference (re-export).
//!
//! [`Parallelism`] moved down into `hotspot-nn` when
//! `Network::forward_batch` became the lowest-level API taking one — the
//! policy has to live with the code that resolves it. This module keeps
//! the historical `hotspot_core::Parallelism` path working; see
//! [`hotspot_nn::parallelism`] for the type's documentation. Note that
//! [`Parallelism::fixed`] now reports a zero worker count as
//! [`hotspot_nn::NnError::InvalidConfig`] rather than a
//! [`crate::CoreError`].

pub use hotspot_nn::Parallelism;
