//! Mini-batch gradient descent with validation-based stopping
//! (paper Algorithm 1 and Section 4.2).

use crate::parallelism::Parallelism;
use crate::CoreError;
use hotspot_nn::data::BatchSampler;
use hotspot_nn::engine::Executor;
use hotspot_nn::optim::LrSchedule;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::{loss, Network, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Trainer configuration.
///
/// The paper's Table-2 run uses `λ = 1e-4, α = 0.5, k = 10 000`; its
/// Figure-3 MGD curve starts at `λ = 1e-3`. Defaults here use the
/// Figure-3 rate with a shorter decay period, matched to the scaled-down
/// synthetic benchmarks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MgdConfig {
    /// Initial learning rate λ.
    pub lr: f32,
    /// Decay factor α ∈ (0, 1].
    pub alpha: f32,
    /// Decay period k in steps.
    pub decay_step: usize,
    /// Mini-batch size m (1 = plain SGD).
    pub batch_size: usize,
    /// Hard step limit.
    pub max_steps: usize,
    /// Steps between validation evaluations.
    pub val_interval: usize,
    /// Consecutive non-improving validation checks before stopping.
    pub patience: usize,
    /// Fraction of training data held out for validation (paper: 25 %).
    pub val_fraction: f64,
    /// Sampling / split seed.
    pub seed: u64,
    /// Draw mini-batches class-balanced (half hotspot, half non-hotspot)
    /// instead of uniformly. Production hotspot sets are heavily skewed
    /// (ICCAD: ~7 % hotspots); uniform sampling lets the all-non-hotspot
    /// predictor dominate early training. Algorithm 1 only requires
    /// "sample m training instances", leaving the distribution free.
    pub balanced_sampling: bool,
    /// Worker threads for per-batch gradient computation (1 = serial).
    /// Parallel updates are deterministic (fixed-order merge) but not
    /// bit-identical to serial ones (different float summation order).
    pub threads: usize,
}

impl Default for MgdConfig {
    fn default() -> Self {
        MgdConfig {
            lr: 1e-3,
            alpha: 0.5,
            decay_step: 2_000,
            batch_size: 32,
            max_steps: 6_000,
            val_interval: 200,
            patience: 6,
            val_fraction: 0.25,
            seed: 42,
            balanced_sampling: true,
            threads: 1,
        }
    }
}

/// One point of the training curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainPoint {
    /// Optimiser step index.
    pub step: usize,
    /// Wall-clock seconds since training started.
    pub elapsed_s: f64,
    /// Balanced accuracy (mean of per-class recalls) on the validation
    /// split.
    pub val_accuracy: f64,
}

/// Result of one training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Validation-accuracy trajectory (the Figure-3 curve).
    pub history: Vec<TrainPoint>,
    /// Best validation accuracy observed (the restored model).
    pub best_val_accuracy: f64,
    /// Steps actually executed.
    pub steps: usize,
    /// Total training wall-clock seconds.
    pub train_time_s: f64,
}

/// Ground-truth target for a label under bias ε: hotspots stay `[0, 1]`,
/// non-hotspots become `[1-ε, ε]` (paper Algorithm 2 line 3).
#[inline]
pub fn target_for(hotspot: bool, epsilon: f32) -> [f32; 2] {
    if hotspot {
        loss::HOTSPOT_TARGET
    } else {
        loss::biased_non_hotspot_target(epsilon)
    }
}

/// Predicted probability that `feature` is a hotspot (`y(1)` of Eq. (6)).
///
/// Inference-mode only, through `&Network` — concurrent callers may share
/// one network (see [`Network::forward_inference`]).
pub fn predict_hotspot_prob(net: &Network, feature: &Tensor) -> f32 {
    let logits = net.forward_inference(feature);
    loss::softmax(logits.as_slice())[1]
}

/// [`predict_hotspot_prob`] through a caller-held [`Executor`]: the shape
/// plan and arena are reused across calls, so a scoring loop allocates
/// nothing after the first feature. Bit-identical to the allocating path.
fn hotspot_prob_planned(
    ex: &mut Executor,
    net: &Network,
    feature: &Tensor,
    soft: &mut Vec<f32>,
) -> f32 {
    let logits = ex.infer(net, feature);
    soft.resize(logits.len(), 0.0);
    loss::softmax_into(logits, soft);
    soft[1]
}

/// Hard 0.5-threshold predictions for a feature set, scored through one
/// reused execution plan (bit-identical to per-feature
/// [`predict_hotspot_prob`] calls).
pub fn predict_all(net: &Network, features: &[Tensor]) -> Vec<bool> {
    let mut ex = Executor::new();
    let mut soft = Vec::new();
    features
        .iter()
        .map(|f| hotspot_prob_planned(&mut ex, net, f, &mut soft) > 0.5)
        .collect()
}

/// [`predict_all`] with the forward passes fanned out over the workers of
/// a [`Parallelism`] policy via [`Network::forward_batch`]. Inference is
/// pure, so the result is bit-identical to the serial path for any worker
/// count.
pub fn predict_all_with(net: &Network, features: &[Tensor], parallelism: Parallelism) -> Vec<bool> {
    net.forward_batch(features, parallelism)
        .iter()
        .map(|logits| loss::softmax(logits.as_slice())[1] > 0.5)
        .collect()
}

/// Balanced accuracy — the mean of hotspot recall and non-hotspot
/// specificity — of `net` on a labelled feature set. Used for validation
/// model selection: unlike overall accuracy it cannot be maxed out by the
/// constant predictor on a skewed set.
pub fn balanced_accuracy(net: &Network, features: &[Tensor], labels: &[bool]) -> f64 {
    assert_eq!(features.len(), labels.len());
    let mut ex = Executor::new();
    let mut soft = Vec::new();
    let mut hit = [0usize; 2];
    let mut total = [0usize; 2];
    for (f, &l) in features.iter().zip(labels.iter()) {
        let class = l as usize;
        total[class] += 1;
        if (hotspot_prob_planned(&mut ex, net, f, &mut soft) > 0.5) == l {
            hit[class] += 1;
        }
    }
    let recall = |c: usize| {
        if total[c] == 0 {
            1.0
        } else {
            hit[c] as f64 / total[c] as f64
        }
    };
    (recall(0) + recall(1)) / 2.0
}

/// Overall classification accuracy of `net` on a labelled feature set.
pub fn overall_accuracy(net: &Network, features: &[Tensor], labels: &[bool]) -> f64 {
    assert_eq!(features.len(), labels.len());
    if features.is_empty() {
        return 1.0;
    }
    let mut ex = Executor::new();
    let mut soft = Vec::new();
    let correct = features
        .iter()
        .zip(labels.iter())
        .filter(|(f, &l)| (hotspot_prob_planned(&mut ex, net, f, &mut soft) > 0.5) == l)
        .count();
    correct as f64 / features.len() as f64
}

/// Complete trainer state at an optimiser-step boundary.
///
/// Captures everything [`train_resumable`] needs to continue a run
/// **bit-identically**: the current and best-so-far parameters, every RNG
/// stream the loop advances (batch sampling, uniform sampling, the master
/// network's dropout layers, and — for multi-threaded runs — each pool
/// replica's dropout layers), the decay-schedule cursor, and the
/// validation bookkeeping. What it deliberately omits is anything
/// re-derivable from [`MgdConfig`]: the validation split and the
/// class-index pools are rebuilt from `config.seed` on resume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerState {
    /// Bias ε the state was captured under (resume must match it).
    pub epsilon: f32,
    /// Optimiser steps completed.
    pub steps: usize,
    /// Current (already-decayed) learning rate.
    pub lr: f32,
    /// In-period iteration count of the decay schedule.
    pub lr_counter: usize,
    /// Balanced-sampling RNG stream.
    pub batch_rng: [u64; 4],
    /// Uniform-sampling RNG stream.
    pub sampler_rng: [u64; 4],
    /// Current network parameters.
    pub params: ParameterBlob,
    /// Best-validation parameter snapshot so far.
    pub best: ParameterBlob,
    /// Best validation accuracy so far.
    pub best_acc: f64,
    /// Consecutive non-improving validation checks.
    pub bad_checks: usize,
    /// Validation-accuracy history so far.
    pub history: Vec<TrainPoint>,
    /// Wall-clock seconds consumed up to the snapshot.
    pub elapsed_s: f64,
    /// Master-network stochastic-layer RNG states.
    pub net_rngs: Vec<[u64; 4]>,
    /// Replica-pool stochastic-layer RNG states (empty when the run is
    /// single-threaded).
    pub replica_rngs: Vec<[u64; 4]>,
}

/// Trains `net` with MGD (Algorithm 1) towards biased targets.
///
/// The training set is split `1 - val_fraction` / `val_fraction`; every
/// `val_interval` steps the validation accuracy is recorded, the best
/// parameters are snapshotted, and training stops after `patience`
/// non-improving checks or `max_steps` steps. The best snapshot is
/// restored before returning, so the function "returns the model with the
/// best performance on the validation set" exactly as Algorithm 1 states.
///
/// # Errors
///
/// Returns [`CoreError::DegenerateTrainingSet`] when fewer than 4 samples
/// are provided or the feature/label lengths differ, and
/// [`CoreError::InvalidConfig`] for a zero batch size or validation
/// fraction outside `(0, 1)`.
pub fn train(
    net: &mut Network,
    features: &[Tensor],
    labels: &[bool],
    epsilon: f32,
    config: &MgdConfig,
) -> Result<TrainReport, CoreError> {
    train_resumable(
        net,
        features,
        labels,
        epsilon,
        config,
        None,
        0,
        &mut |_, _| Ok(()),
    )
}

/// [`train`] with crash-safe checkpointing and resume support.
///
/// When `checkpoint_every > 0`, `hook` is invoked with a full
/// [`TrainerState`] every `checkpoint_every` optimiser steps (typically to
/// persist it atomically; a hook error aborts training). When `resume` is
/// given, the run continues from that state instead of starting fresh —
/// and because the state carries every RNG stream, **an interrupted run
/// resumed this way produces bit-identical final weights to one that never
/// stopped**, for the same `features`/`labels`/`config`.
///
/// # Errors
///
/// Everything [`train`] rejects, plus [`CoreError::Checkpoint`] when the
/// resume state does not fit this run (different ε, parameter count, step
/// budget, schedule cursor, or thread count) and any error returned by the
/// hook.
#[allow(clippy::too_many_arguments)]
pub fn train_resumable(
    net: &mut Network,
    features: &[Tensor],
    labels: &[bool],
    epsilon: f32,
    config: &MgdConfig,
    resume: Option<&TrainerState>,
    checkpoint_every: usize,
    hook: &mut dyn FnMut(&TrainerState, &mut Network) -> Result<(), CoreError>,
) -> Result<TrainReport, CoreError> {
    if features.len() != labels.len() {
        return Err(CoreError::DegenerateTrainingSet(
            "feature/label count mismatch",
        ));
    }
    if features.len() < 4 {
        return Err(CoreError::DegenerateTrainingSet("fewer than 4 samples"));
    }
    if config.batch_size == 0 {
        return Err(CoreError::InvalidConfig("batch_size must be nonzero"));
    }
    if config.threads == 0 {
        return Err(CoreError::InvalidConfig("threads must be nonzero"));
    }
    if !(config.val_fraction > 0.0 && config.val_fraction < 1.0) {
        return Err(CoreError::InvalidConfig("val_fraction must be in (0, 1)"));
    }

    // Split off the validation set (paper §4.2: "a fraction, empirically
    // 25%, of training instances is separated out and never shown to the
    // network for weight updating").
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..features.len()).collect();
    order.shuffle(&mut rng);
    let val_len = ((features.len() as f64 * config.val_fraction).round() as usize)
        .clamp(1, features.len() - 1);
    let (train_idx, val_idx) = order.split_at(features.len() - val_len);
    let val_features: Vec<Tensor> = val_idx.iter().map(|&i| features[i].clone()).collect();
    let val_labels: Vec<bool> = val_idx.iter().map(|&i| labels[i]).collect();

    // Class index pools for balanced sampling; fall back to uniform when a
    // class is absent from the training split.
    let hs_pool: Vec<usize> = train_idx.iter().copied().filter(|&i| labels[i]).collect();
    let nhs_pool: Vec<usize> = train_idx.iter().copied().filter(|&i| !labels[i]).collect();
    let balanced = config.balanced_sampling && !hs_pool.is_empty() && !nhs_pool.is_empty();
    let mut sampler =
        BatchSampler::new(train_idx.len(), StdRng::seed_from_u64(config.seed ^ 0x9E37));
    let mut batch_rng = StdRng::seed_from_u64(config.seed ^ 0x51F3);

    let mut schedule = LrSchedule::new(config.lr, config.alpha, config.decay_step);
    let mut history = Vec::new();
    let mut best = ParameterBlob::from_network(net);
    let mut best_acc = 0.0f64;
    let mut bad_checks = 0usize;
    let mut steps = 0usize;
    let mut elapsed_base = 0.0f64;

    if let Some(state) = resume {
        if state.epsilon != epsilon {
            return Err(CoreError::Checkpoint(format!(
                "resume state was captured at ε = {} but this run trains at ε = {epsilon}",
                state.epsilon
            )));
        }
        if state.steps > config.max_steps {
            return Err(CoreError::Checkpoint(format!(
                "resume state is {} steps in but max_steps is {}",
                state.steps, config.max_steps
            )));
        }
        if state.lr.is_nan() || state.lr <= 0.0 || state.lr_counter >= config.decay_step {
            return Err(CoreError::Checkpoint(
                "resume state carries an invalid learning-rate schedule".into(),
            ));
        }
        state.params.load_into(net).map_err(|e| {
            CoreError::Checkpoint(format!("resume parameters do not fit the network: {e}"))
        })?;
        net.restore_rng_states(&state.net_rngs)
            .map_err(|e| CoreError::Checkpoint(format!("resume RNG states do not fit: {e}")))?;
        if config.threads <= 1 && !state.replica_rngs.is_empty() {
            return Err(CoreError::Checkpoint(
                "resume state was captured by a multi-threaded run".into(),
            ));
        }
        schedule = LrSchedule::resume(state.lr, config.alpha, config.decay_step, state.lr_counter);
        sampler.set_rng_state(state.sampler_rng);
        batch_rng = StdRng::from_state(state.batch_rng);
        history = state.history.clone();
        best = state.best.clone();
        best_acc = state.best_acc;
        bad_checks = state.bad_checks;
        steps = state.steps;
        elapsed_base = state.elapsed_s;
    }

    // Worker replicas are allocated once and reused every step; the pool
    // only copies parameters in between. Built *after* any resume restore
    // so replicas clone the restored master, then overlaid with the
    // checkpointed per-replica dropout streams.
    let mut pool =
        (config.threads > 1).then(|| hotspot_nn::parallel::ReplicaPool::new(net, config.threads));
    if let (Some(state), Some(pool)) = (resume, pool.as_mut()) {
        pool.restore_rng_states(&state.replica_rngs).map_err(|e| {
            CoreError::Checkpoint(format!("resume replica RNG states do not fit: {e}"))
        })?;
    }

    // Serial steps run through one shape-planned executor: the plan and
    // arena are built on the first sample and reused for every step, so
    // steady-state training performs no per-sample allocations.
    let mut executor = Executor::new();
    let mut grad_buf: Vec<f32> = Vec::new();

    let start = Instant::now();
    if resume.is_none() {
        best_acc = balanced_accuracy(net, &val_features, &val_labels);
        history.push(TrainPoint {
            step: 0,
            elapsed_s: start.elapsed().as_secs_f64(),
            val_accuracy: best_acc,
        });
    }

    while steps < config.max_steps {
        // One MGD step (Algorithm 1 lines 4–14).
        net.zero_grads();
        let batch: Vec<usize> = if balanced {
            use rand::Rng;
            (0..config.batch_size)
                .map(|j| {
                    let pool = if j % 2 == 0 { &hs_pool } else { &nhs_pool };
                    pool[batch_rng.gen_range(0..pool.len())]
                })
                .collect()
        } else {
            sampler
                .sample(config.batch_size)
                .into_iter()
                .map(|bi| train_idx[bi])
                .collect()
        };
        if let Some(pool) = pool.as_mut() {
            let pairs: Vec<(&Tensor, [f32; 2])> = batch
                .iter()
                .map(|&i| (&features[i], target_for(labels[i], epsilon)))
                .collect();
            hotspot_nn::parallel::minibatch_step_pooled(net, pool, &pairs, schedule.current());
        } else {
            for &i in &batch {
                {
                    let logits = executor.forward_train(net, &features[i]);
                    grad_buf.resize(logits.len(), 0.0);
                    let _ = loss::softmax_cross_entropy_into(
                        logits,
                        &target_for(labels[i], epsilon),
                        &mut grad_buf,
                    );
                }
                executor.backward(net, &grad_buf);
            }
            net.apply_gradients(schedule.current() / config.batch_size as f32);
        }
        schedule.tick();
        steps += 1;

        if steps.is_multiple_of(config.val_interval) {
            let acc = balanced_accuracy(net, &val_features, &val_labels);
            history.push(TrainPoint {
                step: steps,
                elapsed_s: elapsed_base + start.elapsed().as_secs_f64(),
                val_accuracy: acc,
            });
            if acc > best_acc + 1e-6 {
                best_acc = acc;
                best = ParameterBlob::from_network(net);
                bad_checks = 0;
            } else {
                bad_checks += 1;
                if bad_checks >= config.patience {
                    break;
                }
            }
        }

        if checkpoint_every > 0 && steps.is_multiple_of(checkpoint_every) {
            let state = TrainerState {
                epsilon,
                steps,
                lr: schedule.current(),
                lr_counter: schedule.counter(),
                batch_rng: batch_rng.state(),
                sampler_rng: sampler.rng_state(),
                params: ParameterBlob::from_network(net),
                best: best.clone(),
                best_acc,
                bad_checks,
                history: history.clone(),
                elapsed_s: elapsed_base + start.elapsed().as_secs_f64(),
                net_rngs: net.rng_states(),
                replica_rngs: pool.as_ref().map(|p| p.rng_states()).unwrap_or_default(),
            };
            hook(&state, net)?;
        }
    }
    if best.load_into(net).is_err() {
        unreachable!("best snapshot was taken from this same network");
    }
    Ok(TrainReport {
        history,
        best_val_accuracy: best_acc,
        steps,
        train_time_s: elapsed_base + start.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::{Dense, Relu};

    /// A trivially learnable synthetic problem: label = (sum of features
    /// > 0).
    fn toy_data(n: usize, seed: u64) -> (Vec<Tensor>, Vec<bool>) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut features = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let v: Vec<f32> = (0..6).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let s: f32 = v.iter().sum();
            features.push(Tensor::from_vec(vec![6], v));
            labels.push(s > 0.0);
        }
        (features, labels)
    }

    fn toy_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Dense::new(6, 16, seed));
        net.push(Relu::new());
        net.push(Dense::new(16, 2, seed + 1));
        net
    }

    fn quick_config() -> MgdConfig {
        MgdConfig {
            lr: 0.05,
            alpha: 0.7,
            decay_step: 300,
            batch_size: 16,
            max_steps: 1_000,
            val_interval: 100,
            patience: 4,
            val_fraction: 0.25,
            seed: 7,
            balanced_sampling: true,
            threads: 1,
        }
    }

    #[test]
    fn training_learns_toy_problem() {
        let (features, labels) = toy_data(400, 1);
        let mut net = toy_net(3);
        let report = train(&mut net, &features, &labels, 0.0, &quick_config()).unwrap();
        assert!(
            report.best_val_accuracy > 0.9,
            "val accuracy {}",
            report.best_val_accuracy
        );
        // History is monotone in step and time.
        for w in report.history.windows(2) {
            assert!(w[1].step > w[0].step);
            assert!(w[1].elapsed_s >= w[0].elapsed_s);
        }
    }

    #[test]
    fn restored_model_matches_best_val_accuracy() {
        let (features, labels) = toy_data(200, 2);
        let mut net = toy_net(4);
        let cfg = quick_config();
        let report = train(&mut net, &features, &labels, 0.0, &cfg).unwrap();
        // Re-evaluate on the same validation split.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..features.len()).collect();
        order.shuffle(&mut rng);
        let val_len = (features.len() as f64 * cfg.val_fraction).round() as usize;
        let val_idx = &order[features.len() - val_len..];
        let vf: Vec<Tensor> = val_idx.iter().map(|&i| features[i].clone()).collect();
        let vl: Vec<bool> = val_idx.iter().map(|&i| labels[i]).collect();
        let acc = balanced_accuracy(&net, &vf, &vl);
        assert!((acc - report.best_val_accuracy).abs() < 1e-9);
    }

    #[test]
    fn determinism_given_seeds() {
        let (features, labels) = toy_data(120, 3);
        let mut a = toy_net(5);
        let mut b = toy_net(5);
        let cfg = quick_config();
        let ra = train(&mut a, &features, &labels, 0.0, &cfg).unwrap();
        let rb = train(&mut b, &features, &labels, 0.0, &cfg).unwrap();
        assert_eq!(ra.steps, rb.steps);
        assert_eq!(ra.best_val_accuracy, rb.best_val_accuracy);
        let x = &features[0];
        assert_eq!(a.forward(x, false), b.forward(x, false));
    }

    #[test]
    fn rejects_bad_inputs() {
        let (features, labels) = toy_data(10, 4);
        let mut net = toy_net(6);
        assert!(train(&mut net, &features[..2], &labels[..2], 0.0, &quick_config()).is_err());
        assert!(train(&mut net, &features, &labels[..5], 0.0, &quick_config()).is_err());
        let mut cfg = quick_config();
        cfg.batch_size = 0;
        assert!(train(&mut net, &features, &labels, 0.0, &cfg).is_err());
        let mut cfg = quick_config();
        cfg.val_fraction = 1.5;
        assert!(train(&mut net, &features, &labels, 0.0, &cfg).is_err());
    }

    #[test]
    fn resume_after_interruption_is_bit_identical() {
        // The tentpole guarantee: a run killed at a checkpoint and resumed
        // from it finishes with bit-identical weights to a run that never
        // stopped — serially and with a replica pool, and with dropout in
        // the network so the RNG restore paths are actually exercised.
        let dropnet = || {
            let mut net = Network::new();
            net.push(Dense::new(6, 16, 1));
            net.push(Relu::new());
            net.push(hotspot_nn::layers::Dropout::new(0.4, 9));
            net.push(Dense::new(16, 2, 2));
            net
        };
        for threads in [1usize, 3] {
            let (features, labels) = toy_data(200, 21);
            let mut cfg = quick_config();
            cfg.threads = threads;
            cfg.max_steps = 400;
            cfg.patience = 100; // run the full budget
            let mut reference = dropnet();
            let ref_report = train(&mut reference, &features, &labels, 0.1, &cfg).unwrap();

            // Interrupted run: capture the step-150 checkpoint, then
            // "crash" (everything after the snapshot is discarded).
            let mut captured: Option<TrainerState> = None;
            let mut first = dropnet();
            let crash = train_resumable(
                &mut first,
                &features,
                &labels,
                0.1,
                &cfg,
                None,
                150,
                &mut |state, _| {
                    if state.steps == 150 {
                        captured = Some(state.clone());
                        return Err(CoreError::Checkpoint("simulated crash".into()));
                    }
                    Ok(())
                },
            );
            assert!(matches!(crash, Err(CoreError::Checkpoint(_))));
            let state = captured.unwrap();

            // Resume into a *fresh* network: parameters and every RNG
            // stream come from the state.
            let mut resumed = dropnet();
            let report = train_resumable(
                &mut resumed,
                &features,
                &labels,
                0.1,
                &cfg,
                Some(&state),
                0,
                &mut |_, _| Ok(()),
            )
            .unwrap();
            assert_eq!(report.steps, ref_report.steps, "threads = {threads}");
            assert_eq!(report.best_val_accuracy, ref_report.best_val_accuracy);
            let curve = |r: &TrainReport| -> Vec<(usize, f64)> {
                r.history.iter().map(|p| (p.step, p.val_accuracy)).collect()
            };
            assert_eq!(curve(&report), curve(&ref_report));
            assert_eq!(
                ParameterBlob::from_network(&mut resumed),
                ParameterBlob::from_network(&mut reference),
                "threads = {threads}"
            );

            // A state cannot be replayed into a mismatched run.
            let err = train_resumable(
                &mut dropnet(),
                &features,
                &labels,
                0.2,
                &cfg,
                Some(&state),
                0,
                &mut |_, _| Ok(()),
            );
            assert!(matches!(err, Err(CoreError::Checkpoint(_))));
        }
    }

    #[test]
    fn biased_targets_raise_hotspot_probability() {
        // Training the same data with ε = 0.3 must yield predictions at
        // least as hotspot-leaning as ε = 0 on average.
        let (features, labels) = toy_data(300, 5);
        let mut plain = toy_net(7);
        let mut biased = toy_net(7);
        let cfg = quick_config();
        train(&mut plain, &features, &labels, 0.0, &cfg).unwrap();
        train(&mut biased, &features, &labels, 0.3, &cfg).unwrap();
        let mean_prob = |net: &mut Network| -> f64 {
            features
                .iter()
                .map(|f| predict_hotspot_prob(net, f) as f64)
                .sum::<f64>()
                / features.len() as f64
        };
        assert!(mean_prob(&mut biased) > mean_prob(&mut plain) - 0.02);
    }

    #[test]
    fn parallel_training_converges_like_serial() {
        let (features, labels) = toy_data(200, 6);
        let mut serial_cfg = quick_config();
        serial_cfg.threads = 1;
        let mut parallel_cfg = quick_config();
        parallel_cfg.threads = 3;
        let mut a = toy_net(8);
        let ra = train(&mut a, &features, &labels, 0.0, &serial_cfg).unwrap();
        let mut b = toy_net(8);
        let rb = train(&mut b, &features, &labels, 0.0, &parallel_cfg).unwrap();
        // Different float-merge order, same learning outcome.
        assert!(ra.best_val_accuracy > 0.85);
        assert!(rb.best_val_accuracy > 0.85);
        // Zero threads rejected.
        let mut bad = quick_config();
        bad.threads = 0;
        assert!(train(&mut toy_net(8), &features, &labels, 0.0, &bad).is_err());
    }

    #[test]
    fn predict_all_with_matches_serial() {
        let (features, _labels) = toy_data(61, 9);
        let net = toy_net(10);
        let serial = predict_all(&net, &features);
        for workers in [1, 2, 5, 16] {
            assert_eq!(
                predict_all_with(&net, &features, Parallelism::fixed(workers).unwrap()),
                serial,
                "workers = {workers}"
            );
        }
        assert_eq!(
            predict_all_with(&net, &features, Parallelism::auto()),
            serial
        );
    }

    #[test]
    fn target_for_matches_paper() {
        assert_eq!(target_for(true, 0.3), [0.0, 1.0]);
        assert_eq!(target_for(false, 0.0), [1.0, 0.0]);
        assert_eq!(target_for(false, 0.2), [0.8, 0.2]);
    }
}
