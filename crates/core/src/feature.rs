//! Clip → feature-tensor pipeline.

use crate::CoreError;
use hotspot_datagen::Dataset;
use hotspot_dct::{extract_feature_tensor, FeatureTensorSpec};
use hotspot_geometry::{raster, Clip};
use hotspot_nn::Tensor;
use serde::{Deserialize, Serialize};

/// Converts layout clips into normalised CNN input tensors.
///
/// The pipeline is: rasterise at `resolution_nm` → divide into an
/// `n × n` block grid → per-block DCT → keep the first `k` zig-zag
/// coefficients → scale by `1 / B` (with `B` the block side in pixels) so
/// the DC channel lands in `[0, 1]` regardless of raster resolution.
///
/// # Examples
///
/// ```
/// use hotspot_core::FeaturePipeline;
/// use hotspot_geometry::{Clip, Rect};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pipeline = FeaturePipeline::new(10, 12, 32)?;
/// let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200)?);
/// clip.push(Rect::new(100, 0, 200, 1200)?);
/// let tensor = pipeline.extract(&clip)?;
/// assert_eq!(tensor.shape(), &[32, 12, 12]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeaturePipeline {
    resolution_nm: u32,
    spec: FeatureTensorSpec,
}

impl FeaturePipeline {
    /// Creates a pipeline rasterising at `resolution_nm` nm/pixel with an
    /// `grid_dim × grid_dim` block grid keeping `coefficients` DCT values
    /// per block (the paper: 12 and `k`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for zero resolution and
    /// [`CoreError::Feature`] for a zero grid/coefficient count.
    pub fn new(
        resolution_nm: u32,
        grid_dim: usize,
        coefficients: usize,
    ) -> Result<Self, CoreError> {
        if resolution_nm == 0 {
            return Err(CoreError::InvalidConfig("resolution_nm must be nonzero"));
        }
        Ok(FeaturePipeline {
            resolution_nm,
            spec: FeatureTensorSpec::new(grid_dim, coefficients)?,
        })
    }

    /// Raster resolution in nm per pixel.
    #[inline]
    pub fn resolution_nm(&self) -> u32 {
        self.resolution_nm
    }

    /// Blocks per axis (`n`).
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.spec.grid_dim()
    }

    /// Kept DCT coefficients per block (`k`, the CNN input channel count).
    #[inline]
    pub fn coefficients(&self) -> usize {
        self.spec.coefficients()
    }

    /// The CNN input shape this pipeline produces: `[k, n, n]`.
    pub fn input_shape(&self) -> Vec<usize> {
        vec![self.coefficients(), self.grid_dim(), self.grid_dim()]
    }

    /// Extracts the normalised feature tensor of one clip.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Feature`] when the rasterised clip is not
    /// divisible into the configured block grid (window size, resolution
    /// and grid dimension must be consistent).
    pub fn extract(&self, clip: &Clip) -> Result<Tensor, CoreError> {
        let image = raster::rasterize_clip(&clip.normalized(), self.resolution_nm);
        let tensor = extract_feature_tensor(&image, &self.spec)?;
        let scale = 1.0 / tensor.block_size() as f32;
        let n = self.grid_dim();
        let k = self.coefficients();
        let data = tensor.into_vec().into_iter().map(|v| v * scale).collect();
        Ok(Tensor::from_vec(vec![k, n, n], data))
    }

    /// Extracts features and boolean labels for a whole dataset, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first extraction failure.
    pub fn extract_dataset(&self, data: &Dataset) -> Result<(Vec<Tensor>, Vec<bool>), CoreError> {
        let mut features = Vec::with_capacity(data.len());
        let mut labels = Vec::with_capacity(data.len());
        for sample in data.iter() {
            features.push(self.extract(&sample.clip)?);
            labels.push(sample.hotspot);
        }
        Ok((features, labels))
    }
}

impl Default for FeaturePipeline {
    /// The paper's reference configuration: 10 nm/px raster of a
    /// 1200×1200 nm clip, n = 12, k = 32.
    fn default() -> Self {
        match FeaturePipeline::new(10, 12, 32) {
            Ok(pipeline) => pipeline,
            Err(_) => unreachable!("reference configuration is valid"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_geometry::Rect;

    fn clip_with_line() -> Clip {
        let mut clip = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        clip.push(Rect::new(0, 0, 600, 1200).unwrap());
        clip
    }

    #[test]
    fn default_shape_matches_paper() {
        let p = FeaturePipeline::default();
        assert_eq!(p.input_shape(), vec![32, 12, 12]);
        let t = p.extract(&clip_with_line()).unwrap();
        assert_eq!(t.shape(), &[32, 12, 12]);
    }

    #[test]
    fn dc_channel_is_normalised_density() {
        let p = FeaturePipeline::default();
        let t = p.extract(&clip_with_line()).unwrap();
        // Left half fully covered: DC of covered blocks = B * 1.0 scaled by
        // 1/B = 1.0.
        assert!((t.at3(0, 5, 0) - 1.0).abs() < 1e-3);
        assert!(t.at3(0, 5, 11).abs() < 1e-3);
    }

    #[test]
    fn rejects_incompatible_configuration() {
        assert!(FeaturePipeline::new(0, 12, 32).is_err());
        assert!(FeaturePipeline::new(10, 0, 32).is_err());
        // 1200 nm window at 10 nm/px = 120 px; a 7-grid does not divide it.
        let p = FeaturePipeline::new(10, 7, 4).unwrap();
        assert!(p.extract(&clip_with_line()).is_err());
    }

    #[test]
    fn extraction_is_deterministic() {
        let p = FeaturePipeline::default();
        assert_eq!(
            p.extract(&clip_with_line()).unwrap(),
            p.extract(&clip_with_line()).unwrap()
        );
    }

    #[test]
    fn different_clips_different_tensors() {
        let p = FeaturePipeline::default();
        let a = p.extract(&clip_with_line()).unwrap();
        let mut other = Clip::new(Rect::new(0, 0, 1200, 1200).unwrap());
        other.push(Rect::new(600, 0, 1200, 1200).unwrap());
        let b = p.extract(&other).unwrap();
        assert_ne!(a, b);
    }
}
