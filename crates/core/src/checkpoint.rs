//! Crash-safe training checkpoints.
//!
//! A [`Checkpoint`] captures a full biased-learning run at a safe point —
//! the completed rounds, the current model parameters, every RNG stream,
//! and (mid-round) the trainer's [`TrainerState`] — so a killed `train`
//! invocation can resume and finish with **bit-identical** weights to a
//! run that never stopped.
//!
//! # File layout (version 2, all little-endian)
//!
//! ```text
//! magic "HSCK" | u32 version | u32 crc32(payload) | u64 payload_len | payload
//! ```
//!
//! Version 2 appends an optional active-learning section to the version-1
//! payload: a presence flag, then the per-round pool selections **with
//! their oracle labels** and the cumulative labeler-call count
//! ([`ActiveState`]). Storing the labels means a resumed active run never
//! re-invokes the (expensive) labeler for clips it already paid for, and
//! replays the training-set growth in the identical order. Version-1 files
//! load unchanged (no active section).
//!
//! The CRC-32 (IEEE, shared with [`hotspot_nn::serialize`]) is computed
//! over the payload, so any single-byte corruption — truncation, bit flip,
//! bad length — is detected on load instead of silently resuming from a
//! different state. Decoding never panics and validates every declared
//! length against the remaining bytes *before* allocating.
//!
//! # Durability contract
//!
//! [`write_atomic`] writes to a temporary file in the destination
//! directory, fsyncs it, then renames it over the target (and fsyncs the
//! directory on Unix). A crash at any point leaves either the previous
//! checkpoint or the new one — never a torn file.

use crate::biased::{BiasRound, BiasedResume};
use crate::mgd::{TrainPoint, TrainerState};
use crate::{CoreError, TrainReport};
use hotspot_nn::serialize::{crc32, ParameterBlob};
use hotspot_nn::Network;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Checkpoint wire-format magic.
const MAGIC: &[u8; 4] = b"HSCK";
/// Checkpoint wire-format version written by [`Checkpoint::to_bytes`].
const VERSION: u32 = 2;
/// Oldest checkpoint version [`Checkpoint::from_bytes`] still reads.
const MIN_VERSION: u32 = 1;
/// Bytes before the payload: magic + version + crc + payload length.
const HEADER_LEN: usize = 20;

/// One completed active-learning acquisition round: which pool indices
/// were selected and the oracle labels they received.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveRoundState {
    /// Selected pool indices, in acquisition order.
    pub selected: Vec<u64>,
    /// Oracle labels, aligned with `selected`.
    pub labels: Vec<bool>,
}

/// Per-round active-learning state carried by version-2 checkpoints.
///
/// Each entry records a batch that was already labelled (and paid for);
/// on resume the loop replays these batches from the checkpoint instead
/// of re-invoking the labeler, then recomputes acquisition only for
/// rounds that never ran.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ActiveState {
    /// Labelled batches, in round order.
    pub rounds: Vec<ActiveRoundState>,
    /// Labeler calls charged before this snapshot (for cost accounting
    /// across resumes).
    pub labeler_calls: u64,
}

/// A complete, resumable snapshot of a biased-learning training run.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Training seed of the run (resume refuses a different seed — the
    /// validation split and sampling streams would not match).
    pub seed: u64,
    /// Worker-thread count of the run (gradient merge order, and hence
    /// the weight trajectory, depends on it).
    pub threads: u32,
    /// Free-form fingerprint of the run configuration (geometry, feature
    /// parameters, step budget, …); resume refuses a mismatch.
    pub tag: String,
    /// Current model parameters (mid-round: the live weights; round
    /// boundary: the round's returned best-validation weights).
    pub params: ParameterBlob,
    /// Master-network stochastic-layer RNG states.
    pub net_rngs: Vec<[u64; 4]>,
    /// Fully completed biased-learning rounds, ε ascending.
    pub completed: Vec<BiasRound>,
    /// Mid-round trainer state when the snapshot was periodic; `None` at
    /// round boundaries.
    pub trainer: Option<TrainerState>,
    /// Active-learning state (labelled batches so far); `None` for plain
    /// training runs and version-1 files.
    pub active: Option<ActiveState>,
}

impl Checkpoint {
    /// Builds a checkpoint from the pieces the biased-learning hook
    /// provides (see [`crate::biased::CheckpointEvent`]).
    pub fn new(
        seed: u64,
        threads: usize,
        tag: String,
        net: &mut Network,
        completed: &[BiasRound],
        trainer: Option<&TrainerState>,
    ) -> Self {
        Checkpoint {
            seed,
            threads: threads as u32,
            tag,
            params: match trainer {
                Some(state) => state.params.clone(),
                None => ParameterBlob::from_network(net),
            },
            net_rngs: net.rng_states(),
            completed: completed.to_vec(),
            trainer: trainer.cloned(),
            active: None,
        }
    }

    /// Attaches active-learning state (builder style; see [`ActiveState`]).
    pub fn with_active(mut self, active: ActiveState) -> Self {
        self.active = Some(active);
        self
    }

    /// Verifies this checkpoint belongs to the given run configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] naming the first mismatching
    /// field.
    pub fn validate_run(&self, seed: u64, threads: usize, tag: &str) -> Result<(), CoreError> {
        if self.seed != seed {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint was taken with seed {} but this run uses {seed}",
                self.seed
            )));
        }
        if self.threads as usize != threads {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint was taken with {} threads but this run uses {threads} \
                 (the gradient merge order differs)",
                self.threads
            )));
        }
        if self.tag != tag {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint configuration '{}' does not match this run's '{tag}'",
                self.tag
            )));
        }
        Ok(())
    }

    /// Restores the checkpointed parameters and RNG streams into `net` and
    /// returns the loop-resume description for
    /// [`crate::biased::train_biased_resumable`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] when the parameters or RNG states
    /// do not fit the network.
    pub fn apply(&self, net: &mut Network) -> Result<BiasedResume, CoreError> {
        self.params.load_into(net).map_err(|e| {
            CoreError::Checkpoint(format!("checkpoint parameters do not fit the network: {e}"))
        })?;
        net.restore_rng_states(&self.net_rngs).map_err(|e| {
            CoreError::Checkpoint(format!("checkpoint RNG states do not fit the network: {e}"))
        })?;
        Ok(BiasedResume {
            completed: self.completed.clone(),
            trainer: self.trainer.clone(),
        })
    }

    /// Encodes the checkpoint into the versioned, checksummed binary
    /// format described at the module level.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.seed);
        put_u32(&mut payload, self.threads);
        put_str(&mut payload, &self.tag);
        put_blob(&mut payload, &self.params);
        put_rngs(&mut payload, &self.net_rngs);
        put_u32(&mut payload, self.completed.len() as u32);
        for round in &self.completed {
            put_f32(&mut payload, round.epsilon);
            put_report(&mut payload, &round.report);
        }
        match &self.trainer {
            None => payload.push(0),
            Some(state) => {
                payload.push(1);
                put_trainer(&mut payload, state);
            }
        }
        match &self.active {
            None => payload.push(0),
            Some(active) => {
                payload.push(1);
                put_u64(&mut payload, active.labeler_calls);
                put_u32(&mut payload, active.rounds.len() as u32);
                for round in &active.rounds {
                    put_u32(&mut payload, round.selected.len() as u32);
                    for (&idx, &label) in round.selected.iter().zip(round.labels.iter()) {
                        put_u64(&mut payload, idx);
                        payload.push(label as u8);
                    }
                }
            }
        }
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, VERSION);
        put_u32(&mut buf, crc32(&payload));
        put_u64(&mut buf, payload.len() as u64);
        buf.extend_from_slice(&payload);
        buf
    }

    /// Decodes a buffer produced by [`Checkpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] for a truncated buffer, bad magic
    /// or version, length or checksum mismatch, or any malformed section —
    /// decoding never panics and never silently accepts corrupted state.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CoreError> {
        if data.len() < HEADER_LEN {
            return Err(bad(format!(
                "buffer too short for header: {} bytes",
                data.len()
            )));
        }
        if &data[..4] != MAGIC {
            return Err(bad("bad magic (expected \"HSCK\")".into()));
        }
        let mut header = Reader::new(&data[4..HEADER_LEN]);
        let version = header.u32()?;
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(bad(format!(
                "unsupported checkpoint version {version} (expected {MIN_VERSION}..={VERSION})"
            )));
        }
        let crc_declared = header.u32()?;
        let payload_len = header.u64()?;
        let payload = &data[HEADER_LEN..];
        if payload_len != payload.len() as u64 {
            return Err(bad(format!(
                "declared payload length {payload_len} does not match actual {} bytes",
                payload.len()
            )));
        }
        let crc_actual = crc32(payload);
        if crc_actual != crc_declared {
            return Err(bad(format!(
                "payload checksum mismatch: stored {crc_declared:#010x}, computed {crc_actual:#010x}"
            )));
        }
        let mut r = Reader::new(payload);
        let seed = r.u64()?;
        let threads = r.u32()?;
        let tag = r.string()?;
        let params = r.blob()?;
        let net_rngs = r.rngs()?;
        let round_count = r.count(4)?; // ε alone costs 4 bytes per round
        let mut completed = Vec::with_capacity(round_count);
        for _ in 0..round_count {
            let epsilon = r.f32()?;
            let report = r.report()?;
            completed.push(BiasRound { epsilon, report });
        }
        let trainer = match r.u8()? {
            0 => None,
            1 => Some(r.trainer()?),
            flag => return Err(bad(format!("invalid trainer-presence flag {flag}"))),
        };
        let active = if version >= 2 {
            match r.u8()? {
                0 => None,
                1 => Some(r.active()?),
                flag => return Err(bad(format!("invalid active-presence flag {flag}"))),
            }
        } else {
            None
        };
        r.finish()?;
        Ok(Checkpoint {
            seed,
            threads,
            tag,
            params,
            net_rngs,
            completed,
            trainer,
            active,
        })
    }

    /// Atomically persists the checkpoint to `path` (see [`write_atomic`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] wrapping the I/O failure.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        write_atomic(path, &self.to_bytes())
            .map_err(|e| bad(format!("writing {}: {e}", path.display())))
    }

    /// Loads and verifies a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Checkpoint`] for I/O failures and every decode
    /// failure of [`Checkpoint::from_bytes`].
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let data = fs::read(path).map_err(|e| bad(format!("reading {}: {e}", path.display())))?;
        Checkpoint::from_bytes(&data)
    }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory (Unix). Readers see
/// either the previous complete file or the new complete file, never a
/// partial write.
///
/// # Errors
///
/// Propagates the underlying I/O error; the temp file is removed on
/// failure (best effort).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        #[cfg(unix)]
        if let Some(dir) = dir {
            // Make the rename itself durable: fsync the directory entry.
            fs::File::open(dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = dir;
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

fn bad(why: String) -> CoreError {
    CoreError::Checkpoint(why)
}

// ---- encoding helpers -------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(buf: &mut Vec<u8>, v: f32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_blob(buf: &mut Vec<u8>, blob: &ParameterBlob) {
    let bytes = blob.to_bytes();
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(&bytes);
}

fn put_rngs(buf: &mut Vec<u8>, rngs: &[[u64; 4]]) {
    put_u32(buf, rngs.len() as u32);
    for state in rngs {
        for &word in state {
            put_u64(buf, word);
        }
    }
}

fn put_report(buf: &mut Vec<u8>, report: &TrainReport) {
    put_u32(buf, report.history.len() as u32);
    for point in &report.history {
        put_u64(buf, point.step as u64);
        put_f64(buf, point.elapsed_s);
        put_f64(buf, point.val_accuracy);
    }
    put_f64(buf, report.best_val_accuracy);
    put_u64(buf, report.steps as u64);
    put_f64(buf, report.train_time_s);
}

fn put_trainer(buf: &mut Vec<u8>, state: &TrainerState) {
    put_f32(buf, state.epsilon);
    put_u64(buf, state.steps as u64);
    put_f32(buf, state.lr);
    put_u64(buf, state.lr_counter as u64);
    for &word in &state.batch_rng {
        put_u64(buf, word);
    }
    for &word in &state.sampler_rng {
        put_u64(buf, word);
    }
    put_blob(buf, &state.params);
    put_blob(buf, &state.best);
    put_f64(buf, state.best_acc);
    put_u64(buf, state.bad_checks as u64);
    put_u32(buf, state.history.len() as u32);
    for point in &state.history {
        put_u64(buf, point.step as u64);
        put_f64(buf, point.elapsed_s);
        put_f64(buf, point.val_accuracy);
    }
    put_f64(buf, state.elapsed_s);
    put_rngs(buf, &state.net_rngs);
    put_rngs(buf, &state.replica_rngs);
}

// ---- hardened decoding ------------------------------------------------

/// A non-panicking cursor over the checkpoint payload: every read checks
/// the remaining length first, and every declared element count is
/// validated against the remaining bytes before allocation.
struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CoreError> {
        if self.data.len() < n {
            return Err(bad(format!(
                "truncated payload: wanted {n} bytes, {} remain",
                self.data.len()
            )));
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CoreError> {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, CoreError> {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(raw))
    }

    fn f32(&mut self) -> Result<f32, CoreError> {
        Ok(f32::from_le_bytes(match self.take(4)?.try_into() {
            Ok(raw) => raw,
            Err(_) => unreachable!("take(4) yields 4 bytes"),
        }))
    }

    fn f64(&mut self) -> Result<f64, CoreError> {
        Ok(f64::from_le_bytes(match self.take(8)?.try_into() {
            Ok(raw) => raw,
            Err(_) => unreachable!("take(8) yields 8 bytes"),
        }))
    }

    fn usize64(&mut self) -> Result<usize, CoreError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| bad(format!("value {v} exceeds the platform word size")))
    }

    /// Reads a `u32` element count and validates it against the remaining
    /// bytes assuming at least `min_elem_size` bytes per element, so a
    /// corrupted count cannot trigger an absurd allocation.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, CoreError> {
        let count = self.u32()? as usize;
        match count.checked_mul(min_elem_size) {
            Some(need) if need <= self.data.len() => Ok(count),
            _ => Err(bad(format!(
                "declared count {count} exceeds the {} remaining bytes",
                self.data.len()
            ))),
        }
    }

    fn string(&mut self) -> Result<String, CoreError> {
        let len = self.count(1)?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| bad("tag is not valid UTF-8".into()))
    }

    fn blob(&mut self) -> Result<ParameterBlob, CoreError> {
        let len = self.usize64()?;
        let raw = self.take(len)?;
        ParameterBlob::from_bytes(raw).map_err(|e| bad(format!("embedded parameter blob: {e}")))
    }

    fn rngs(&mut self) -> Result<Vec<[u64; 4]>, CoreError> {
        let count = self.count(32)?;
        let mut rngs = Vec::with_capacity(count);
        for _ in 0..count {
            rngs.push([self.u64()?, self.u64()?, self.u64()?, self.u64()?]);
        }
        Ok(rngs)
    }

    fn history(&mut self) -> Result<Vec<TrainPoint>, CoreError> {
        let count = self.count(24)?;
        let mut history = Vec::with_capacity(count);
        for _ in 0..count {
            history.push(TrainPoint {
                step: self.usize64()?,
                elapsed_s: self.f64()?,
                val_accuracy: self.f64()?,
            });
        }
        Ok(history)
    }

    fn report(&mut self) -> Result<TrainReport, CoreError> {
        Ok(TrainReport {
            history: self.history()?,
            best_val_accuracy: self.f64()?,
            steps: self.usize64()?,
            train_time_s: self.f64()?,
        })
    }

    fn trainer(&mut self) -> Result<TrainerState, CoreError> {
        Ok(TrainerState {
            epsilon: self.f32()?,
            steps: self.usize64()?,
            lr: self.f32()?,
            lr_counter: self.usize64()?,
            batch_rng: [self.u64()?, self.u64()?, self.u64()?, self.u64()?],
            sampler_rng: [self.u64()?, self.u64()?, self.u64()?, self.u64()?],
            params: self.blob()?,
            best: self.blob()?,
            best_acc: self.f64()?,
            bad_checks: self.usize64()?,
            history: self.history()?,
            elapsed_s: self.f64()?,
            net_rngs: self.rngs()?,
            replica_rngs: self.rngs()?,
        })
    }

    fn active(&mut self) -> Result<ActiveState, CoreError> {
        let labeler_calls = self.u64()?;
        let round_count = self.count(4)?; // each round carries ≥ a u32 count
        let mut rounds = Vec::with_capacity(round_count);
        for _ in 0..round_count {
            let len = self.count(9)?; // u64 index + u8 label per selection
            let mut selected = Vec::with_capacity(len);
            let mut labels = Vec::with_capacity(len);
            for _ in 0..len {
                selected.push(self.u64()?);
                labels.push(match self.u8()? {
                    0 => false,
                    1 => true,
                    flag => return Err(bad(format!("invalid oracle-label byte {flag}"))),
                });
            }
            rounds.push(ActiveRoundState { selected, labels });
        }
        Ok(ActiveState {
            rounds,
            labeler_calls,
        })
    }

    /// Rejects trailing garbage: a valid payload is consumed exactly.
    fn finish(&self) -> Result<(), CoreError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            Err(bad(format!(
                "{} trailing bytes after the checkpoint payload",
                self.data.len()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::{Dense, Dropout, Relu};

    fn sample_net() -> Network {
        let mut net = Network::new();
        net.push(Dense::new(4, 6, 1));
        net.push(Relu::new());
        net.push(Dropout::new(0.5, 2));
        net.push(Dense::new(6, 2, 3));
        net
    }

    fn sample_checkpoint(trainer: bool) -> Checkpoint {
        let mut net = sample_net();
        let params = ParameterBlob::from_network(&mut net);
        let report = TrainReport {
            history: vec![
                TrainPoint {
                    step: 0,
                    elapsed_s: 0.25,
                    val_accuracy: 0.5,
                },
                TrainPoint {
                    step: 100,
                    elapsed_s: 1.5,
                    val_accuracy: 0.875,
                },
            ],
            best_val_accuracy: 0.875,
            steps: 150,
            train_time_s: 2.0,
        };
        Checkpoint {
            seed: 42,
            threads: 3,
            tag: "res=10 grid=12 k=8".into(),
            params: params.clone(),
            net_rngs: net.rng_states(),
            completed: vec![BiasRound {
                epsilon: 0.0,
                report: report.clone(),
            }],
            trainer: trainer.then(|| TrainerState {
                epsilon: 0.1,
                steps: 75,
                lr: 5e-4,
                lr_counter: 33,
                batch_rng: [1, 2, 3, 4],
                sampler_rng: [5, 6, 7, 8],
                params: params.clone(),
                best: params,
                best_acc: 0.625,
                bad_checks: 1,
                history: report.history.clone(),
                elapsed_s: 1.25,
                net_rngs: vec![[9, 10, 11, 12]],
                replica_rngs: vec![[13, 14, 15, 16], [17, 18, 19, 20], [21, 22, 23, 24]],
            }),
            active: None,
        }
    }

    fn sample_active() -> ActiveState {
        ActiveState {
            rounds: vec![
                ActiveRoundState {
                    selected: vec![3, 17, 42],
                    labels: vec![true, false, true],
                },
                ActiveRoundState {
                    selected: vec![5],
                    labels: vec![false],
                },
            ],
            labeler_calls: 4,
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        for trainer in [false, true] {
            for active in [false, true] {
                let mut ckpt = sample_checkpoint(trainer);
                if active {
                    ckpt = ckpt.with_active(sample_active());
                }
                let bytes = ckpt.to_bytes();
                assert_eq!(&bytes[..4], b"HSCK");
                assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ckpt);
            }
        }
    }

    #[test]
    fn version_1_files_still_load() {
        // A v1 payload is the v2 payload minus the trailing active
        // section; synthesise one and fix up the header.
        let ckpt = sample_checkpoint(true);
        let mut bytes = ckpt.to_bytes();
        assert_eq!(bytes[bytes.len() - 1], 0, "active-absent flag");
        bytes.pop(); // drop the active section entirely (v1 layout)
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let payload_len = (bytes.len() - HEADER_LEN) as u64;
        bytes[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        let decoded = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, ckpt);
        assert_eq!(decoded.active, None);
        // A v1 file may not carry an active section.
        let mut with_tail = bytes.clone();
        with_tail.push(0);
        let payload_len = (with_tail.len() - HEADER_LEN) as u64;
        with_tail[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&with_tail[HEADER_LEN..]);
        with_tail[8..12].copy_from_slice(&crc.to_le_bytes());
        assert!(Checkpoint::from_bytes(&with_tail).is_err());
    }

    #[test]
    fn unknown_versions_rejected() {
        let mut bytes = sample_checkpoint(false).to_bytes();
        for v in [0u32, 3, 999] {
            bytes[4..8].copy_from_slice(&v.to_le_bytes());
            let err = Checkpoint::from_bytes(&bytes).unwrap_err();
            assert!(err.to_string().contains("version"), "got {err}");
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample_checkpoint(true).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Checkpoint::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let bytes = sample_checkpoint(true).to_bytes();
        for offset in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x01;
            assert!(
                Checkpoint::from_bytes(&bad).is_err(),
                "bit flip at offset {offset} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        // Extend the payload and fix up length + CRC so only the trailing
        // check can catch it.
        let ckpt = sample_checkpoint(false);
        let mut bytes = ckpt.to_bytes();
        bytes.push(0xAB);
        let payload_len = (bytes.len() - HEADER_LEN) as u64;
        bytes[12..20].copy_from_slice(&payload_len.to_le_bytes());
        let crc = crc32(&bytes[HEADER_LEN..]);
        bytes[8..12].copy_from_slice(&crc.to_le_bytes());
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("trailing"), "got {err}");
    }

    #[test]
    fn apply_restores_network_and_resume() {
        let ckpt = sample_checkpoint(false);
        let mut net = sample_net();
        // Perturb the network, then apply.
        net.visit_params(&mut |w, _| {
            for v in w.iter_mut() {
                *v += 1.0;
            }
        });
        let resume = ckpt.apply(&mut net).unwrap();
        assert_eq!(ParameterBlob::from_network(&mut net), ckpt.params);
        assert_eq!(resume.completed, ckpt.completed);
        assert_eq!(resume.trainer, None);
        // A differently-shaped network is rejected.
        let mut small = Network::new();
        small.push(Dense::new(2, 2, 0));
        assert!(ckpt.apply(&mut small).is_err());
    }

    #[test]
    fn validate_run_catches_mismatches() {
        let ckpt = sample_checkpoint(false);
        assert!(ckpt.validate_run(42, 3, "res=10 grid=12 k=8").is_ok());
        assert!(ckpt.validate_run(43, 3, "res=10 grid=12 k=8").is_err());
        assert!(ckpt.validate_run(42, 2, "res=10 grid=12 k=8").is_err());
        assert!(ckpt.validate_run(42, 3, "res=20 grid=12 k=8").is_err());
    }

    #[test]
    fn save_load_roundtrip_and_atomic_replace() {
        let dir = std::env::temp_dir().join(format!("hsck-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let first = sample_checkpoint(false);
        first.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), first);
        // Overwrite with a newer snapshot: the replace is atomic and no
        // temp file survives.
        let second = sample_checkpoint(true);
        second.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), second);
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers, vec![std::ffi::OsString::from("run.ckpt")]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_of_missing_file_errors() {
        let err = Checkpoint::load(Path::new("/nonexistent/dir/run.ckpt")).unwrap_err();
        assert!(matches!(err, CoreError::Checkpoint(_)));
    }
}
