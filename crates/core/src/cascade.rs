//! Cascade prefilter: a cheap density/AdaBoost stage in front of the CNN.
//!
//! A full-chip scan scores every stride position, but real layouts are
//! overwhelmingly non-hotspot — most windows are nowhere near a printable
//! failure, and spending a CNN forward pass on each is wasted work. The
//! classic fix (Viola–Jones, and the SPIE'15 detector this repo already
//! reimplements as a baseline) is a *cascade*: a fast first stage clears
//! the easy negatives and only survivors reach the expensive model.
//!
//! This module builds that first stage from parts the workspace already
//! has: [`hotspot_features::density_feature`] vectors computed straight
//! from the window's raster (no DCT), scored by a
//! [`hotspot_baselines::AdaBoost`] ensemble whose signed margin is
//! thresholded at an operating point calibrated on held-out training data
//! to a configurable **target false-negative rate** (default 0: the
//! threshold is pushed just below the weakest held-out hotspot margin).
//! The calibrated pair travels as a
//! [`hotspot_baselines::CalibratedAdaBoost`] and serialises bit-exactly,
//! so a reloaded prefilter forwards exactly the same windows.
//!
//! The scan integration lives in [`crate::scan`]
//! ([`crate::ScanConfig::with_cascade`]): windows the prefilter clears
//! record their margin and skip the CNN entirely; survivors are scored by
//! the CNN with **bit-identical** results to the non-cascade scan.

use crate::roc::RocPoint;
use crate::CoreError;
use hotspot_baselines::{AdaBoost, AdaBoostConfig, CalibratedAdaBoost, Classifier};
use hotspot_datagen::Dataset;
use hotspot_features::density_feature;
use hotspot_geometry::raster;

/// How to train and calibrate a cascade prefilter.
///
/// # Examples
///
/// ```
/// use hotspot_core::cascade::CascadeConfig;
///
/// let config = CascadeConfig::default();
/// assert_eq!(config.grid_dim, 12);
/// assert_eq!(config.target_fnr, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CascadeConfig {
    /// Density grid dimension: each window is summarised as `grid_dim²`
    /// block-mean densities. The scan window (in pixels) must be divisible
    /// by it.
    pub grid_dim: usize,
    /// AdaBoost boosting rounds.
    pub rounds: usize,
    /// Largest fraction of held-out hotspots the calibrated threshold may
    /// clear (miss). 0 pins the threshold below the weakest held-out
    /// hotspot margin.
    pub target_fnr: f64,
    /// Fraction of the training set (per class, deterministic) held out
    /// for threshold calibration instead of ensemble training.
    pub holdout_fraction: f64,
}

impl Default for CascadeConfig {
    /// 12×12 density grid (mirroring the paper's block grid), 64 boosting
    /// rounds, zero-miss calibration on a 25 % holdout.
    fn default() -> Self {
        CascadeConfig {
            grid_dim: 12,
            rounds: 64,
            target_fnr: 0.0,
            holdout_fraction: 0.25,
        }
    }
}

impl CascadeConfig {
    fn validate(&self) -> Result<(), CoreError> {
        if self.grid_dim == 0 {
            return Err(CoreError::InvalidConfig(
                "cascade density grid must be nonzero",
            ));
        }
        if self.rounds == 0 {
            return Err(CoreError::InvalidConfig(
                "cascade boosting rounds must be nonzero",
            ));
        }
        if !(0.0..1.0).contains(&self.target_fnr) {
            return Err(CoreError::InvalidConfig(
                "cascade target FNR must be in [0, 1)",
            ));
        }
        if !(0.0..=0.5).contains(&self.holdout_fraction) || self.holdout_fraction == 0.0 {
            return Err(CoreError::InvalidConfig(
                "cascade holdout fraction must be in (0, 0.5]",
            ));
        }
        Ok(())
    }
}

/// The trained first cascade stage: a calibrated AdaBoost margin test over
/// per-window density features plus one aggregate mean-density feature.
///
/// The aggregate feature matters: depth-1 stumps over per-cell densities
/// cannot express "this window is (nearly) empty" — the conjunction over
/// all cells — but a single stump on the window mean separates quiet
/// layout area from any real pattern, which is most of what a full-chip
/// prefilter clears.
///
/// Construct by training ([`CascadePrefilter::train`], or
/// [`crate::detector::HotspotDetector::fit_with_cascade`]) or by reloading
/// serialised bytes ([`CascadePrefilter::from_bytes`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CascadePrefilter {
    calibrated: CalibratedAdaBoost,
    grid_dim: usize,
}

impl CascadePrefilter {
    /// Wraps a calibrated model whose feature length must be
    /// `grid_dim² + 1` (per-cell densities plus the mean-density
    /// aggregate appended by [`prefilter_features`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Prefilter`] on a zero grid or a feature-length
    /// disagreement.
    pub fn new(calibrated: CalibratedAdaBoost, grid_dim: usize) -> Result<Self, CoreError> {
        if grid_dim == 0 {
            return Err(CoreError::Prefilter(
                "prefilter density grid must be nonzero".into(),
            ));
        }
        let expected = grid_dim * grid_dim + 1;
        let actual = calibrated.model().feature_len();
        if actual != expected {
            return Err(CoreError::Prefilter(format!(
                "prefilter model scores {actual} features but a {grid_dim}x{grid_dim} \
                 density grid produces {expected} (cells + mean)"
            )));
        }
        Ok(CascadePrefilter {
            calibrated,
            grid_dim,
        })
    }

    /// Trains and calibrates a prefilter on a labelled clip dataset.
    ///
    /// Every clip is rasterised at `resolution_nm` and summarised as a
    /// `grid_dim²` density vector. A deterministic per-class split
    /// ([`holdout_mask`]) reserves `holdout_fraction` of each class for
    /// calibration; the AdaBoost ensemble trains on the remainder (plus a
    /// 25 % augmentation of all-blank negatives, so the mostly-empty
    /// windows of a real layout scan clear decisively), its
    /// signed margin is swept over the holdout ([`margin_sweep`]), and the
    /// decision threshold is set to the largest value whose held-out
    /// false-negative count stays within `target_fnr` ([`pick_threshold`]).
    ///
    /// # Errors
    ///
    /// Rejects invalid configs ([`CoreError::InvalidConfig`]); surfaces
    /// rasters indivisible by the density grid and degenerate splits
    /// (either part missing a class) as [`CoreError::Prefilter`].
    pub fn train(
        train: &Dataset,
        resolution_nm: u32,
        config: &CascadeConfig,
    ) -> Result<Self, CoreError> {
        config.validate()?;
        let (features, labels) = density_vectors(train, resolution_nm, config.grid_dim)?;
        let holdout = holdout_mask(&labels, config.holdout_fraction);
        let mut fit_features = Vec::new();
        let mut fit_labels = Vec::new();
        let mut cal_features = Vec::new();
        let mut cal_labels = Vec::new();
        for ((feature, &label), &held) in features.into_iter().zip(&labels).zip(&holdout) {
            if held {
                cal_features.push(feature);
                cal_labels.push(label);
            } else {
                fit_features.push(feature);
                fit_labels.push(label);
            }
        }
        if !cal_labels.iter().any(|&l| l) {
            return Err(CoreError::Prefilter(
                "calibration holdout contains no hotspots".into(),
            ));
        }
        // Scan layouts are mostly quiet area, but every training clip
        // carries geometry — an ensemble fit on clips alone has no reason
        // to score an all-blank window low (sparse hotspot patterns pull
        // low-density vectors towards the hotspot side). Augment the fit
        // portion with blank negatives so empty windows land firmly on
        // the cleared side of any calibrated threshold.
        let blanks = (fit_features.len() / 4).max(8);
        let blank = vec![0.0f32; config.grid_dim * config.grid_dim + 1];
        fit_features.extend(std::iter::repeat_n(blank, blanks));
        fit_labels.extend(std::iter::repeat_n(false, blanks));
        let model = AdaBoost::fit(
            &fit_features,
            &fit_labels,
            &AdaBoostConfig {
                rounds: config.rounds,
                ..AdaBoostConfig::default()
            },
        )?;
        let mut margins = Vec::with_capacity(cal_features.len());
        for feature in &cal_features {
            margins.push(model.try_score(feature)?);
        }
        let sweep = margin_sweep(&margins, &cal_labels);
        let (threshold, achieved_fnr) = pick_threshold(&sweep, config.target_fnr);
        CascadePrefilter::new(
            CalibratedAdaBoost::new(model, threshold, config.target_fnr, achieved_fnr),
            config.grid_dim,
        )
    }

    /// Density blocks per axis.
    #[inline]
    pub fn grid_dim(&self) -> usize {
        self.grid_dim
    }

    /// Length of the vectors this prefilter scores (`grid_dim²` cell
    /// densities plus the mean-density aggregate).
    #[inline]
    pub fn feature_len(&self) -> usize {
        self.grid_dim * self.grid_dim + 1
    }

    /// The calibrated model (ensemble + operating point + provenance).
    pub fn calibrated(&self) -> &CalibratedAdaBoost {
        &self.calibrated
    }

    /// The calibrated margin threshold: a window is forwarded to the CNN
    /// when its margin is strictly greater.
    #[inline]
    pub fn margin_threshold(&self) -> f32 {
        self.calibrated.threshold()
    }

    /// Overrides the operating point (e.g. `f32::NEG_INFINITY` forces an
    /// all-pass prefilter that forwards every window).
    #[must_use]
    pub fn with_margin_threshold(mut self, threshold: f32) -> Self {
        self.calibrated = self.calibrated.with_threshold(threshold);
        self
    }

    /// Signed ensemble margin of a density vector.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Prefilter`] for a wrong-length vector.
    pub fn try_margin(&self, features: &[f32]) -> Result<f32, CoreError> {
        Ok(self.calibrated.try_margin(features)?)
    }

    /// Whether a margin clears the calibrated threshold (the window is
    /// forwarded to the CNN stage).
    #[inline]
    pub fn passes(&self, margin: f32) -> bool {
        self.calibrated.flags(margin)
    }

    /// CRC-32 (IEEE) of the serialised prefilter — its identity for
    /// provenance tracking ([`crate::api::ModelProvenance::cascade_crc`]).
    pub fn crc(&self) -> u32 {
        hotspot_nn::serialize::crc32(&self.to_bytes())
    }

    /// Serialises the prefilter: a two-line `hsprefilter` header followed
    /// by the calibrated model's own (checksummed, bit-exact) encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = format!("hsprefilter 1\ngrid {}\n", self.grid_dim).into_bytes();
        out.extend_from_slice(&self.calibrated.to_bytes());
        out
    }

    /// Parses bytes produced by [`CascadePrefilter::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Prefilter`] on a malformed header, a corrupt
    /// or truncated model payload, or a grid/feature-length disagreement.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CoreError> {
        let bad = |why: &str| CoreError::Prefilter(format!("prefilter file: {why}"));
        let header_end = data
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .nth(1)
            .map(|(i, _)| i + 1)
            .ok_or_else(|| bad("missing header"))?;
        let header =
            std::str::from_utf8(&data[..header_end]).map_err(|_| bad("header is not UTF-8"))?;
        let mut lines = header.lines();
        match lines
            .next()
            .map(|l| l.split_whitespace().collect::<Vec<_>>())
        {
            Some(parts) if parts.first() == Some(&"hsprefilter") => {
                if parts.get(1) != Some(&"1") {
                    return Err(bad("unsupported version"));
                }
            }
            _ => return Err(bad("missing hsprefilter magic")),
        }
        let grid_dim: usize = match lines
            .next()
            .map(|l| l.split_whitespace().collect::<Vec<_>>())
        {
            Some(parts) if parts.len() == 2 && parts[0] == "grid" => parts[1]
                .parse()
                .map_err(|_| bad("grid value is not a number"))?,
            _ => return Err(bad("missing grid line")),
        };
        let calibrated = CalibratedAdaBoost::from_bytes(&data[header_end..])?;
        CascadePrefilter::new(calibrated, grid_dim)
    }
}

/// Rasterises every clip and extracts its `grid_dim²` density vector,
/// paired with labels in dataset order.
///
/// Uses exactly the raster the feature pipeline sees
/// ([`raster::rasterize_clip`] of the normalised clip), so a scan that
/// crops the same window out of a layout raster reproduces these vectors
/// bit-for-bit.
pub(crate) fn density_vectors(
    data: &Dataset,
    resolution_nm: u32,
    grid_dim: usize,
) -> Result<(Vec<Vec<f32>>, Vec<bool>), CoreError> {
    let mut features = Vec::with_capacity(data.len());
    let mut labels = Vec::with_capacity(data.len());
    for sample in data.iter() {
        let image = raster::rasterize_clip(&sample.clip.normalized(), resolution_nm);
        features.push(prefilter_features(density_feature(&image, grid_dim)?));
        labels.push(sample.hotspot);
    }
    Ok((features, labels))
}

/// Appends the mean cell density to a [`density_feature`] vector — the
/// feature layout [`CascadePrefilter`] scores. Deterministic left-to-right
/// summation, so training-time vectors and scan-time vectors built from
/// bit-identical density cells agree bit-for-bit.
pub fn prefilter_features(mut density: Vec<f32>) -> Vec<f32> {
    let mut total = 0.0f32;
    for &d in &density {
        total += d;
    }
    let mean = if density.is_empty() {
        0.0
    } else {
        total / density.len() as f32
    };
    density.push(mean);
    density
}

/// Deterministic stratified holdout assignment: within each class (in
/// input order), every `period`-th sample starting from the first is held
/// out, where `period ≈ 1 / holdout_fraction`. No RNG — the same labels
/// always produce the same split, so a calibration can be recomputed
/// exactly from the dataset alone.
pub fn holdout_mask(labels: &[bool], holdout_fraction: f64) -> Vec<bool> {
    let period = ((1.0 / holdout_fraction).round() as usize).max(2);
    let mut seen = [0usize; 2];
    labels
        .iter()
        .map(|&l| {
            let class = usize::from(l);
            let position = seen[class];
            seen[class] += 1;
            position.is_multiple_of(period)
        })
        .collect()
}

/// Sweeps the signed-margin threshold over every distinct margin value
/// (plus an all-pass `-∞` anchor), reporting one [`RocPoint`] per
/// candidate, sorted by descending threshold (ascending recall) like
/// [`crate::roc::sweep`]. A sample is flagged (forwarded) when its margin
/// is strictly greater than the threshold.
pub fn margin_sweep(margins: &[f32], labels: &[bool]) -> Vec<RocPoint> {
    let hotspot_total = labels.iter().filter(|&&l| l).count().max(1);
    let mut candidates: Vec<f32> = margins.to_vec();
    candidates.push(f32::NEG_INFINITY);
    candidates.sort_by(f32::total_cmp);
    candidates.dedup_by(|a, b| a.to_bits() == b.to_bits());
    candidates.reverse();
    let mut curve = Vec::with_capacity(candidates.len());
    for threshold in candidates {
        let mut hits = 0usize;
        let mut fas = 0usize;
        for (&m, &l) in margins.iter().zip(labels.iter()) {
            if m > threshold {
                if l {
                    hits += 1;
                } else {
                    fas += 1;
                }
            }
        }
        curve.push(RocPoint {
            threshold,
            recall: hits as f64 / hotspot_total as f64,
            false_alarms: fas,
        });
    }
    curve
}

/// Picks the operating point from a [`margin_sweep`] curve: the **largest**
/// threshold (clearing the most windows) whose false-negative rate stays
/// within `target_fnr`, and the FNR it actually achieves there. The `-∞`
/// anchor (recall 1, FNR 0) guarantees a feasible point exists.
pub fn pick_threshold(sweep: &[RocPoint], target_fnr: f64) -> (f32, f64) {
    let mut best: Option<(f32, f64)> = None;
    for point in sweep {
        let fnr = 1.0 - point.recall;
        if fnr <= target_fnr && best.is_none_or(|(t, _)| point.threshold > t) {
            best = Some((point.threshold, fnr));
        }
    }
    best.unwrap_or((f32::NEG_INFINITY, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_datagen::suite::SuiteSpec;
    use hotspot_litho::{LithoConfig, LithoSimulator};

    fn training_data() -> Dataset {
        let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
        SuiteSpec {
            name: "cascade-unit".into(),
            train_hs: 24,
            train_nhs: 40,
            test_hs: 0,
            test_nhs: 0,
            mix: vec![
                (hotspot_datagen::PatternKind::LineArray, 1.0),
                (hotspot_datagen::PatternKind::LineTips, 1.0),
            ],
            seed: 41,
            version: hotspot_datagen::suite::SUITE_VERSION,
            corner_grid: None,
            augment: None,
        }
        .build(&sim)
        .train
    }

    #[test]
    fn config_validates() {
        assert!(CascadeConfig::default().validate().is_ok());
        for bad in [
            CascadeConfig {
                grid_dim: 0,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                rounds: 0,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                target_fnr: 1.0,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                target_fnr: -0.1,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                holdout_fraction: 0.0,
                ..CascadeConfig::default()
            },
            CascadeConfig {
                holdout_fraction: 0.75,
                ..CascadeConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn holdout_mask_is_stratified_and_deterministic() {
        let labels = [true, false, false, true, false, false, false, true, false];
        let mask = holdout_mask(&labels, 0.25);
        assert_eq!(mask, holdout_mask(&labels, 0.25));
        // First sample of each class is held out; every 4th thereafter.
        assert!(mask[0], "first hotspot held out");
        assert!(mask[1], "first non-hotspot held out");
        assert!(!mask[2] && !mask[3] && !mask[4] && !mask[5]);
        let held_hot = labels.iter().zip(&mask).filter(|(&l, &h)| l && h).count();
        assert_eq!(held_hot, 1);
    }

    #[test]
    fn margin_sweep_is_monotone_with_all_pass_anchor() {
        let margins = [-2.0f32, -1.0, -0.5, 0.5, 1.0, 2.0];
        let labels = [false, false, false, true, true, true];
        let curve = margin_sweep(&margins, &labels);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].false_alarms >= w[0].false_alarms);
            assert!(w[1].threshold <= w[0].threshold);
        }
        let last = curve.last().unwrap();
        assert_eq!(last.threshold, f32::NEG_INFINITY);
        assert_eq!(last.recall, 1.0);
        assert_eq!(last.false_alarms, 3);
    }

    #[test]
    fn pick_threshold_maximises_clearing_within_budget() {
        let margins = [-2.0f32, -1.0, -0.5, 0.5, 1.0, 2.0];
        let labels = [false, false, false, true, true, true];
        let curve = margin_sweep(&margins, &labels);
        // Zero budget: threshold just below the weakest hotspot margin —
        // the largest candidate that still flags all three hotspots.
        let (t, fnr) = pick_threshold(&curve, 0.0);
        assert_eq!(t, -0.5);
        assert_eq!(fnr, 0.0);
        // A 1/3 budget may clear the weakest hotspot.
        let (t, fnr) = pick_threshold(&curve, 0.34);
        assert_eq!(t, 0.5);
        assert!((fnr - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn trained_prefilter_meets_target_on_holdout() {
        let data = training_data();
        let config = CascadeConfig::default();
        let prefilter = CascadePrefilter::train(&data, 10, &config).unwrap();
        assert_eq!(prefilter.grid_dim(), 12);
        assert_eq!(prefilter.calibrated().target_fnr(), 0.0);
        // Recompute the holdout through the exposed deterministic split
        // and verify the calibrated threshold misses none of its hotspots
        // (target_fnr = 0) — the pinned calibration contract.
        let (features, labels) = density_vectors(&data, 10, config.grid_dim).unwrap();
        let mask = holdout_mask(&labels, config.holdout_fraction);
        let mut held_hotspots = 0usize;
        for ((feature, &label), &held) in features.iter().zip(&labels).zip(&mask) {
            if held && label {
                held_hotspots += 1;
                let margin = prefilter.try_margin(feature).unwrap();
                assert!(
                    prefilter.passes(margin),
                    "held-out hotspot cleared at margin {margin} (threshold {})",
                    prefilter.margin_threshold()
                );
            }
        }
        assert!(held_hotspots > 0, "split must hold out hotspots");
        assert_eq!(prefilter.calibrated().achieved_fnr(), 0.0);
    }

    #[test]
    fn prefilter_serialisation_roundtrips() {
        let prefilter =
            CascadePrefilter::train(&training_data(), 10, &CascadeConfig::default()).unwrap();
        let bytes = prefilter.to_bytes();
        let back = CascadePrefilter::from_bytes(&bytes).unwrap();
        assert_eq!(back, prefilter);
        assert_eq!(
            back.margin_threshold().to_bits(),
            prefilter.margin_threshold().to_bits()
        );
        // Corruption in the model payload is caught by its checksum.
        let mut bad = bytes.clone();
        let last = bad.len() - 20;
        bad[last] ^= 0x01;
        assert!(CascadePrefilter::from_bytes(&bad).is_err());
        // A header grid disagreeing with the model's feature length is
        // rejected even with an intact payload.
        let mut wrong_grid = b"hsprefilter 1\ngrid 7\n".to_vec();
        wrong_grid.extend_from_slice(&prefilter.calibrated().to_bytes());
        assert!(CascadePrefilter::from_bytes(&wrong_grid).is_err());
        assert!(CascadePrefilter::from_bytes(b"hsmodel 2\n").is_err());
    }

    #[test]
    fn forced_thresholds_override_operating_point() {
        let prefilter =
            CascadePrefilter::train(&training_data(), 10, &CascadeConfig::default()).unwrap();
        let all_pass = prefilter.clone().with_margin_threshold(f32::NEG_INFINITY);
        let none_pass = prefilter.with_margin_threshold(f32::INFINITY);
        assert!(all_pass.passes(-1.0e30));
        assert!(!none_pass.passes(1.0e30));
    }

    #[test]
    fn indivisible_raster_is_a_precise_error() {
        let data = training_data();
        // 1200 nm clips at 10 nm/px = 120 px; a 7-grid does not divide it.
        let config = CascadeConfig {
            grid_dim: 7,
            ..CascadeConfig::default()
        };
        match CascadePrefilter::train(&data, 10, &config) {
            Err(CoreError::Prefilter(why)) => {
                assert!(why.contains("7x7"), "{why}");
            }
            other => panic!("expected Prefilter error, got {other:?}"),
        }
    }
}
