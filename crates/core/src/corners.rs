//! Per-corner (process-window) prediction head.
//!
//! The base detector answers one question: hotspot or not at the nominal
//! process condition. Suites built with a [`hotspot_litho::CornerGrid`]
//! carry richer labels — one pass/fail bit per dose×defocus corner plus a
//! worst-corner severity margin — and this module learns that richer
//! target: a multi-label head with one independent sigmoid per process
//! corner (via [`hotspot_nn::loss::sigmoid_bce`]) and a linear severity
//! regression output sharing the same feature trunk.
//!
//! # Examples
//!
//! ```no_run
//! use hotspot_core::corners::{CornerHead, CornerHeadConfig};
//! use hotspot_datagen::suite::SuiteSpec;
//! use hotspot_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = LithoSimulator::new(LithoConfig::default())?;
//! let data = SuiteSpec::topo(0.02).build(&sim); // corner-labelled suite
//! let (head, report) = CornerHead::fit(&data.train, &CornerHeadConfig::default())?;
//! println!("trained to loss {:.4}", report.final_loss);
//! let pred = head.predict(&data.test.iter().next().unwrap().clip)?;
//! println!("worst corner fail probability {:.2}", pred.worst_prob());
//! # Ok(())
//! # }
//! ```

use crate::feature::FeaturePipeline;
use crate::CoreError;
use hotspot_datagen::Dataset;
use hotspot_geometry::Clip;
use hotspot_nn::data::BatchSampler;
use hotspot_nn::layers::{Dense, Flatten, Relu};
use hotspot_nn::loss::{sigmoid, sigmoid_bce_into};
use hotspot_nn::{Network, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the per-corner prediction head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerHeadConfig {
    /// Feature-tensor pipeline settings.
    pub pipeline: FeaturePipeline,
    /// Width of the single hidden layer between the feature tensor and the
    /// corner/severity outputs.
    pub hidden: usize,
    /// Full passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Weight of the severity-regression term relative to the per-corner
    /// classification loss.
    pub severity_weight: f32,
    /// Seed for weight initialisation and batch shuffling.
    pub seed: u64,
}

impl Default for CornerHeadConfig {
    fn default() -> Self {
        CornerHeadConfig {
            pipeline: FeaturePipeline::default(),
            hidden: 64,
            epochs: 40,
            batch_size: 8,
            lr: 0.05,
            severity_weight: 0.1,
            seed: 0xC04E_0001,
        }
    }
}

/// One clip's per-corner prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct CornerPrediction {
    /// Independent fail probability per process corner, in corner-grid
    /// order (defocus-major, matching `CornerGrid::corners`).
    pub corner_probs: Vec<f32>,
    /// Predicted worst-corner severity margin, in the label's pixel units
    /// (positive = failing).
    pub severity: f32,
}

impl CornerPrediction {
    /// The highest per-corner fail probability.
    pub fn worst_prob(&self) -> f32 {
        self.corner_probs.iter().copied().fold(0.0, f32::max)
    }

    /// Index of the most-likely-failing corner.
    pub fn worst_corner(&self) -> usize {
        let mut best = 0;
        for (i, &p) in self.corner_probs.iter().enumerate() {
            if p > self.corner_probs[best] {
                best = i;
            }
        }
        best
    }

    /// Whether any corner is predicted to fail at the 0.5 threshold —
    /// the multi-corner analogue of the scalar hotspot decision.
    pub fn is_hotspot(&self) -> bool {
        self.worst_prob() >= 0.5
    }
}

/// Summary of a [`CornerHead::fit`] run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerTrainReport {
    /// Epochs actually run.
    pub epochs: usize,
    /// Mean combined loss (BCE + weighted severity MSE) over the final
    /// epoch.
    pub final_loss: f32,
}

/// Evaluation of a trained head on a corner-labelled dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornerEvalResult {
    /// Fraction of (sample, corner) pairs classified correctly at 0.5.
    pub corner_accuracy: f64,
    /// Per-corner accuracy, in corner-grid order.
    pub per_corner_accuracy: Vec<f64>,
    /// Mean absolute error of the severity regression, in label units.
    pub severity_mae: f64,
    /// Accuracy of the derived any-corner-fails hotspot decision.
    pub hotspot_accuracy: f64,
}

/// A trained per-corner prediction head.
pub struct CornerHead {
    pipeline: FeaturePipeline,
    net: Network,
    n_corners: usize,
    severity_scale: f32,
}

impl std::fmt::Debug for CornerHead {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CornerHead")
            .field("pipeline", &self.pipeline)
            .field("n_corners", &self.n_corners)
            .field("severity_scale", &self.severity_scale)
            .finish()
    }
}

impl CornerHead {
    /// Trains a head on a corner-labelled dataset.
    ///
    /// # Errors
    ///
    /// [`CoreError::Dataset`] when the dataset carries no per-corner
    /// labels (build the suite with a `CornerGrid`),
    /// [`CoreError::DegenerateTrainingSet`] for an empty dataset, and
    /// [`CoreError::InvalidConfig`] for zero sizes or a non-positive
    /// learning rate. Feature-extraction failures propagate.
    pub fn fit(
        train: &Dataset,
        config: &CornerHeadConfig,
    ) -> Result<(Self, CornerTrainReport), CoreError> {
        if train.is_empty() {
            return Err(CoreError::DegenerateTrainingSet(
                "corner head needs a non-empty training set",
            ));
        }
        let n_corners = train.corner_schema().ok_or_else(|| {
            CoreError::Dataset(
                "dataset carries no per-corner labels; \
                 generate the suite with a process-corner grid"
                    .into(),
            )
        })?;
        if config.hidden == 0 || config.epochs == 0 || config.batch_size == 0 {
            return Err(CoreError::InvalidConfig(
                "corner head sizes and epochs must be nonzero",
            ));
        }
        // NaN fails both checks and is rejected alongside bad signs.
        if config.lr.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater)
            || config.severity_weight.partial_cmp(&0.0) == Some(std::cmp::Ordering::Less)
            || config.severity_weight.is_nan()
        {
            return Err(CoreError::InvalidConfig(
                "corner head learning rate must be positive and severity weight non-negative",
            ));
        }

        let pipeline = config.pipeline.clone();
        let mut features = Vec::with_capacity(train.len());
        let mut targets = Vec::with_capacity(train.len());
        let mut severities = Vec::with_capacity(train.len());
        for sample in train.iter() {
            let corners = sample.corners.as_ref().ok_or_else(|| {
                CoreError::Dataset("sample is missing per-corner labels despite the schema".into())
            })?;
            features.push(pipeline.extract(&sample.clip)?);
            targets.push(
                corners
                    .fails
                    .iter()
                    .map(|&f| if f { 1.0f32 } else { 0.0 })
                    .collect::<Vec<f32>>(),
            );
            severities.push(corners.severity as f32);
        }
        // Normalise severities to roughly [-1, 1] so the regression term
        // starts on the same footing as the BCE term.
        let severity_scale = severities.iter().fold(1.0f32, |m, s| m.max(s.abs()));

        let in_features = features[0].len();
        let mut net = Network::new();
        net.push(Flatten::new());
        net.push(Dense::new(in_features, config.hidden, config.seed));
        net.push(Relu::new());
        net.push(Dense::new(
            config.hidden,
            n_corners + 1,
            config.seed.wrapping_add(1),
        ));

        let mut sampler = BatchSampler::new(features.len(), StdRng::seed_from_u64(config.seed));
        let batch = config.batch_size.min(features.len());
        let mut final_loss = 0.0f32;
        for _ in 0..config.epochs {
            let order = sampler.epoch();
            let mut epoch_loss = 0.0f32;
            let mut batches = 0usize;
            for chunk in order.chunks(batch) {
                net.zero_grads();
                let mut batch_loss = 0.0f32;
                for &i in chunk {
                    let logits = net.forward(&features[i], true);
                    let x = logits.as_slice();
                    let mut grad = vec![0.0f32; x.len()];
                    let bce =
                        sigmoid_bce_into(&x[..n_corners], &targets[i], &mut grad[..n_corners]);
                    let pred = x[n_corners];
                    let t = severities[i] / severity_scale;
                    let diff = pred - t;
                    grad[n_corners] = 2.0 * config.severity_weight * diff;
                    batch_loss += bce + config.severity_weight * diff * diff;
                    net.backward(&Tensor::from_vec(vec![x.len()], grad));
                }
                net.apply_gradients(config.lr / chunk.len() as f32);
                epoch_loss += batch_loss / chunk.len() as f32;
                batches += 1;
            }
            final_loss = epoch_loss / batches as f32;
        }

        Ok((
            CornerHead {
                pipeline,
                net,
                n_corners,
                severity_scale,
            },
            CornerTrainReport {
                epochs: config.epochs,
                final_loss,
            },
        ))
    }

    /// Number of process corners this head predicts.
    #[inline]
    pub fn n_corners(&self) -> usize {
        self.n_corners
    }

    /// Predicts the per-corner fail probabilities and severity of one clip.
    ///
    /// # Errors
    ///
    /// Propagates feature-extraction failures.
    pub fn predict(&self, clip: &Clip) -> Result<CornerPrediction, CoreError> {
        let input = self.pipeline.extract(clip)?;
        let logits = self.net.forward_inference(&input);
        let x = logits.as_slice();
        Ok(CornerPrediction {
            corner_probs: x[..self.n_corners].iter().map(|&v| sigmoid(v)).collect(),
            severity: x[self.n_corners] * self.severity_scale,
        })
    }

    /// Evaluates the head on a corner-labelled dataset.
    ///
    /// # Errors
    ///
    /// [`CoreError::Dataset`] when the dataset's corner schema is absent
    /// or disagrees with the head's; extraction failures propagate.
    pub fn evaluate(&self, data: &Dataset) -> Result<CornerEvalResult, CoreError> {
        match data.corner_schema() {
            Some(n) if n == self.n_corners => {}
            other => {
                return Err(CoreError::Dataset(format!(
                    "corner schema mismatch: head predicts {} corners, dataset has {:?}",
                    self.n_corners, other
                )));
            }
        }
        if data.is_empty() {
            return Err(CoreError::Dataset(
                "cannot evaluate on an empty dataset".into(),
            ));
        }
        let mut per_corner_hits = vec![0usize; self.n_corners];
        let mut hotspot_hits = 0usize;
        let mut severity_err = 0.0f64;
        for sample in data.iter() {
            let corners = sample.corners.as_ref().ok_or_else(|| {
                CoreError::Dataset("sample is missing per-corner labels despite the schema".into())
            })?;
            let pred = self.predict(&sample.clip)?;
            for (c, (&p, &truth)) in pred
                .corner_probs
                .iter()
                .zip(corners.fails.iter())
                .enumerate()
            {
                if (p >= 0.5) == truth {
                    per_corner_hits[c] += 1;
                }
            }
            if pred.is_hotspot() == sample.hotspot {
                hotspot_hits += 1;
            }
            severity_err += (pred.severity as f64 - corners.severity as f64).abs();
        }
        let n = data.len() as f64;
        let per_corner_accuracy: Vec<f64> = per_corner_hits
            .iter()
            .map(|&hits| hits as f64 / n)
            .collect();
        Ok(CornerEvalResult {
            corner_accuracy: per_corner_accuracy.iter().sum::<f64>()
                / per_corner_accuracy.len() as f64,
            per_corner_accuracy,
            severity_mae: severity_err / n,
            hotspot_accuracy: hotspot_hits as f64 / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_datagen::Sample;
    use hotspot_geometry::Rect;
    use hotspot_litho::CornerLabels;

    fn window() -> Rect {
        Rect::new(0, 0, 1200, 1200).unwrap()
    }

    /// Dense narrow lines: "fails the two high-dose corners, severity 2".
    fn dense_clip(variant: i64) -> Clip {
        let mut clip = Clip::new(window());
        let pitch = 100 + 10 * variant;
        let mut x = 50;
        while x + 50 <= 1150 {
            clip.push(Rect::new(x, 100, x + 50, 1100).unwrap());
            x += pitch;
        }
        clip
    }

    /// One sparse wide block: "passes everywhere, severity -3".
    fn sparse_clip(variant: i64) -> Clip {
        let mut clip = Clip::new(window());
        let x = 100 + 50 * variant;
        clip.push(Rect::new(x, 200, x + 400, 1000).unwrap());
        clip
    }

    fn dense_labels() -> CornerLabels {
        CornerLabels {
            fails: vec![true, false, true],
            severity: 2,
        }
    }

    fn sparse_labels() -> CornerLabels {
        CornerLabels {
            fails: vec![false, false, false],
            severity: -3,
        }
    }

    fn labelled_dataset(n_per_class: i64) -> Dataset {
        let mut data = Dataset::new();
        for v in 0..n_per_class {
            data.push(Sample::with_corners(dense_clip(v), dense_labels()));
            data.push(Sample::with_corners(sparse_clip(v), sparse_labels()));
        }
        data
    }

    fn quick_config() -> CornerHeadConfig {
        CornerHeadConfig {
            pipeline: FeaturePipeline::new(10, 12, 8).unwrap(),
            hidden: 16,
            epochs: 60,
            batch_size: 4,
            lr: 0.1,
            severity_weight: 0.1,
            seed: 1,
        }
    }

    #[test]
    fn fit_rejects_unlabelled_dataset() {
        let mut data = Dataset::new();
        data.push(Sample::new(dense_clip(0), true));
        let err = CornerHead::fit(&data, &quick_config()).unwrap_err();
        assert!(matches!(err, CoreError::Dataset(_)), "got {err:?}");
    }

    #[test]
    fn fit_rejects_empty_dataset() {
        let err = CornerHead::fit(&Dataset::new(), &quick_config()).unwrap_err();
        assert!(matches!(err, CoreError::DegenerateTrainingSet(_)));
    }

    #[test]
    fn fit_rejects_degenerate_config() {
        let data = labelled_dataset(2);
        for bad in [
            CornerHeadConfig {
                hidden: 0,
                ..quick_config()
            },
            CornerHeadConfig {
                epochs: 0,
                ..quick_config()
            },
            CornerHeadConfig {
                batch_size: 0,
                ..quick_config()
            },
            CornerHeadConfig {
                lr: 0.0,
                ..quick_config()
            },
            CornerHeadConfig {
                severity_weight: -1.0,
                ..quick_config()
            },
        ] {
            let err = CornerHead::fit(&data, &bad).unwrap_err();
            assert!(matches!(err, CoreError::InvalidConfig(_)), "got {err:?}");
        }
    }

    #[test]
    fn learns_separable_corner_labels() {
        let (head, report) = CornerHead::fit(&labelled_dataset(6), &quick_config()).unwrap();
        assert_eq!(head.n_corners(), 3);
        assert!(report.final_loss.is_finite());
        // Held-out variants of each archetype.
        let dense = head.predict(&dense_clip(7)).unwrap();
        let sparse = head.predict(&sparse_clip(7)).unwrap();
        assert_eq!(dense.corner_probs.len(), 3);
        for &p in &dense.corner_probs {
            assert!((0.0..=1.0).contains(&p));
        }
        assert!(
            dense.worst_prob() > 0.5,
            "dense archetype should fail a corner, got {:?}",
            dense.corner_probs
        );
        assert!(dense.is_hotspot());
        assert!(
            sparse.worst_prob() < 0.5,
            "sparse archetype should pass everywhere, got {:?}",
            sparse.corner_probs
        );
        // The never-failing middle corner stays low even for dense clips.
        assert!(dense.corner_probs[1] < 0.5);
        assert_ne!(dense.worst_corner(), 1);
        // Severity regression preserves the ordering of the two classes.
        assert!(dense.severity > sparse.severity);
    }

    #[test]
    fn training_and_prediction_are_deterministic() {
        let data = labelled_dataset(3);
        let (a, ra) = CornerHead::fit(&data, &quick_config()).unwrap();
        let (b, rb) = CornerHead::fit(&data, &quick_config()).unwrap();
        assert_eq!(ra, rb);
        assert_eq!(
            a.predict(&dense_clip(9)).unwrap(),
            b.predict(&dense_clip(9)).unwrap()
        );
    }

    #[test]
    fn evaluate_scores_the_training_set() {
        let data = labelled_dataset(6);
        let (head, _) = CornerHead::fit(&data, &quick_config()).unwrap();
        let eval = head.evaluate(&data).unwrap();
        assert_eq!(eval.per_corner_accuracy.len(), 3);
        assert!(eval.corner_accuracy > 0.9, "got {eval:?}");
        assert!(eval.hotspot_accuracy > 0.9, "got {eval:?}");
        assert!(eval.severity_mae < 2.0, "got {eval:?}");
    }

    #[test]
    fn evaluate_rejects_schema_mismatch() {
        let (head, _) = CornerHead::fit(&labelled_dataset(2), &quick_config()).unwrap();
        // No corner labels at all.
        let mut plain = Dataset::new();
        plain.push(Sample::new(dense_clip(0), true));
        assert!(matches!(
            head.evaluate(&plain).unwrap_err(),
            CoreError::Dataset(_)
        ));
        // Wrong corner count.
        let mut narrow = Dataset::new();
        narrow.push(Sample::with_corners(
            dense_clip(0),
            CornerLabels {
                fails: vec![true, false],
                severity: 1,
            },
        ));
        assert!(matches!(
            head.evaluate(&narrow).unwrap_err(),
            CoreError::Dataset(_)
        ));
        // Empty dataset.
        assert!(head.evaluate(&Dataset::new()).is_err());
    }
}
