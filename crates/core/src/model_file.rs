//! Self-describing model files.
//!
//! Layout: a UTF-8 header of `key value` lines terminated by a blank line,
//! followed by the binary parameter blob of
//! [`hotspot_nn::serialize::ParameterBlob::to_bytes`]:
//!
//! ```text
//! hsmodel 2
//! resolution_nm 10
//! grid 12
//! k 32
//! crc 0x1a2b3c4d
//!
//! <binary parameters>
//! ```
//!
//! The header carries everything needed to rebuild the feature pipeline
//! and CNN before loading weights, so a model file is usable without any
//! out-of-band configuration.
//!
//! Version 2 added the `crc` line: a CRC-32 (IEEE, shared with
//! [`hotspot_nn::serialize::crc32`]) over the canonical header fields and
//! the parameter bytes, so corruption anywhere in the file — a flipped
//! digit in `grid` just as much as a damaged weight — is reported instead
//! of silently loading a different model. The same CRC doubles as the
//! model's identity in [`ModelProvenance`]: every scan report and daemon
//! response names the exact weights that produced it.
//!
//! This module lives in `hotspot-core` (it moved here from the CLI crate)
//! so the CLI and the serve daemon load models through one code path.

use crate::api::ModelProvenance;
use crate::model::CnnConfig;
use crate::{CoreError, FeaturePipeline};
use hotspot_nn::serialize::{crc32, ParameterBlob};
use hotspot_nn::Network;

/// Model-file format version written by [`ModelFile::to_bytes`].
pub const VERSION: u32 = 2;

/// Everything needed to reconstruct a trained detector.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelFile {
    /// Feature-pipeline geometry.
    pub resolution_nm: u32,
    /// Block grid dimension `n`.
    pub grid: usize,
    /// Coefficients per block `k` (CNN input channels).
    pub k: usize,
    /// Flat trained parameters.
    pub blob: ParameterBlob,
}

impl ModelFile {
    /// The canonical header prefix the file checksum covers (everything
    /// before the `crc` line). Reconstructed from parsed values on load so
    /// that any corruption that changes a field value breaks the CRC.
    fn covered_header(&self) -> String {
        format!(
            "hsmodel {VERSION}\nresolution_nm {}\ngrid {}\nk {}\n",
            self.resolution_nm, self.grid, self.k
        )
    }

    /// CRC-32 over the canonical header fields plus the parameter bytes.
    fn checksum(&self, blob_bytes: &[u8]) -> u32 {
        let mut covered = self.covered_header().into_bytes();
        covered.extend_from_slice(blob_bytes);
        crc32(&covered)
    }

    /// The file checksum — the model's identity for provenance tracking
    /// (recomputed from the current in-memory state, so it always matches
    /// what [`ModelFile::to_bytes`] would write).
    pub fn crc(&self) -> u32 {
        self.checksum(&self.blob.to_bytes())
    }

    /// The provenance stamp for results produced by this model, paired
    /// with the cascade prefilter checksum when one is in play.
    pub fn provenance(&self, cascade_crc: Option<u32>) -> ModelProvenance {
        ModelProvenance {
            model_crc: self.crc(),
            model_version: VERSION,
            cascade_crc,
        }
    }

    /// Serialises header + parameters.
    pub fn to_bytes(&self) -> Vec<u8> {
        let blob = self.blob.to_bytes();
        let crc = self.checksum(&blob);
        let mut out = self.covered_header().into_bytes();
        out.extend_from_slice(format!("crc {crc:#010x}\n\n").as_bytes());
        out.extend_from_slice(&blob);
        out
    }

    /// Parses bytes produced by [`ModelFile::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] on a malformed header, an unsupported
    /// version, a checksum mismatch, or a malformed parameter blob. Never
    /// panics, and never accepts a file whose decoded model would differ
    /// from the one written.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CoreError> {
        let header_end = find_blank_line(data)
            .ok_or_else(|| CoreError::Model("missing header terminator".into()))?;
        let header = std::str::from_utf8(&data[..header_end])
            .map_err(|_| CoreError::Model("header is not UTF-8".into()))?;
        let mut version = None;
        let mut resolution_nm = None;
        let mut grid = None;
        let mut k = None;
        let mut crc_declared = None;
        for line in header.lines() {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some("hsmodel"), Some(v)) => version = Some(parse_value::<u32>("hsmodel", v)?),
                (Some("resolution_nm"), Some(v)) => {
                    resolution_nm = Some(parse_value("resolution_nm", v)?);
                }
                (Some("grid"), Some(v)) => grid = Some(parse_value("grid", v)?),
                (Some("k"), Some(v)) => k = Some(parse_value("k", v)?),
                (Some("crc"), Some(v)) => {
                    crc_declared = Some(
                        u32::from_str_radix(v.strip_prefix("0x").unwrap_or(v), 16).map_err(
                            |_| CoreError::Model(format!("invalid value for crc: '{v}'")),
                        )?,
                    );
                }
                (Some(key), None) => {
                    return Err(CoreError::Model(format!(
                        "header line '{key}' has no value"
                    )))
                }
                (Some(other), _) => {
                    return Err(CoreError::Model(format!("unknown header key '{other}'")))
                }
                (None, _) => {}
            }
        }
        match version {
            Some(VERSION) => {}
            Some(v) => {
                return Err(CoreError::Model(format!(
                    "unsupported model version {v} (expected {VERSION})"
                )))
            }
            None => return Err(CoreError::Model("missing hsmodel version line".into())),
        }
        let crc_declared = crc_declared.ok_or_else(|| CoreError::Model("missing crc".into()))?;
        let blob_bytes = &data[header_end + 1..];
        let model = ModelFile {
            resolution_nm: resolution_nm
                .ok_or_else(|| CoreError::Model("missing resolution_nm".into()))?,
            grid: grid.ok_or_else(|| CoreError::Model("missing grid".into()))?,
            k: k.ok_or_else(|| CoreError::Model("missing k".into()))?,
            blob: ParameterBlob::from_bytes(blob_bytes)
                .map_err(|e| CoreError::Model(format!("parameter blob: {e}")))?,
        };
        let crc_actual = model.checksum(blob_bytes);
        if crc_actual != crc_declared {
            return Err(CoreError::Model(format!(
                "file checksum mismatch: stored {crc_declared:#010x}, computed {crc_actual:#010x}"
            )));
        }
        Ok(model)
    }

    /// Rebuilds the feature pipeline this model expects.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] for impossible header geometry.
    pub fn pipeline(&self) -> Result<FeaturePipeline, CoreError> {
        FeaturePipeline::new(self.resolution_nm, self.grid, self.k)
            .map_err(|e| CoreError::Model(format!("invalid pipeline in header: {e}")))
    }

    /// Rebuilds the network architecture and loads the stored weights.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Model`] when the blob does not match the
    /// declared architecture.
    pub fn network(&self) -> Result<Network, CoreError> {
        let cnn = CnnConfig {
            input_grid: self.grid,
            input_channels: self.k,
            ..CnnConfig::default()
        };
        let mut net = cnn.build();
        self.blob
            .load_into(&mut net)
            .map_err(|e| CoreError::Model(format!("weights do not fit architecture: {e}")))?;
        Ok(net)
    }
}

fn parse_value<T: std::str::FromStr>(key: &str, v: &str) -> Result<T, CoreError> {
    v.parse()
        .map_err(|_| CoreError::Model(format!("invalid value for {key}: '{v}'")))
}

fn find_blank_line(data: &[u8]) -> Option<usize> {
    // Header is small; scan for "\n\n".
    data.windows(2)
        .position(|w| w == b"\n\n")
        .map(|idx| idx + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::Dense;

    fn sample() -> ModelFile {
        let cnn = CnnConfig {
            input_grid: 12,
            input_channels: 4,
            ..CnnConfig::default()
        };
        let mut net = cnn.build();
        ModelFile {
            resolution_nm: 10,
            grid: 12,
            k: 4,
            blob: ParameterBlob::from_network(&mut net),
        }
    }

    /// A model with a deliberately tiny blob, so exhaustive per-byte fuzz
    /// stays fast. `to_bytes`/`from_bytes` never validate the blob against
    /// the declared architecture, so this is fine for format tests.
    fn tiny() -> ModelFile {
        let mut net = Network::new();
        net.push(Dense::new(3, 2, 1));
        ModelFile {
            resolution_nm: 10,
            grid: 12,
            k: 4,
            blob: ParameterBlob::from_network(&mut net),
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.to_bytes();
        let back = ModelFile::from_bytes(&bytes).unwrap();
        assert_eq!(m, back);
        // Network rebuild works and predicts identically.
        let mut a = m.network().unwrap();
        let mut b = back.network().unwrap();
        let x = hotspot_nn::Tensor::zeros(vec![4, 12, 12]);
        assert_eq!(a.forward(&x, false), b.forward(&x, false));
    }

    #[test]
    fn crc_matches_written_header() {
        let m = tiny();
        let bytes = m.to_bytes();
        let text = String::from_utf8_lossy(&bytes);
        let expected = format!("crc {:#010x}", m.crc());
        assert!(
            text.contains(&expected),
            "header does not carry crc(): {expected} not in {text:?}"
        );
        // Provenance carries the same identity.
        let p = m.provenance(Some(7));
        assert_eq!(p.model_crc, m.crc());
        assert_eq!(p.model_version, VERSION);
        assert_eq!(p.cascade_crc, Some(7));
    }

    #[test]
    fn rejects_corruption() {
        let m = sample();
        let bytes = m.to_bytes();
        assert!(ModelFile::from_bytes(&bytes[..10]).is_err());
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(ModelFile::from_bytes(&bad).is_err());
        // Truncated blob.
        assert!(ModelFile::from_bytes(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn unsupported_version_is_named() {
        let mut bytes = tiny().to_bytes();
        let pos = bytes
            .windows(9)
            .position(|w| w == b"hsmodel 2")
            .expect("header present");
        bytes[pos + 8] = b'3';
        let err = ModelFile::from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unsupported model version 3"),
            "got: {err}"
        );
    }

    #[test]
    fn invalid_field_value_is_named() {
        let blob = tiny().blob.to_bytes();
        let mut bytes =
            b"hsmodel 2\nresolution_nm 10\ngrid twelve\nk 4\ncrc 0x00000000\n\n".to_vec();
        bytes.extend_from_slice(&blob);
        let err = ModelFile::from_bytes(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("invalid value for grid: 'twelve'"),
            "got: {err}"
        );
    }

    #[test]
    fn missing_field_is_named() {
        let blob = tiny().blob.to_bytes();
        let mut bytes = b"hsmodel 2\nresolution_nm 10\nk 4\ncrc 0x00000000\n\n".to_vec();
        bytes.extend_from_slice(&blob);
        let err = ModelFile::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("missing grid"), "got: {err}");
    }

    #[test]
    fn header_value_corruption_fails_checksum() {
        // "grid 12" -> "grid 13": same length, parses fine, but decodes to
        // a different model — the file checksum must catch it.
        let bytes = tiny().to_bytes();
        let pos = bytes
            .windows(7)
            .position(|w| w == b"grid 12")
            .expect("header present");
        let mut bad = bytes.clone();
        bad[pos + 6] = b'3';
        let err = ModelFile::from_bytes(&bad).unwrap_err();
        assert!(err.to_string().contains("checksum"), "got: {err}");
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = tiny().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                ModelFile::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected_or_identical() {
        // A flipped byte must never produce a *different* model: either
        // decoding fails, or (e.g. a flip inside ignorable whitespace) it
        // yields exactly the model that was written.
        let m = tiny();
        let bytes = m.to_bytes();
        for offset in 0..bytes.len() {
            for bit in [0x01u8, 0x80] {
                let mut bad = bytes.clone();
                bad[offset] ^= bit;
                if let Ok(decoded) = ModelFile::from_bytes(&bad) {
                    assert_eq!(
                        decoded, m,
                        "flip at offset {offset} decoded to a different model"
                    );
                }
            }
        }
    }

    #[test]
    fn mismatched_architecture_rejected() {
        let mut m = sample();
        m.k = 8; // header no longer matches the stored blob size
        let bytes = m.to_bytes();
        let parsed = ModelFile::from_bytes(&bytes).unwrap();
        assert!(parsed.network().is_err());
    }

    #[test]
    fn pipeline_matches_header() {
        let m = sample();
        let p = m.pipeline().unwrap();
        assert_eq!(p.resolution_nm(), 10);
        assert_eq!(p.grid_dim(), 12);
        assert_eq!(p.coefficients(), 4);
    }
}
