//! One-line import for the common detector workflow.
//!
//! ```
//! use hotspot_core::prelude::*;
//!
//! let config = DetectorConfig::default();
//! assert_eq!(config.parallelism, Parallelism::auto());
//! ```

pub use crate::api::{
    ClipSpec, ErrorKind, ErrorReply, ModelProvenance, PredictRequest, PredictResponse,
    ReloadRequest, ReloadResponse, Request, ScanRequest, ScanResponse, ServeCounters,
    StatusResponse, WIRE_VERSION,
};
pub use crate::biased::{BiasedLearningConfig, BiasedLearningReport};
pub use crate::checkpoint::Checkpoint;
pub use crate::detector::{DetectorConfig, HotspotDetector};
pub use crate::feature::FeaturePipeline;
pub use crate::metrics::EvalResult;
pub use crate::mgd::{MgdConfig, TrainReport};
pub use crate::model::CnnConfig;
pub use crate::model_file::ModelFile;
pub use crate::parallelism::Parallelism;
pub use crate::scan::{CacheStats, HotspotRegion, ScanConfig, ScanReport, WindowScore};
pub use crate::CoreError;
