//! Deep biased learning for layout hotspot detection — the DAC'17 method.
//!
//! This crate assembles the substrates into the paper's framework:
//!
//! - [`feature`]: the clip → feature-tensor pipeline (Section 3) producing
//!   CNN-ready CHW tensors.
//! - [`model`]: the Table-1 CNN — two convolution stages (two 3×3
//!   convolutions + ReLU + 2×2 max-pool each; 16 then 32 maps) followed by
//!   FC-250 with 50 % dropout and an FC-2 output.
//! - [`mgd`]: mini-batch gradient descent with step-decayed learning rate
//!   and validation-based stopping (Algorithm 1, Section 4.2).
//! - [`biased`]: the biased-learning loop (Algorithm 2, Section 4.3) that
//!   fine-tunes with relaxed non-hotspot targets `[1-ε, ε]`.
//! - [`shift`]: the decision-boundary-shifting alternative (Eq. 11) that
//!   biased learning is compared against in Figure 4.
//! - [`metrics`]: accuracy / false-alarm / ODST accounting (Definitions
//!   1–3), with [`roc`] threshold sweeps and [`calibration`] reliability
//!   analysis of the confidence-reduction mechanism behind Theorem 1.
//! - [`detector`]: a one-stop train/predict/evaluate API.
//! - [`corners`]: a multi-label head for process-corner-labelled suites,
//!   predicting one fail probability per dose×defocus corner plus a
//!   worst-corner severity margin.
//!
//! # Examples
//!
//! Train a detector on a miniature synthetic benchmark and evaluate it:
//!
//! ```no_run
//! use hotspot_core::detector::{DetectorConfig, HotspotDetector};
//! use hotspot_datagen::suite::SuiteSpec;
//! use hotspot_litho::{LithoConfig, LithoSimulator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = LithoSimulator::new(LithoConfig::default())?;
//! let data = SuiteSpec::iccad(0.01).build(&sim);
//! let mut config = DetectorConfig::default();
//! config.mgd.max_steps = 500; // keep the example quick
//! let detector = HotspotDetector::fit(&data.train, &config)?;
//! let result = detector.evaluate(&data.test)?;
//! println!("accuracy {:.1}%, false alarms {}", 100.0 * result.accuracy, result.false_alarms);
//! # Ok(())
//! # }
//! ```

pub mod active;
pub mod api;
pub mod biased;
pub mod calibration;
pub mod cascade;
pub mod checkpoint;
pub mod corners;
pub mod detector;
pub mod feature;
pub mod metrics;
pub mod mgd;
pub mod model;
pub mod model_file;
pub mod parallelism;
pub mod prelude;
pub mod roc;
pub mod scan;
pub mod session;
pub mod shift;

pub use active::{
    acquire_batch, train_active, ActiveConfig, ActiveReport, ActiveRoundReport, RunIdentity,
};
pub use api::ModelProvenance;
pub use biased::{BiasedLearningConfig, BiasedLearningReport};
pub use cascade::{CascadeConfig, CascadePrefilter};
pub use checkpoint::{ActiveRoundState, ActiveState, Checkpoint};
pub use corners::{
    CornerEvalResult, CornerHead, CornerHeadConfig, CornerPrediction, CornerTrainReport,
};
pub use detector::{DetectorConfig, HotspotDetector};
pub use feature::FeaturePipeline;
pub use metrics::EvalResult;
pub use mgd::{MgdConfig, TrainReport};
pub use model::CnnConfig;
pub use model_file::ModelFile;
pub use parallelism::Parallelism;
pub use scan::{
    CacheStats, CascadeScanStats, HotspotRegion, ScanConfig, ScanReport, ScanStage, WindowScore,
};
pub use session::TrainSession;

use std::error::Error;
use std::fmt;

/// Errors from detector construction and training.
#[derive(Debug)]
pub enum CoreError {
    /// Feature extraction failed (bad pipeline/clip geometry combination).
    Feature(hotspot_dct::DctError),
    /// The training set cannot train a classifier.
    DegenerateTrainingSet(&'static str),
    /// A configuration value was invalid.
    InvalidConfig(&'static str),
    /// A training checkpoint could not be encoded, decoded, written, or
    /// applied (corrupt file, mismatched run configuration, I/O failure).
    Checkpoint(String),
    /// The cascade prefilter could not be trained, calibrated, decoded,
    /// or applied (degenerate calibration split, corrupt model file,
    /// density grid inconsistent with the scan window).
    Prefilter(String),
    /// A model file could not be decoded, or decoded to something
    /// unusable (corrupt header or blob, unsupported version, weights
    /// that do not fit the declared architecture).
    Model(String),
    /// A training set could not be grown (feature/label count mismatch,
    /// inconsistent feature dimension or clip window).
    Dataset(String),
    /// The active-learning loop failed (empty pool, degenerate
    /// acquisition, inconsistent checkpointed selections).
    Active(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Feature(e) => write!(f, "feature extraction failed: {e}"),
            CoreError::DegenerateTrainingSet(why) => write!(f, "degenerate training set: {why}"),
            CoreError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CoreError::Checkpoint(why) => write!(f, "checkpoint error: {why}"),
            CoreError::Prefilter(why) => write!(f, "cascade prefilter error: {why}"),
            CoreError::Model(why) => write!(f, "model file error: {why}"),
            CoreError::Dataset(why) => write!(f, "dataset error: {why}"),
            CoreError::Active(why) => write!(f, "active learning error: {why}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Feature(e) => Some(e),
            _ => None,
        }
    }
}

impl From<hotspot_dct::DctError> for CoreError {
    fn from(e: hotspot_dct::DctError) -> Self {
        CoreError::Feature(e)
    }
}

impl From<hotspot_features::FeatureError> for CoreError {
    fn from(e: hotspot_features::FeatureError) -> Self {
        CoreError::Prefilter(e.to_string())
    }
}

impl From<hotspot_baselines::BaselineError> for CoreError {
    fn from(e: hotspot_baselines::BaselineError) -> Self {
        CoreError::Prefilter(e.to_string())
    }
}

impl From<hotspot_datagen::DatasetError> for CoreError {
    fn from(e: hotspot_datagen::DatasetError) -> Self {
        CoreError::Dataset(e.to_string())
    }
}

impl From<hotspot_features::kmeans::KMeansError> for CoreError {
    fn from(e: hotspot_features::kmeans::KMeansError) -> Self {
        CoreError::Active(e.to_string())
    }
}
