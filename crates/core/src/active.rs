//! Batch active learning: label-efficient training against an expensive
//! oracle.
//!
//! Following the batch-active-learning recipe for hotspot detection
//! (uncertainty sampling plus diversity over feature tensors), the loop
//! in [`train_active`] alternates between
//!
//! 1. **Acquisition** ([`acquire_batch`]): score every unlabeled pool
//!    clip with the current CNN, shortlist the most *uncertain*
//!    (probability closest to the 0.5 decision boundary — the margin
//!    whose calibration [`crate::calibration`] measures), cluster the
//!    shortlist's DCT feature tensors with k-means for *diversity*, and
//!    pick greedily across clusters so one batch never spends its budget
//!    on near-duplicates.
//! 2. **Labelling**: pay the oracle (litho simulation,
//!    [`SIM_TIME_PER_CLIP_S`] per clip) for the selected batch only.
//! 3. **Fine-tuning**: grow the [`TrainSession`] with the new labels and
//!    run one warm-start biased round.
//!
//! Everything is deterministic given the session seeds, and every batch
//! is recorded (with its oracle labels) in the version-2 checkpoint, so a
//! SIGKILL at any point resumes bit-identically **without re-invoking the
//! labeler** for clips already paid for.

use crate::biased::{BiasRound, BiasedLearningReport, CheckpointEvent};
use crate::checkpoint::{ActiveRoundState, ActiveState, Checkpoint};
use crate::detector::{DetectorConfig, HotspotDetector};
use crate::mgd::{self, MgdConfig};
use crate::session::TrainSession;
use crate::CoreError;
use hotspot_datagen::{ClipPool, Dataset};
use hotspot_features::{KMeans, KMeansConfig};
use hotspot_litho::simtime::SIM_TIME_PER_CLIP_S;
use hotspot_litho::Labeler;
use hotspot_nn::{Network, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the active-learning loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveConfig {
    /// Acquisition rounds to run (0 = just the initial schedule).
    pub rounds: usize,
    /// Clips labelled per round.
    pub batch: usize,
    /// Diversity clusters per round; 0 derives one cluster per batch
    /// slot.
    pub clusters: usize,
    /// Uncertainty-shortlist size as a multiple of `batch` (values below
    /// 1 behave as 1); the shortlist is what gets clustered.
    pub candidate_factor: usize,
    /// Bias ε of every per-round fine-tune (see [`crate::biased`]).
    pub epsilon: f32,
    /// Trainer settings for the per-round fine-tunes; each round derives
    /// its own seed from this one, so batches see distinct but
    /// reproducible sampling streams.
    pub fine_tune: MgdConfig,
    /// Acquisition seed (uncertainty/diversity selection stream).
    pub seed: u64,
}

impl Default for ActiveConfig {
    fn default() -> Self {
        let base = MgdConfig::default();
        ActiveConfig {
            rounds: 4,
            batch: 10,
            clusters: 0,
            candidate_factor: 4,
            epsilon: 0.1,
            fine_tune: MgdConfig {
                max_steps: (base.max_steps / 4).max(1),
                lr: base.lr * 0.5,
                ..base
            },
            seed: 0,
        }
    }
}

/// Identity of a resumable run, checked against checkpoints (see
/// [`Checkpoint::validate_run`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunIdentity {
    /// Training seed (must match the trainer configs).
    pub seed: u64,
    /// Worker-thread count of the trainer.
    pub threads: usize,
    /// Free-form configuration fingerprint.
    pub tag: String,
}

/// One completed acquisition round.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveRoundReport {
    /// Selected pool indices, in acquisition order.
    pub selected: Vec<usize>,
    /// Oracle labels, aligned with `selected`.
    pub labels: Vec<bool>,
    /// Number of hotspots the oracle found in the batch.
    pub hotspots_found: usize,
    /// The fine-tune round trained after appending the batch.
    pub train: BiasRound,
}

/// Outcome of a full active-learning run.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveReport {
    /// Acquisition rounds in order, including rounds replayed from a
    /// checkpoint on resume.
    pub rounds: Vec<ActiveRoundReport>,
    /// Total labeler invocations across the run, including before a
    /// resume.
    pub labeler_calls: usize,
    /// Simulated labelling cost: `labeler_calls ×` [`SIM_TIME_PER_CLIP_S`].
    pub labeler_cost_s: f64,
    /// Size of the unlabeled pool the run drew from.
    pub pool_size: usize,
    /// The full training trajectory (initial schedule plus fine-tunes).
    pub trajectory: BiasedLearningReport,
}

impl ActiveReport {
    /// Pool indices labelled so far, in acquisition order.
    pub fn labelled_indices(&self) -> Vec<usize> {
        self.rounds
            .iter()
            .flat_map(|r| r.selected.clone())
            .collect()
    }
}

/// Derives the deterministic per-round stream seed.
fn round_seed(base: u64, round: usize) -> u64 {
    base ^ (round as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Selects one batch of pool indices: uncertainty shortlist → k-means
/// diversity clustering → greedy round-robin across clusters.
///
/// `probs` and `features` are indexed by pool position; `unlabeled` lists
/// the candidate positions. The result is deterministic given `seed`
/// (uncertainty ties break by pool index, clustering uses a seeded
/// stream), contains no duplicates, and is a subset of `unlabeled`; it is
/// shorter than `batch` only when the candidates run out.
///
/// # Errors
///
/// [`CoreError::Active`] when `batch` is zero, a candidate index is
/// outside the scored pool, or clustering fails
/// ([`hotspot_features::kmeans::KMeansError`]).
pub fn acquire_batch(
    probs: &[f32],
    features: &[Vec<f32>],
    unlabeled: &[usize],
    batch: usize,
    clusters: usize,
    candidate_factor: usize,
    seed: u64,
) -> Result<Vec<usize>, CoreError> {
    if batch == 0 {
        return Err(CoreError::Active("batch size must be nonzero".into()));
    }
    if unlabeled.is_empty() {
        return Ok(Vec::new());
    }
    if let Some(&bad) = unlabeled
        .iter()
        .find(|&&i| i >= probs.len() || i >= features.len())
    {
        return Err(CoreError::Active(format!(
            "candidate index {bad} outside the scored pool ({} probs, {} features)",
            probs.len(),
            features.len()
        )));
    }
    // Uncertainty ranking: distance to the decision boundary, ascending,
    // with ties broken by pool index so the order is total.
    let mut ranked: Vec<usize> = unlabeled.to_vec();
    ranked.sort_by(|&a, &b| {
        let ua = (probs[a] - 0.5).abs();
        let ub = (probs[b] - 0.5).abs();
        ua.total_cmp(&ub).then(a.cmp(&b))
    });
    let shortlist_len = ranked
        .len()
        .min(batch.saturating_mul(candidate_factor.max(1)));
    let shortlist = &ranked[..shortlist_len];
    if shortlist.len() <= batch {
        return Ok(shortlist.to_vec());
    }
    // Diversity: cluster the shortlist's feature tensors so the batch
    // spreads over distinct pattern neighbourhoods.
    let k = if clusters == 0 { batch } else { clusters }.clamp(1, shortlist.len());
    let samples: Vec<Vec<f32>> = shortlist.iter().map(|&i| features[i].clone()).collect();
    let cfg = KMeansConfig {
        k,
        ..KMeansConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let (_, assignments) = KMeans::fit(&samples, &cfg, &mut rng)?;
    // Bucket shortlist members per cluster, preserving uncertainty order;
    // clusters are visited in order of their most-uncertain member.
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut cluster_order: Vec<usize> = Vec::new();
    for (pos, &idx) in shortlist.iter().enumerate() {
        let c = assignments[pos];
        if buckets[c].is_empty() {
            cluster_order.push(c);
        }
        buckets[c].push(idx);
    }
    // Greedy round-robin: the most uncertain unpicked member of each
    // cluster in turn, until the batch is full.
    let mut picks = Vec::with_capacity(batch);
    let mut cursor = vec![0usize; k];
    while picks.len() < batch {
        let mut advanced = false;
        for &c in &cluster_order {
            if picks.len() == batch {
                break;
            }
            if cursor[c] < buckets[c].len() {
                picks.push(buckets[c][cursor[c]]);
                cursor[c] += 1;
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    Ok(picks)
}

/// Runs the full active-learning loop: the initial biased schedule on the
/// labelled seed dataset, then `active.rounds` acquisition → label →
/// fine-tune rounds against the unlabeled pool, stopping early if the
/// pool runs dry.
///
/// `persist` receives a fully-assembled version-2 [`Checkpoint`] at every
/// checkpointable moment: periodic optimiser steps (every
/// `checkpoint_every` when nonzero), round boundaries, and — critically —
/// **immediately after a batch is labelled**, so a crash between paying
/// the oracle and finishing the fine-tune never re-labels on resume.
/// Resuming from any of those checkpoints reproduces the identical batch
/// sequence and bit-identical final weights.
///
/// # Errors
///
/// Everything [`HotspotDetector::fit`] rejects, plus
/// [`CoreError::Active`] for an empty pool or zero batch,
/// [`CoreError::Checkpoint`] for a resume state inconsistent with the
/// run, the schedule, or the pool, and any error `persist` returns.
#[allow(clippy::too_many_arguments)]
pub fn train_active(
    seed_data: &Dataset,
    pool: &ClipPool,
    labeler: &dyn Labeler,
    config: &DetectorConfig,
    active: &ActiveConfig,
    identity: &RunIdentity,
    resume: Option<&Checkpoint>,
    checkpoint_every: usize,
    persist: &mut dyn FnMut(&Checkpoint) -> Result<(), CoreError>,
) -> Result<(HotspotDetector, ActiveReport), CoreError> {
    if pool.is_empty() {
        return Err(CoreError::Active("the unlabeled pool is empty".into()));
    }
    if active.batch == 0 {
        return Err(CoreError::Active("batch size must be nonzero".into()));
    }
    if !(0.0..0.5).contains(&active.epsilon) {
        return Err(CoreError::InvalidConfig("ε must be in [0, 0.5)"));
    }
    if seed_data.hotspot_count() == 0 || seed_data.non_hotspot_count() == 0 {
        return Err(CoreError::DegenerateTrainingSet(
            "training set must contain both classes",
        ));
    }
    let pipeline = config.pipeline.clone();
    let (seed_features, seed_labels) = pipeline.extract_dataset(seed_data)?;
    let pool_tensors: Vec<Tensor> = pool
        .clips()
        .iter()
        .map(|c| pipeline.extract(c))
        .collect::<Result<_, _>>()?;
    let pool_flat: Vec<Vec<f32>> = pool_tensors.iter().map(|t| t.as_slice().to_vec()).collect();

    let schedule = config.schedule();
    let schedule_rounds = schedule.rounds;
    let net = config.reconciled_cnn().build();
    let mut state = ActiveState::default();
    let mut session = TrainSession::new(net, seed_features, seed_labels, schedule);
    if let Some(ckpt) = resume {
        // Restore weights + RNG streams into the session's network, then
        // position the round cursor.
        ckpt.validate_run(identity.seed, identity.threads, &identity.tag)?;
        state = ckpt.active.clone().unwrap_or_default();
        let biased_resume = ckpt.apply(session.network_mut())?;
        session.restore(biased_resume);
    }

    // --- Phase 1: the initial biased schedule on the seed data. ---------
    if session.completed().len() < schedule_rounds {
        if !state.rounds.is_empty() {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint records {} labelled batches but the initial schedule is unfinished",
                state.rounds.len()
            )));
        }
        let mut hook = make_hook(identity, &state, persist);
        session.run_schedule(checkpoint_every, &mut hook)?;
    } else {
        // Past the schedule: every extra completed round consumed one
        // labelled batch; at most one batch may be labelled but not yet
        // fine-tuned (an interrupted round).
        let fine_tuned = session.completed().len() - schedule_rounds;
        if state.rounds.len() != fine_tuned && state.rounds.len() != fine_tuned + 1 {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint records {} labelled batches but {fine_tuned} fine-tune rounds",
                state.rounds.len()
            )));
        }
    }

    // --- Phase 2: replay already-labelled batches (no oracle calls). ----
    let mut unlabeled_mask = vec![true; pool.len()];
    for (r, round) in state.rounds.iter().enumerate() {
        if round.selected.len() != round.labels.len() {
            return Err(CoreError::Checkpoint(format!(
                "checkpoint round {r} has {} selections but {} labels",
                round.selected.len(),
                round.labels.len()
            )));
        }
        let mut tensors = Vec::with_capacity(round.selected.len());
        for &raw in &round.selected {
            let idx = usize::try_from(raw).map_err(|_| {
                CoreError::Checkpoint(format!("pool index {raw} exceeds the platform word size"))
            })?;
            if idx >= pool.len() {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint selects pool index {idx} but the pool has {} clips",
                    pool.len()
                )));
            }
            if !unlabeled_mask[idx] {
                return Err(CoreError::Checkpoint(format!(
                    "checkpoint selects pool index {idx} twice"
                )));
            }
            unlabeled_mask[idx] = false;
            tensors.push(pool_tensors[idx].clone());
        }
        session.append(tensors, &round.labels)?;
    }

    // --- Phase 3: acquisition rounds. ------------------------------------
    while session.completed().len() - schedule_rounds < active.rounds {
        let round = session.completed().len() - schedule_rounds;
        // Acquire and label, unless this round's batch was already paid
        // for (resume of an interrupted fine-tune).
        if round == state.rounds.len() {
            let unlabeled: Vec<usize> = (0..pool.len()).filter(|&i| unlabeled_mask[i]).collect();
            if unlabeled.is_empty() {
                break;
            }
            let probs: Vec<f32> = pool_tensors
                .iter()
                .map(|t| mgd::predict_hotspot_prob(session.network(), t))
                .collect();
            let picks = acquire_batch(
                &probs,
                &pool_flat,
                &unlabeled,
                active.batch,
                active.clusters,
                active.candidate_factor,
                round_seed(active.seed, round),
            )?;
            if picks.is_empty() {
                break;
            }
            let mut labels = Vec::with_capacity(picks.len());
            let mut tensors = Vec::with_capacity(picks.len());
            for &idx in &picks {
                let clip = match pool.get(idx) {
                    Some(clip) => clip,
                    None => unreachable!("acquire_batch only picks validated candidates"),
                };
                labels.push(labeler.label(clip));
                unlabeled_mask[idx] = false;
                tensors.push(pool_tensors[idx].clone());
            }
            state.rounds.push(ActiveRoundState {
                selected: picks.iter().map(|&i| i as u64).collect(),
                labels: labels.clone(),
            });
            state.labeler_calls += picks.len() as u64;
            // Persist immediately: the oracle has been paid, so a crash
            // from here on must never re-label this batch.
            let (net, completed) = session.snapshot();
            let ckpt = Checkpoint::new(
                identity.seed,
                identity.threads,
                identity.tag.clone(),
                net,
                completed,
                None,
            )
            .with_active(state.clone());
            persist(&ckpt)?;
            session.append(tensors, &labels)?;
        }
        // Fine-tune on the grown set (consuming a pending mid-round
        // trainer state on resume).
        let cfg = MgdConfig {
            seed: round_seed(active.fine_tune.seed, round),
            ..active.fine_tune.clone()
        };
        let mut hook = make_hook(identity, &state, persist);
        session.fine_tune(active.epsilon, &cfg, checkpoint_every, &mut hook)?;
    }

    // --- Assemble the report. ---------------------------------------------
    let labeler_calls = state.labeler_calls as usize;
    let completed = session.completed();
    let rounds: Vec<ActiveRoundReport> = state
        .rounds
        .iter()
        .zip(completed[schedule_rounds..].iter())
        .map(|(s, train)| ActiveRoundReport {
            selected: s.selected.iter().map(|&i| i as usize).collect(),
            labels: s.labels.clone(),
            hotspots_found: s.labels.iter().filter(|&&l| l).count(),
            train: train.clone(),
        })
        .collect();
    let report = ActiveReport {
        rounds,
        labeler_calls,
        labeler_cost_s: labeler_calls as f64 * SIM_TIME_PER_CLIP_S,
        pool_size: pool.len(),
        trajectory: session.report(),
    };
    let detector = HotspotDetector::from_session(
        pipeline,
        session.into_network(),
        report.trajectory.clone(),
        config.parallelism,
    );
    Ok((detector, report))
}

/// Builds a checkpoint-persisting hook that attaches the current active
/// state to every snapshot.
fn make_hook<'a>(
    identity: &'a RunIdentity,
    state: &'a ActiveState,
    persist: &'a mut dyn FnMut(&Checkpoint) -> Result<(), CoreError>,
) -> impl FnMut(CheckpointEvent<'_>, &mut Network) -> Result<(), CoreError> + 'a {
    move |event, net| {
        let ckpt = match event {
            CheckpointEvent::Step {
                completed,
                state: trainer,
            } => Checkpoint::new(
                identity.seed,
                identity.threads,
                identity.tag.clone(),
                net,
                completed,
                Some(trainer),
            ),
            CheckpointEvent::RoundEnd { completed } => Checkpoint::new(
                identity.seed,
                identity.threads,
                identity.tag.clone(),
                net,
                completed,
                None,
            ),
        }
        .with_active(state.clone());
        persist(&ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: &[f32]) -> Vec<Vec<f32>> {
        v.iter().map(|&x| vec![x, x * 2.0]).collect()
    }

    #[test]
    fn acquisition_prefers_uncertain_clips() {
        // Indices 2 and 5 sit closest to the decision boundary.
        let probs = vec![0.95, 0.05, 0.52, 0.9, 0.1, 0.49, 0.85, 0.15];
        let features = flat(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let unlabeled: Vec<usize> = (0..8).collect();
        let picks = acquire_batch(&probs, &features, &unlabeled, 2, 0, 1, 7).unwrap();
        assert_eq!(picks.len(), 2);
        assert!(picks.contains(&2));
        assert!(picks.contains(&5));
    }

    #[test]
    fn acquisition_is_deterministic_and_disjoint() {
        let probs: Vec<f32> = (0..40).map(|i| 0.3 + 0.01 * i as f32).collect();
        let features: Vec<Vec<f32>> = (0..40)
            .map(|i| vec![(i % 5) as f32, (i / 5) as f32])
            .collect();
        let unlabeled: Vec<usize> = (0..40).collect();
        let a = acquire_batch(&probs, &features, &unlabeled, 6, 3, 4, 11).unwrap();
        let b = acquire_batch(&probs, &features, &unlabeled, 6, 3, 4, 11).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "no duplicates within a batch");
        // Remove the first batch; the next batch is disjoint from it.
        let remaining: Vec<usize> = unlabeled
            .iter()
            .copied()
            .filter(|i| !a.contains(i))
            .collect();
        let next = acquire_batch(&probs, &features, &remaining, 6, 3, 4, 12).unwrap();
        assert!(next.iter().all(|i| !a.contains(i)));
    }

    #[test]
    fn acquisition_handles_small_pools() {
        let probs = vec![0.4, 0.6, 0.5];
        let features = flat(&[0.0, 1.0, 2.0]);
        // Batch larger than the pool: everything is selected once.
        let picks = acquire_batch(&probs, &features, &[0, 1, 2], 10, 0, 4, 1).unwrap();
        assert_eq!(picks.len(), 3);
        // Empty candidate set: an empty batch, not an error.
        assert!(acquire_batch(&probs, &features, &[], 4, 0, 4, 1)
            .unwrap()
            .is_empty());
        // Zero batch rejected.
        assert!(acquire_batch(&probs, &features, &[0], 0, 0, 4, 1).is_err());
        // Out-of-range candidate rejected.
        assert!(acquire_batch(&probs, &features, &[9], 2, 0, 4, 1).is_err());
    }

    #[test]
    fn diversity_spreads_across_clusters() {
        // Two tight feature clusters; uncertainty alone would spend the
        // whole batch on cluster A (closest to 0.5). Diversity must pull
        // in cluster B.
        let mut probs = Vec::new();
        let mut features = Vec::new();
        for i in 0..10 {
            probs.push(0.5 + 0.001 * i as f32);
            features.push(vec![0.01 * i as f32, 0.0]);
        }
        for i in 0..10 {
            probs.push(0.6 + 0.001 * i as f32);
            features.push(vec![100.0 + 0.01 * i as f32, 100.0]);
        }
        let unlabeled: Vec<usize> = (0..20).collect();
        let picks = acquire_batch(&probs, &features, &unlabeled, 4, 2, 5, 3).unwrap();
        assert_eq!(picks.len(), 4);
        let from_b = picks.iter().filter(|&&i| i >= 10).count();
        assert!(
            from_b >= 1,
            "diversity clustering must reach the far cluster: {picks:?}"
        );
    }

    #[test]
    fn round_seed_varies_by_round() {
        assert_ne!(round_seed(1, 0), round_seed(1, 1));
        assert_eq!(round_seed(1, 3), round_seed(1, 3));
    }
}
