//! Threshold-sweep (ROC-style) analysis of a trained network.
//!
//! The paper's Figure 4 compares operating points; this module exposes the
//! full trade-off curve so any operating point can be read off without
//! re-scoring the test set.

use crate::mgd::predict_hotspot_prob;
use hotspot_nn::{Network, Tensor};
use serde::{Deserialize, Serialize};

/// One operating point of the recall / false-alarm trade-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RocPoint {
    /// Decision threshold on the hotspot probability.
    pub threshold: f32,
    /// Hotspot recall (the contest "accuracy") at this threshold.
    pub recall: f64,
    /// False alarms at this threshold.
    pub false_alarms: usize,
}

/// Scores a labelled feature set once and sweeps `steps + 1` equally-spaced
/// thresholds over `[0, 1]`, returning the trade-off curve sorted by
/// descending threshold (ascending recall).
///
/// # Panics
///
/// Panics if `features` and `labels` differ in length or `steps == 0`.
pub fn sweep(net: &Network, features: &[Tensor], labels: &[bool], steps: usize) -> Vec<RocPoint> {
    assert_eq!(features.len(), labels.len(), "feature/label mismatch");
    assert!(steps > 0, "steps must be nonzero");
    let probs: Vec<f32> = features
        .iter()
        .map(|f| predict_hotspot_prob(net, f))
        .collect();
    let hotspot_total = labels.iter().filter(|&&l| l).count().max(1);
    let mut curve = Vec::with_capacity(steps + 1);
    for s in (0..=steps).rev() {
        let threshold = s as f32 / steps as f32;
        let mut hits = 0usize;
        let mut fas = 0usize;
        for (&p, &l) in probs.iter().zip(labels.iter()) {
            if p > threshold {
                if l {
                    hits += 1;
                } else {
                    fas += 1;
                }
            }
        }
        curve.push(RocPoint {
            threshold,
            recall: hits as f64 / hotspot_total as f64,
            false_alarms: fas,
        });
    }
    curve
}

/// Area under the recall-vs-false-alarm-rate curve (trapezoidal), a single
/// threshold-free quality number in `[0, 1]`.
///
/// The sweep is anchored at the theoretical ROC endpoints `(0, 0)` and
/// `(1, 1)` before integrating. The anchors matter: the sweep's strict
/// `p > threshold` rule means samples whose predicted probability
/// saturates to exactly `0.0` (f32 softmax underflow) are never flagged
/// even at threshold 0, so the raw curve can stop short of `(1, 1)` — and
/// the area of that missing tail used to be silently dropped, scoring a
/// perfect separator as low as 0.
pub fn auc(net: &Network, features: &[Tensor], labels: &[bool], steps: usize) -> f64 {
    let non_hotspots = labels.iter().filter(|&&l| !l).count().max(1) as f64;
    let curve = sweep(net, features, labels, steps);
    let mut area = 0.0f64;
    let (mut prev_x, mut prev_y) = (0.0f64, 0.0f64);
    for p in &curve {
        let x = p.false_alarms as f64 / non_hotspots;
        area += (x - prev_x) * (p.recall + prev_y) / 2.0;
        (prev_x, prev_y) = (x, p.recall);
    }
    // Close the curve with the segment a threshold below 0 would produce
    // (flag everything: recall 1, false-alarm rate 1).
    area + (1.0 - prev_x) * (1.0 + prev_y) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotspot_nn::layers::{Dense, Layer};

    /// Network scoring hotspot logit = 4x over a single input feature.
    fn scoring_net(weight: f32) -> Network {
        let mut net = Network::new();
        let mut d = Dense::new(1, 2, 0);
        let mut call = 0;
        d.visit_params(&mut |w, _| {
            if call == 0 {
                w.copy_from_slice(&[0.0, weight]);
            } else {
                w.copy_from_slice(&[0.0, 0.0]);
            }
            call += 1;
        });
        net.push(d);
        net
    }

    fn data() -> (Vec<Tensor>, Vec<bool>) {
        let xs = [-2.0f32, -1.0, -0.5, 0.5, 1.0, 2.0];
        let labels = vec![false, false, false, true, true, true];
        (
            xs.iter()
                .map(|&x| Tensor::from_vec(vec![1], vec![x]))
                .collect(),
            labels,
        )
    }

    #[test]
    fn curve_is_monotone_in_recall_and_fa() {
        let (x, y) = data();
        let net = scoring_net(4.0);
        let curve = sweep(&net, &x, &y, 50);
        for w in curve.windows(2) {
            assert!(w[1].recall >= w[0].recall);
            assert!(w[1].false_alarms >= w[0].false_alarms);
            assert!(w[1].threshold <= w[0].threshold);
        }
        // Extremes: threshold 1 flags nothing; threshold 0 flags all.
        assert_eq!(curve.first().unwrap().recall, 0.0);
        assert_eq!(curve.last().unwrap().recall, 1.0);
        assert_eq!(curve.last().unwrap().false_alarms, 3);
    }

    #[test]
    fn perfect_separator_has_unit_auc() {
        let (x, y) = data();
        let net = scoring_net(8.0);
        let a = auc(&net, &x, &y, 200);
        assert!(a > 0.99, "auc {a}");
    }

    #[test]
    fn inverted_scorer_has_low_auc() {
        let (x, y) = data();
        let net = scoring_net(-8.0);
        let a = auc(&net, &x, &y, 200);
        assert!(a < 0.1, "auc {a}");
    }

    #[test]
    fn saturated_probabilities_keep_unit_auc() {
        // A large logit gap saturates the f32 softmax: hotspots score
        // exactly 1.0 and non-hotspots exactly 0.0. The strict `p > t`
        // sweep then never flags the non-hotspots at any threshold in
        // [0, 1], so without the (1, 1) anchor every curve point sits at
        // false-alarm rate 0 and this *perfect* separator scored AUC 0.
        let (x, y) = data();
        let net = scoring_net(300.0);
        let a = auc(&net, &x, &y, 200);
        assert!(a > 0.99, "auc {a}");
    }

    #[test]
    #[should_panic(expected = "steps must be nonzero")]
    fn zero_steps_panics() {
        let (x, y) = data();
        let net = scoring_net(1.0);
        let _ = sweep(&net, &x, &y, 0);
    }
}
