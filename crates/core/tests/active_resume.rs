//! Kill-resume integration test for the active-learning loop: a run
//! interrupted at *any* persisted checkpoint — mid-schedule, right after
//! paying the labeler, or mid-fine-tune — must resume to the identical
//! batch sequence and bit-identical final weights, without ever invoking
//! the labeler again for a clip that was already paid for.

use hotspot_core::mgd::MgdConfig;
use hotspot_core::{
    train_active, ActiveConfig, Checkpoint, CoreError, DetectorConfig, FeaturePipeline, RunIdentity,
};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_datagen::{ClipPool, Dataset, PatternKind};
use hotspot_litho::{Labeler, LithoConfig, LithoLabeler, LithoSimulator};
use std::cell::RefCell;

fn quick_config() -> DetectorConfig {
    let mgd = MgdConfig {
        lr: 2e-3,
        alpha: 0.7,
        decay_step: 150,
        batch_size: 16,
        max_steps: 120,
        val_interval: 40,
        patience: 3,
        val_fraction: 0.25,
        seed: 5,
        balanced_sampling: true,
        threads: 1,
    };
    let mut cfg = DetectorConfig::default();
    cfg.pipeline = FeaturePipeline::new(10, 12, 8).unwrap();
    cfg.biased.rounds = 2;
    cfg.biased.fine_tune = MgdConfig {
        max_steps: 50,
        ..mgd.clone()
    };
    cfg.mgd = mgd;
    cfg
}

fn active_config(cfg: &DetectorConfig) -> ActiveConfig {
    ActiveConfig {
        rounds: 3,
        batch: 4,
        clusters: 0,
        candidate_factor: 3,
        epsilon: 0.1,
        fine_tune: MgdConfig {
            max_steps: 50,
            ..cfg.mgd.clone()
        },
        seed: 13,
    }
}

fn identity(cfg: &DetectorConfig) -> RunIdentity {
    RunIdentity {
        seed: cfg.mgd.seed,
        threads: cfg.mgd.threads,
        tag: "active-resume-test".into(),
    }
}

fn fixtures() -> (Dataset, ClipPool, LithoLabeler) {
    let sim = LithoSimulator::new(LithoConfig::default()).unwrap();
    let data = SuiteSpec {
        name: "active-resume".into(),
        train_hs: 20,
        train_nhs: 20,
        test_hs: 1,
        test_nhs: 1,
        mix: vec![(PatternKind::LineArray, 1.0), (PatternKind::LineTips, 1.0)],
        seed: 99,
        version: hotspot_datagen::suite::SUITE_VERSION,
        corner_grid: None,
        augment: None,
    }
    .build(&sim);
    let mix = [(PatternKind::LineArray, 1.0), (PatternKind::LineTips, 1.0)];
    let pool = ClipPool::synthetic(&mix, 24, 7);
    (data.train, pool, LithoLabeler::new(sim))
}

#[test]
fn kill_and_resume_reproduces_the_run_bit_for_bit() {
    let cfg = quick_config();
    let active = active_config(&cfg);
    let ident = identity(&cfg);
    let (seed_data, pool, labeler) = fixtures();

    // Reference: one uninterrupted run, recording every checkpoint.
    let snapshots: RefCell<Vec<Vec<u8>>> = RefCell::new(Vec::new());
    let (mut reference, ref_report) = train_active(
        &seed_data,
        &pool,
        &labeler,
        &cfg,
        &active,
        &ident,
        None,
        7,
        &mut |ckpt| {
            snapshots.borrow_mut().push(ckpt.to_bytes());
            Ok(())
        },
    )
    .unwrap();
    let snapshots = snapshots.into_inner();
    let ref_calls = labeler.calls();
    let ref_blob = reference.export_parameters();
    let ref_batches: Vec<Vec<usize>> = ref_report
        .rounds
        .iter()
        .map(|r| r.selected.clone())
        .collect();
    assert_eq!(ref_batches.len(), active.rounds);
    assert_eq!(ref_report.labeler_calls, ref_calls);
    assert_eq!(
        ref_report.trajectory.rounds.len(),
        cfg.biased.rounds + active.rounds
    );
    assert!(snapshots.len() > 4, "expected several checkpoints");

    // Crash points spanning every phase: mid-initial-schedule, right
    // after the first batch is labelled (trainer-free active snapshot),
    // mid-fine-tune, and just before the finish line.
    let decoded: Vec<Checkpoint> = snapshots
        .iter()
        .map(|b| Checkpoint::from_bytes(b).unwrap())
        .collect();
    let post_label = decoded
        .iter()
        .position(|c| {
            c.active.as_ref().is_some_and(|a| !a.rounds.is_empty()) && c.trainer.is_none()
        })
        .expect("a post-labelling checkpoint exists");
    let mid_fine_tune = decoded
        .iter()
        .position(|c| {
            c.active.as_ref().is_some_and(|a| !a.rounds.is_empty()) && c.trainer.is_some()
        })
        .expect("a mid-fine-tune checkpoint exists");
    let mut crash_points = vec![0, post_label, mid_fine_tune, snapshots.len() - 2];
    crash_points.sort_unstable();
    crash_points.dedup();

    for crash_at in crash_points {
        // Process 1: dies immediately after persisting checkpoint
        // `crash_at` (the write completed; the process did not).
        let (_, _, crashed_labeler) = fixtures();
        let seen = RefCell::new(0usize);
        let latest: RefCell<Option<Vec<u8>>> = RefCell::new(None);
        let crashed = train_active(
            &seed_data,
            &pool,
            &crashed_labeler,
            &cfg,
            &active,
            &ident,
            None,
            7,
            &mut |ckpt| {
                *latest.borrow_mut() = Some(ckpt.to_bytes());
                let mut n = seen.borrow_mut();
                if *n == crash_at {
                    return Err(CoreError::Checkpoint("simulated SIGKILL".into()));
                }
                *n += 1;
                Ok(())
            },
        );
        assert!(crashed.is_err(), "crash_at={crash_at} must abort the run");
        let bytes = latest.into_inner().expect("a checkpoint was written");
        // Checkpoint bytes embed wall-clock telemetry (elapsed seconds),
        // so compare the replayable state instead of raw bytes: the
        // crashed run must have taken the same path as the reference.
        let crashed_ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        let reference_ckpt = &decoded[crash_at];
        assert_eq!(
            crashed_ckpt.params, reference_ckpt.params,
            "crash_at={crash_at}: the interrupted run diverged before crashing"
        );
        assert_eq!(
            crashed_ckpt.active, reference_ckpt.active,
            "crash_at={crash_at}"
        );
        assert_eq!(
            crashed_ckpt.completed.len(),
            reference_ckpt.completed.len(),
            "crash_at={crash_at}"
        );

        // Process 2: a fresh process (fresh labeler) resumes from disk.
        let ckpt = crashed_ckpt;
        let (_, _, resumed_labeler) = fixtures();
        let (mut detector, report) = train_active(
            &seed_data,
            &pool,
            &resumed_labeler,
            &cfg,
            &active,
            &ident,
            Some(&ckpt),
            7,
            &mut |_| Ok(()),
        )
        .unwrap();

        // Identical batch sequence, bit-identical weights.
        let batches: Vec<Vec<usize>> = report.rounds.iter().map(|r| r.selected.clone()).collect();
        assert_eq!(batches, ref_batches, "crash_at={crash_at}");
        for (r, reference_round) in ref_report.rounds.iter().enumerate() {
            assert_eq!(
                report.rounds[r].labels, reference_round.labels,
                "crash_at={crash_at} round {r}"
            );
        }
        assert_eq!(
            detector.export_parameters(),
            ref_blob,
            "crash_at={crash_at}: resumed weights diverged"
        );

        // No clip is ever paid for twice: the two processes together make
        // exactly as many oracle calls as the uninterrupted run, and the
        // report accounts for all of them.
        assert_eq!(
            crashed_labeler.calls() + resumed_labeler.calls(),
            ref_calls,
            "crash_at={crash_at}: labeler was re-invoked after resume"
        );
        assert_eq!(report.labeler_calls, ref_calls, "crash_at={crash_at}");
    }
}

#[test]
fn mismatched_run_identity_is_rejected() {
    let cfg = quick_config();
    let active = ActiveConfig {
        rounds: 1,
        ..active_config(&cfg)
    };
    let ident = identity(&cfg);
    let (seed_data, pool, labeler) = fixtures();
    let latest: RefCell<Option<Vec<u8>>> = RefCell::new(None);
    train_active(
        &seed_data,
        &pool,
        &labeler,
        &cfg,
        &active,
        &ident,
        None,
        0,
        &mut |ckpt| {
            *latest.borrow_mut() = Some(ckpt.to_bytes());
            Ok(())
        },
    )
    .unwrap();
    let bytes = latest.into_inner().unwrap();
    let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
    let wrong = RunIdentity {
        tag: "different-config".into(),
        ..ident
    };
    let err = train_active(
        &seed_data,
        &pool,
        &labeler,
        &cfg,
        &active,
        &wrong,
        Some(&ckpt),
        0,
        &mut |_| Ok(()),
    );
    assert!(matches!(err, Err(CoreError::Checkpoint(_))));
}
