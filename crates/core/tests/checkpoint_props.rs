//! Property tests for the checkpoint wire format: arbitrary snapshots
//! round-trip exactly, and random byte corruption is always rejected —
//! a resume can never silently start from a different state.

use hotspot_core::biased::BiasRound;
use hotspot_core::mgd::{TrainPoint, TrainerState};
use hotspot_core::{ActiveRoundState, ActiveState, Checkpoint, TrainReport};
use hotspot_nn::layers::Dense;
use hotspot_nn::serialize::ParameterBlob;
use hotspot_nn::Network;
use proptest::prelude::*;

fn blob_with(weights: &[f32], ins: usize, outs: usize) -> ParameterBlob {
    let mut net = Network::new();
    net.push(Dense::new(ins, outs, 0));
    let mut source = weights.iter().cycle();
    net.visit_params(&mut |w, _| {
        for v in w.iter_mut() {
            *v = *source.next().expect("cycled iterator never ends");
        }
    });
    ParameterBlob::from_network(&mut net)
}

fn arb_rng_states() -> impl Strategy<Value = Vec<[u64; 4]>> {
    proptest::collection::vec(
        (
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
            0u64..u64::MAX,
        )
            .prop_map(|(a, b, c, d)| [a, b, c, d]),
        0..4,
    )
}

fn arb_history() -> impl Strategy<Value = Vec<TrainPoint>> {
    proptest::collection::vec(
        (0usize..10_000, 0.0f64..100.0, 0.0f64..=1.0).prop_map(
            |(step, elapsed_s, val_accuracy)| TrainPoint {
                step,
                elapsed_s,
                val_accuracy,
            },
        ),
        0..5,
    )
}

fn arb_report() -> impl Strategy<Value = TrainReport> {
    (arb_history(), 0.0f64..=1.0, 0usize..10_000, 0.0f64..500.0).prop_map(
        |(history, best_val_accuracy, steps, train_time_s)| TrainReport {
            history,
            best_val_accuracy,
            steps,
            train_time_s,
        },
    )
}

fn arb_trainer() -> impl Strategy<Value = TrainerState> {
    (
        (0.0f32..0.5, 0usize..5_000, 1e-6f32..1.0, 0usize..500),
        (
            arb_rng_states(),
            arb_rng_states(),
            proptest::collection::vec(-4.0f32..4.0, 1..16),
        ),
        (0.0f64..=1.0, 0usize..10, arb_history(), 0.0f64..100.0),
    )
        .prop_map(
            |(
                (epsilon, steps, lr, lr_counter),
                (net_rngs, replica_rngs, weights),
                (best_acc, bad_checks, history, elapsed_s),
            )| {
                let params = blob_with(&weights, 3, 2);
                TrainerState {
                    epsilon,
                    steps,
                    lr,
                    lr_counter,
                    batch_rng: [1, 2, 3, steps as u64],
                    sampler_rng: [5, 6, 7, lr_counter as u64],
                    params: params.clone(),
                    best: params,
                    best_acc,
                    bad_checks,
                    history,
                    elapsed_s,
                    net_rngs,
                    replica_rngs,
                }
            },
        )
}

fn arb_active() -> impl Strategy<Value = ActiveState> {
    (
        proptest::collection::vec(
            proptest::collection::vec((0u64..10_000, proptest::bool::ANY), 0..6),
            0..4,
        ),
        0u64..100_000,
    )
        .prop_map(|(rounds, labeler_calls)| ActiveState {
            rounds: rounds
                .into_iter()
                .map(|pairs| {
                    let (selected, labels) = pairs.into_iter().unzip();
                    ActiveRoundState { selected, labels }
                })
                .collect(),
            labeler_calls,
        })
}

fn arb_checkpoint() -> impl Strategy<Value = Checkpoint> {
    (
        (
            0u64..u64::MAX,
            1u32..=8,
            prop_oneof![
                Just(String::new()),
                Just("res=10 grid=12 k=8".to_string()),
                Just("π in the tag — UTF-8 survives".to_string()),
            ],
        ),
        (
            proptest::collection::vec(-4.0f32..4.0, 1..16),
            arb_rng_states(),
            proptest::collection::vec((0.0f32..0.5, arb_report()), 0..3),
        ),
        prop_oneof![Just(false), Just(true)],
        arb_trainer(),
        prop_oneof![Just(None), arb_active().prop_map(Some)],
    )
        .prop_map(
            |((seed, threads, tag), (weights, net_rngs, rounds), mid_round, trainer, active)| {
                Checkpoint {
                    seed,
                    threads,
                    tag,
                    params: blob_with(&weights, 4, 3),
                    net_rngs,
                    completed: rounds
                        .into_iter()
                        .map(|(epsilon, report)| BiasRound { epsilon, report })
                        .collect(),
                    trainer: mid_round.then_some(trainer),
                    active,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip_is_exact(ckpt in arb_checkpoint()) {
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).expect("own output parses");
        prop_assert_eq!(&back, &ckpt);
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn any_truncation_is_rejected(ckpt in arb_checkpoint(), cut in 0.0f64..1.0) {
        let bytes = ckpt.to_bytes();
        let len = ((bytes.len() as f64 * cut) as usize).min(bytes.len() - 1);
        prop_assert!(Checkpoint::from_bytes(&bytes[..len]).is_err());
    }

    #[test]
    fn any_corruption_is_rejected(
        ckpt in arb_checkpoint(),
        pos in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let bytes = ckpt.to_bytes();
        let offset = ((bytes.len() as f64 * pos) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[offset] ^= mask;
        // The binary format is fully covered by the payload CRC, so unlike
        // the textual model header there is no benign corruption at all.
        prop_assert!(Checkpoint::from_bytes(&bad).is_err());
    }
}
