//! Property tests for batch acquisition: selection is a deterministic
//! function of the seed, never duplicates or leaves the candidate set,
//! fills the batch whenever candidates remain, and successive rounds are
//! disjoint — the loop can never pay the labeler twice for one clip.

use hotspot_core::acquire_batch;
use proptest::prelude::*;
use std::collections::HashSet;

const DIM: usize = 3;

fn arb_pool() -> impl Strategy<Value = (Vec<f32>, Vec<Vec<f32>>)> {
    proptest::collection::vec(
        (0.0f32..=1.0, proptest::collection::vec(-10.0f32..10.0, DIM)),
        1..60,
    )
    .prop_map(|clips| clips.into_iter().unzip())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn acquisition_is_a_function_of_the_seed(
        (probs, features) in arb_pool(),
        batch in 1usize..8,
        clusters in 0usize..4,
        factor in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let unlabeled: Vec<usize> = (0..probs.len()).collect();
        let a = acquire_batch(&probs, &features, &unlabeled, batch, clusters, factor, seed)
            .expect("valid candidates");
        let b = acquire_batch(&probs, &features, &unlabeled, batch, clusters, factor, seed)
            .expect("valid candidates");
        prop_assert_eq!(a, b);
    }

    #[test]
    fn batches_are_valid_subsets(
        (probs, features) in arb_pool(),
        batch in 1usize..8,
        clusters in 0usize..4,
        factor in 1usize..5,
        seed in 0u64..u64::MAX,
    ) {
        let unlabeled: Vec<usize> = (0..probs.len()).step_by(2).collect();
        let picks = acquire_batch(&probs, &features, &unlabeled, batch, clusters, factor, seed)
            .expect("valid candidates");
        // Full batch whenever enough candidates remain, never more.
        prop_assert_eq!(picks.len(), batch.min(unlabeled.len()));
        let candidates: HashSet<usize> = unlabeled.iter().copied().collect();
        let unique: HashSet<usize> = picks.iter().copied().collect();
        prop_assert_eq!(unique.len(), picks.len(), "no duplicates");
        prop_assert!(picks.iter().all(|i| candidates.contains(i)), "subset of candidates");
    }

    #[test]
    fn successive_rounds_are_disjoint(
        (probs, features) in arb_pool(),
        batch in 1usize..6,
        clusters in 0usize..4,
        factor in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        // Drain the pool round by round, as the training loop does; no
        // index may ever be selected twice across the whole run.
        let mut unlabeled: Vec<usize> = (0..probs.len()).collect();
        let mut seen = HashSet::new();
        let mut round = 0u64;
        while !unlabeled.is_empty() {
            let picks = acquire_batch(
                &probs,
                &features,
                &unlabeled,
                batch,
                clusters,
                factor,
                seed ^ round,
            )
            .expect("valid candidates");
            prop_assert!(!picks.is_empty(), "progress while candidates remain");
            for i in &picks {
                prop_assert!(seen.insert(*i), "index {} selected twice", i);
            }
            unlabeled.retain(|i| !seen.contains(i));
            round += 1;
        }
        prop_assert_eq!(seen.len(), probs.len(), "the pool drains completely");
    }
}
