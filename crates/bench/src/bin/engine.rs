//! Shape-planned execution engine benchmark: window-scoring throughput
//! and steady-state allocation counts of the arena-based planned path —
//! per-window and batched (one GEMM per layer per block of windows) —
//! versus the PR 3 scan baseline.
//!
//! The baseline arm is a verbatim reconstruction of the scoring loop the
//! scan engine shipped with before the execution-plan refactor (see the
//! [`pr3`] module): per-window feature-tensor materialisation, a fresh
//! set of intermediate buffers for every layer call, activations as
//! separate passes, and the pre-refactor GEMM/im2col kernels. Running
//! both arms interleaved in one process makes the comparison immune to
//! machine drift between benchmark runs.
//!
//! A counting global allocator tracks every heap allocation, so the
//! benchmark can assert the tentpole property directly: after the first
//! window plans the workspace, scoring further windows through the
//! planned path performs **zero** allocations — and after a warm-up pass,
//! the batched path scores whole blocks with zero allocations per block —
//! while the baseline pays a fresh set of buffers per window. All three
//! arms are cross-checked on every rep, with the check keyed to the
//! active GEMM backend ([`hotspot_nn::gemm::kernel_backend`]):
//!
//! * **scalar** (forced with `HOTSPOT_SIMD=scalar`): every path must
//!   reproduce the same scores **bit-identically** or the benchmark
//!   aborts — GEMM-column independence and the batched `dot()`-kernel
//!   dense path preserve the exact per-element FLOP order, and the PR 3
//!   reconstruction is scalar by construction.
//! * **avx2 / avx512**: the SIMD kernels accumulate in vector lanes with
//!   FMA, so scores are checked against the scalar reconstruction with
//!   the crate-wide bounded-ULP envelope instead
//!   ([`hotspot_nn::ulp::assert_ulp_close`]); the planned and batched
//!   arms share a backend and must still agree bit-for-bit.
//!
//! When a SIMD backend is active the benchmark additionally re-executes
//! itself once with `HOTSPOT_SIMD=scalar` to measure the *batched scalar*
//! arm under identical machine conditions, and reports
//! `speedup_vs_scalar` — SIMD batched windows/s over scalar batched
//! windows/s, the PR 6 acceptance metric. A global GEMM-call counter
//! additionally records how many GEMM invocations each planned arm spends
//! per window (the batched arm amortises one call per layer over a whole
//! block).
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin engine -- \
//!     --windows 512 --reps 5
//! ```
//!
//! Writes `results/BENCH_engine.json` (override the directory with
//! `--out`).

use hotspot_bench::ExperimentArgs;
use hotspot_core::CnnConfig;
use hotspot_nn::engine::Workspace;
use hotspot_nn::{loss, Tensor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// System allocator wrapped with an allocation counter (alloc + realloc
/// events; frees are not counted — the metric is "how often does scoring
/// hit the allocator", not live bytes).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

fn main() {
    let args = ExperimentArgs::from_env();
    let out_dir = args.string("out", "results");
    let windows = args.usize("windows", 512).max(2);
    let reps = args.usize("reps", 5).max(1);
    let k = args.usize("k", 32);
    let n = args.usize("grid", 12);

    // The paper's architecture at its real feature dimensions; weights
    // stay at their seeded initialisation — throughput and allocation
    // behaviour do not depend on convergence.
    let cfg = CnnConfig {
        input_grid: n,
        input_channels: k,
        ..CnnConfig::default()
    };
    let mut net = cfg.build();

    // Snapshot the parameters for the PR 3 reconstruction: visit order is
    // layer order, (weights, bias) per parametric layer.
    let mut params: Vec<Vec<f32>> = Vec::new();
    net.visit_params(&mut |w, _| params.push(w.to_vec()));
    assert_eq!(
        params.len(),
        12,
        "expected 4 conv + 2 dense parameter pairs"
    );
    let baseline = pr3::Model {
        conv1: pr3::Conv::new(params[0].clone(), params[1].clone(), k, cfg.stage1_maps),
        conv2: pr3::Conv::new(
            params[2].clone(),
            params[3].clone(),
            cfg.stage1_maps,
            cfg.stage1_maps,
        ),
        conv3: pr3::Conv::new(
            params[4].clone(),
            params[5].clone(),
            cfg.stage1_maps,
            cfg.stage2_maps,
        ),
        conv4: pr3::Conv::new(
            params[6].clone(),
            params[7].clone(),
            cfg.stage2_maps,
            cfg.stage2_maps,
        ),
        dense1: pr3::Dense::new(
            params[8].clone(),
            params[9].clone(),
            cfg.stage2_maps * (n / 4) * (n / 4),
            cfg.fc_width,
        ),
        dense2: pr3::Dense::new(params[10].clone(), params[11].clone(), cfg.fc_width, 2),
        grid: n,
    };

    // Synthetic window features in one flat buffer, seeded so every run
    // scores the same set — the same layout `scan()` assembles in its
    // feature-extraction phase.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 40) as f32 / (1u64 << 23) as f32 - 1.0
    };
    let feat_len = k * n * n;
    let features_flat: Vec<f32> = (0..windows * feat_len).map(|_| next()).collect();
    eprintln!("[engine] scoring {windows} windows ({k}x{n}x{n} features), {reps} rep(s)");

    // Legacy arm: the PR 3 scan scoring loop, reconstructed in [`pr3`].
    // Each window materialises an owned feature `Tensor`, runs the
    // pre-refactor allocating forward (fresh buffers per layer call,
    // activations as separate passes, pre-PR 4 kernels), and takes an
    // allocating softmax; tensors accumulate in growing vectors exactly
    // as `scan()` collected them.
    //
    // The two arms alternate rep-by-rep so both sample the same machine
    // conditions (shared CPUs show bursty contention that would otherwise
    // bias whichever phase ran in a quiet window); each arm keeps its
    // fastest rep.
    let mut legacy_scores = vec![0.0f32; windows];
    let mut legacy_secs = f64::INFINITY;
    let mut legacy_allocs = 0u64;

    // Planned-path state: the current scan scoring loop — one plan and
    // workspace scoring windows straight from the flat feature buffer,
    // warmed on the first window; steady-state allocations are measured
    // over every window after it.
    let mut planned_scores = vec![0.0f32; windows];
    let mut planned_secs = f64::INFINITY;
    let mut steady_allocs = 0u64;
    let mut ws = Workspace::new();
    let mut soft = vec![0.0f32; 2];
    let plan = net.plan(&[k, n, n]);

    // Batched-path state: the scan scoring loop after this PR — blocks of
    // windows scored through one batched plan (one GEMM per layer per
    // block), with a smaller plan for the ragged final block. Both plans
    // are built up front; a full warm-up pass sizes the shared arena for
    // both, after which scoring a block allocates nothing.
    let block = args
        .usize("block", plan.suggested_batch())
        .min(windows)
        .max(1);
    let block_plan = net.plan_batch(&[k, n, n], block);
    let tail = windows % block;
    let tail_plan = if tail > 0 {
        Some(net.plan_batch(&[k, n, n], tail))
    } else {
        None
    };
    let n_blocks = windows.div_ceil(block);
    let mut batched_scores = vec![0.0f32; windows];
    let mut batched_secs = f64::INFINITY;
    let mut batched_steady_allocs = 0u64;
    let mut wsb = Workspace::new();
    let mut softb = vec![0.0f32; 2];
    let batched_pass = |ws: &mut Workspace, out: &mut [f32], soft: &mut [f32]| {
        for (chunk, s) in features_flat
            .chunks(block * feat_len)
            .zip(out.chunks_mut(block))
        {
            let p = if s.len() == block {
                &block_plan
            } else {
                tail_plan.as_ref().unwrap_or(&block_plan)
            };
            let logits = net.forward_batch_with(p, ws, chunk);
            for (y, si) in logits.chunks_exact(2).zip(s.iter_mut()) {
                loss::softmax_into(y, soft);
                *si = soft[1];
            }
        }
    };
    // Warm-up: one full pass builds the arena for the block plan AND the
    // ragged tail plan, so every rep below measures steady state.
    batched_pass(&mut wsb, &mut batched_scores, &mut softb);

    for _ in 0..reps {
        // Legacy rep.
        let before = alloc_count();
        let start = Instant::now();
        let mut feats: Vec<Tensor> = Vec::new();
        for chunk in features_flat.chunks_exact(feat_len) {
            feats.push(Tensor::from_vec(vec![k, n, n], chunk.to_vec()));
        }
        let logits: Vec<Vec<f32>> = feats
            .iter()
            .map(|x| baseline.forward_inference(x.as_slice()))
            .collect();
        for (l, s) in logits.iter().zip(legacy_scores.iter_mut()) {
            *s = loss::softmax(l)[1];
        }
        legacy_secs = legacy_secs.min(start.elapsed().as_secs_f64());
        legacy_allocs = alloc_count() - before;
        drop(logits);
        drop(feats);

        // Planned rep.
        let start = Instant::now();
        // Warm-up window: builds (or confirms) the plan and arena.
        let logits = net.forward_with(&plan, &mut ws, &features_flat[..feat_len]);
        loss::softmax_into(logits, &mut soft);
        planned_scores[0] = soft[1];
        let before = alloc_count();
        for (chunk, s) in features_flat
            .chunks_exact(feat_len)
            .zip(planned_scores.iter_mut())
            .skip(1)
        {
            let logits = net.forward_with(&plan, &mut ws, chunk);
            loss::softmax_into(logits, &mut soft);
            *s = soft[1];
        }
        steady_allocs = alloc_count() - before;
        planned_secs = planned_secs.min(start.elapsed().as_secs_f64());

        // Batched rep: warm arena (block + tail plans) — a full pass must
        // touch the allocator zero times.
        let before = alloc_count();
        let start = Instant::now();
        batched_pass(&mut wsb, &mut batched_scores, &mut softb);
        batched_secs = batched_secs.min(start.elapsed().as_secs_f64());
        batched_steady_allocs = alloc_count() - before;
    }

    // GEMM invocations per window, one steady pass each: the per-window
    // plan pays one call per GEMM layer per window; the batched plan pays
    // one call per GEMM layer per *block*.
    let g0 = hotspot_nn::gemm::gemm_call_count();
    for chunk in features_flat.chunks_exact(feat_len) {
        let logits = net.forward_with(&plan, &mut ws, chunk);
        loss::softmax_into(logits, &mut soft);
    }
    let g1 = hotspot_nn::gemm::gemm_call_count();
    batched_pass(&mut wsb, &mut batched_scores, &mut softb);
    let g2 = hotspot_nn::gemm::gemm_call_count();
    let planned_gemm_per_window = (g1 - g0) as f64 / windows as f64;
    let batched_gemm_per_window = (g2 - g1) as f64 / windows as f64;

    let backend = hotspot_nn::gemm::kernel_backend();
    let planned_identical = legacy_scores
        .iter()
        .zip(planned_scores.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let batched_identical = legacy_scores
        .iter()
        .zip(batched_scores.iter())
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let identical = planned_identical && batched_identical;
    let legacy_wps = windows as f64 / legacy_secs;
    let planned_wps = windows as f64 / planned_secs;
    let batched_wps = windows as f64 / batched_secs;
    let speedup = legacy_secs / planned_secs;
    let batched_speedup = legacy_secs / batched_secs;
    let legacy_per_window = legacy_allocs as f64 / windows as f64;
    let steady_per_window = steady_allocs as f64 / (windows - 1) as f64;
    let batched_per_block = batched_steady_allocs as f64 / n_blocks as f64;
    eprintln!(
        "[engine] legacy:  {legacy_secs:.4} s ({legacy_wps:.1} windows/s, \
         {legacy_per_window:.1} allocs/window)"
    );
    eprintln!(
        "[engine] planned: {planned_secs:.4} s ({planned_wps:.1} windows/s, \
         {steady_per_window:.3} allocs/window steady-state, \
         {planned_gemm_per_window:.2} GEMM calls/window)"
    );
    eprintln!(
        "[engine] batched: {batched_secs:.4} s ({batched_wps:.1} windows/s, \
         block {block}, {batched_per_block:.3} allocs/block steady-state, \
         {batched_gemm_per_window:.3} GEMM calls/window)"
    );
    eprintln!(
        "[engine] speedup {speedup:.2}x planned / {batched_speedup:.2}x batched, \
         backend {}, bit-identical: {identical}",
        backend.name()
    );

    let score_check = if backend.is_simd() {
        // SIMD lanes reassociate the reduction, so the scalar PR 3
        // reconstruction is only reachable within the ULP envelope; the
        // planned and batched arms share the SIMD backend and must still
        // agree exactly (GEMM-column independence).
        hotspot_nn::ulp::assert_ulp_close(&planned_scores, &legacy_scores, 64, 1e-5);
        hotspot_nn::ulp::assert_ulp_close(&batched_scores, &legacy_scores, 64, 1e-5);
        assert!(
            planned_scores
                .iter()
                .zip(batched_scores.iter())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "batched planned scores diverged from the per-window path — \
             GEMM-column independence must have been broken"
        );
        "ulp-bounded"
    } else {
        assert!(
            planned_identical,
            "PR 3 reconstruction diverged from the planned path — kernel FLOP \
             order must have changed"
        );
        assert!(
            batched_identical,
            "batched planned scores diverged from the per-window path — \
             GEMM-column independence must have been broken"
        );
        "bit-identical"
    };
    let max_score_ulp = legacy_scores
        .iter()
        .zip(batched_scores.iter())
        .map(|(&a, &b)| hotspot_nn::ulp::ulp_distance(a, b))
        .max()
        .unwrap_or(0);

    // Scalar-batched reference arm: on a SIMD backend, re-execute this
    // binary with `HOTSPOT_SIMD=scalar` (child output goes to a temp dir)
    // and lift its batched windows/s, so speedup-vs-scalar is measured on
    // the same host in the same invocation. On the scalar backend the run
    // is its own reference.
    let scalar_batched_wps = if backend.is_simd() {
        let exe = std::env::current_exe().expect("current_exe");
        let tmp = std::env::temp_dir().join("hotspot-engine-scalar-ref");
        let output = std::process::Command::new(exe)
            .args(std::env::args().skip(1))
            .arg("--out") // later --key value pairs win, redirecting output
            .arg(tmp.as_os_str())
            .env("HOTSPOT_SIMD", "scalar")
            .output()
            .expect("spawn scalar reference run");
        assert!(
            output.status.success(),
            "scalar reference run failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        parse_batched_wps(&stdout)
    } else {
        batched_wps
    };
    let speedup_vs_scalar = batched_wps / scalar_batched_wps;
    eprintln!(
        "[engine] scalar batched reference: {scalar_batched_wps:.1} windows/s \
         -> speedup_vs_scalar {speedup_vs_scalar:.2}x"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"engine\",\n  \"baseline\": \"pr3-scan-scoring-loop\",\n  \
         \"kernel_backend\": \"{}\",\n  \
         \"windows\": {windows},\n  \
         \"feature_shape\": [{k}, {n}, {n}],\n  \"reps\": {reps},\n  \
         \"legacy\": {{ \"secs\": {legacy_secs:.6}, \"windows_per_sec\": {legacy_wps:.2}, \
         \"allocs_per_window\": {legacy_per_window:.3} }},\n  \
         \"planned\": {{ \"secs\": {planned_secs:.6}, \"windows_per_sec\": {planned_wps:.2}, \
         \"allocs_per_window\": {steady_per_window:.3}, \
         \"gemm_calls_per_window\": {planned_gemm_per_window:.3} }},\n  \
         \"batched\": {{ \"secs\": {batched_secs:.6}, \"windows_per_sec\": {batched_wps:.2}, \
         \"block\": {block}, \"allocs_per_block\": {batched_per_block:.3}, \
         \"gemm_calls_per_window\": {batched_gemm_per_window:.3}, \
         \"speedup_vs_legacy\": {batched_speedup:.3} }},\n  \
         \"scalar_batched_windows_per_sec\": {scalar_batched_wps:.2},\n  \
         \"speedup_vs_scalar\": {speedup_vs_scalar:.3},\n  \
         \"score_check\": \"{score_check}\",\n  \
         \"max_score_ulp_vs_scalar\": {max_score_ulp},\n  \
         \"speedup\": {speedup:.3},\n  \"bit_identical\": {identical}\n}}\n",
        backend.name()
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_engine.json");
    std::fs::write(&path, &json).expect("write BENCH_engine.json");
    eprintln!("[engine] wrote {path}");
}

/// Lifts `"batched": { … "windows_per_sec": X … }` out of a child run's
/// JSON without a JSON parser (the bench crates stay dependency-free).
fn parse_batched_wps(json: &str) -> f64 {
    let obj = json
        .split("\"batched\"")
        .nth(1)
        .expect("child JSON has a batched arm");
    let field = obj
        .split("\"windows_per_sec\":")
        .nth(1)
        .expect("batched arm has windows_per_sec");
    field
        .trim_start()
        .split([',', '}'])
        .next()
        .expect("windows_per_sec value")
        .trim()
        .parse()
        .expect("windows_per_sec parses as f64")
}

/// The scan scoring path exactly as PR 3 shipped it, reconstructed from
/// that revision's `crates/nn` sources so the before/after comparison
/// runs both implementations side-by-side under identical machine
/// conditions (comparing against archived throughput numbers from a
/// different day measures the host, not the code).
///
/// Faithfully reproduced from the PR 3 revision:
///
/// * `gemm_nn` / `gemm_nt` / `dot` with their original index-based inner
///   loops (bounds checks intact);
/// * `im2col` into a freshly allocated, fully zero-initialised column
///   buffer per call;
/// * one fresh output buffer per layer call, with ReLU as a separate
///   full-tensor pass (no fused epilogues);
/// * inverted dropout as an inference-time identity copy, flatten as a
///   copy — both allocated, as the old `Tensor`-returning contract forced.
///
/// The per-element FLOP order is identical to the current kernels (the
/// PR 4 rewrites only removed bounds checks and redundant zero-fills), so
/// `main` asserts the reconstruction scores every window bit-identically
/// to the planned path.
mod pr3 {
    const KC: usize = 256;

    /// PR 3 `gemm_nn`: `C[m×n] += A[m×k] · B[k×n]`, index-based loops.
    fn gemm_nn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut p0 = 0;
        while p0 < k {
            let p1 = (p0 + KC).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                let mut p = p0;
                while p + 4 <= p1 {
                    let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                    let b0 = &b[p * n..p * n + n];
                    let b1 = &b[(p + 1) * n..(p + 1) * n + n];
                    let b2 = &b[(p + 2) * n..(p + 2) * n + n];
                    let b3 = &b[(p + 3) * n..(p + 3) * n + n];
                    for j in 0..n {
                        c_row[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
                    }
                    p += 4;
                }
                while p < p1 {
                    let av = a_row[p];
                    if av != 0.0 {
                        let b_row = &b[p * n..p * n + n];
                        for j in 0..n {
                            c_row[j] += av * b_row[j];
                        }
                    }
                    p += 1;
                }
            }
            p0 = p1;
        }
    }

    /// PR 3 `dot`: four accumulators over index-based loads.
    fn dot(x: &[f32], y: &[f32]) -> f32 {
        let k = x.len().min(y.len());
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
        let mut p = 0;
        while p + 4 <= k {
            s0 += x[p] * y[p];
            s1 += x[p + 1] * y[p + 1];
            s2 += x[p + 2] * y[p + 2];
            s3 += x[p + 3] * y[p + 3];
            p += 4;
        }
        while p < k {
            s0 += x[p] * y[p];
            p += 1;
        }
        (s0 + s1) + (s2 + s3)
    }

    /// PR 3 `gemm_nt` specialised to the dense-forward call shape
    /// (`n == 1`): the 2×2 tile degenerates to row-pair dot products.
    fn gemm_nt_vec(m: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut i = 0;
        while i + 2 <= m {
            c[i] += dot(&a[i * k..(i + 1) * k], b);
            c[i + 1] += dot(&a[(i + 1) * k..(i + 2) * k], b);
            i += 2;
        }
        if i < m {
            c[i] += dot(&a[i * k..(i + 1) * k], b);
        }
    }

    /// A 3×3 "same"-padding convolution carrying its PR 3 forward pass.
    pub struct Conv {
        weights: Vec<f32>,
        bias: Vec<f32>,
        in_c: usize,
        out_c: usize,
    }

    impl Conv {
        pub fn new(weights: Vec<f32>, bias: Vec<f32>, in_c: usize, out_c: usize) -> Self {
            assert_eq!(weights.len(), out_c * in_c * 9, "conv weight length");
            assert_eq!(bias.len(), out_c, "conv bias length");
            Conv {
                weights,
                bias,
                in_c,
                out_c,
            }
        }

        /// PR 3 conv forward: fresh zero-filled `col`, fresh output, bias
        /// broadcast, then GEMM.
        fn forward(&self, x: &[f32], h: usize, w: usize) -> Vec<f32> {
            let (k, pad) = (3usize, 1isize);
            let (oh, ow) = (h, w); // "same" padding
            let mut col = vec![0.0f32; self.in_c * k * k * oh * ow];
            for ic in 0..self.in_c {
                let plane = &x[ic * h * w..(ic + 1) * h * w];
                for ky in 0..k {
                    for kx in 0..k {
                        let row_base = ((ic * k + ky) * k + kx) * oh * ow;
                        let dst = &mut col[row_base..row_base + oh * ow];
                        let ox0 = 0isize.max(pad - kx as isize) as usize;
                        let ox1 = (ow as isize).min(w as isize + pad - kx as isize).max(0) as usize;
                        if ox0 >= ox1 {
                            continue; // whole column samples the zero padding
                        }
                        let shift = kx as isize - pad;
                        for oy in 0..oh {
                            let iy = oy as isize + ky as isize - pad;
                            if iy < 0 || iy >= h as isize {
                                continue; // row stays zero
                            }
                            let src_base = iy as usize * w;
                            let src = &plane[(src_base as isize + ox0 as isize + shift) as usize
                                ..(src_base as isize + ox1 as isize + shift) as usize];
                            dst[oy * ow + ox0..oy * ow + ox1].copy_from_slice(src);
                        }
                    }
                }
            }
            let mut out = vec![0.0f32; self.out_c * oh * ow];
            for (oc, &b) in self.bias.iter().enumerate() {
                out[oc * oh * ow..(oc + 1) * oh * ow].fill(b);
            }
            gemm_nn(
                self.out_c,
                oh * ow,
                self.in_c * k * k,
                &self.weights,
                &col,
                &mut out,
            );
            out
        }
    }

    /// A fully-connected layer carrying its PR 3 forward pass.
    pub struct Dense {
        weights: Vec<f32>,
        bias: Vec<f32>,
        in_f: usize,
        out_f: usize,
    }

    impl Dense {
        pub fn new(weights: Vec<f32>, bias: Vec<f32>, in_f: usize, out_f: usize) -> Self {
            assert_eq!(weights.len(), out_f * in_f, "dense weight length");
            assert_eq!(bias.len(), out_f, "dense bias length");
            Dense {
                weights,
                bias,
                in_f,
                out_f,
            }
        }

        fn forward(&self, x: &[f32]) -> Vec<f32> {
            assert_eq!(x.len(), self.in_f, "dense input length");
            let mut y = self.bias.clone();
            gemm_nt_vec(self.out_f, self.in_f, &self.weights, x, &mut y);
            y
        }
    }

    /// PR 3 ReLU inference: a separate full-tensor pass into a fresh
    /// buffer (no epilogue fusion existed).
    fn relu(x: &[f32]) -> Vec<f32> {
        x.iter().map(|&v| if v > 0.0 { v } else { 0.0 }).collect()
    }

    /// PR 3 2×2 max-pool inference: strict-`>` scan from `-inf`.
    fn maxpool(x: &[f32], c: usize, h: usize, w: usize) -> Vec<f32> {
        let (oh, ow) = (h / 2, w / 2);
        let mut out = Vec::with_capacity(c * oh * ow);
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let v = x[(ch * h + oy * 2 + dy) * w + ox * 2 + dx];
                            if v > best {
                                best = v;
                            }
                        }
                    }
                    out.push(best);
                }
            }
        }
        out
    }

    /// The paper's network wired through the PR 3 layer implementations.
    pub struct Model {
        pub conv1: Conv,
        pub conv2: Conv,
        pub conv3: Conv,
        pub conv4: Conv,
        pub dense1: Dense,
        pub dense2: Dense,
        pub grid: usize,
    }

    impl Model {
        /// PR 3 `forward_inference`: every layer returns a fresh buffer;
        /// flatten and inference-time dropout are identity *copies* (the
        /// old `Tensor`-returning contract allocated for both).
        pub fn forward_inference(&self, x: &[f32]) -> Vec<f32> {
            let n = self.grid;
            let a = relu(&self.conv1.forward(x, n, n));
            let a = relu(&self.conv2.forward(&a, n, n));
            let a = maxpool(&a, self.conv2.out_c, n, n);
            let a = relu(&self.conv3.forward(&a, n / 2, n / 2));
            let a = relu(&self.conv4.forward(&a, n / 2, n / 2));
            let a = maxpool(&a, self.conv4.out_c, n / 2, n / 2);
            let a = a.to_vec(); // flatten
            let a = relu(&self.dense1.forward(&a));
            let a = a.to_vec(); // inference-time dropout (identity clone)
            self.dense2.forward(&a)
        }
    }
}
