//! Ablation: feature-tensor coefficient count `k` vs detection quality and
//! runtime (the design-choice study DESIGN.md calls out; `k = 1` keeps
//! only each block's DC term, i.e. a 12×12 density map — ablating away the
//! spectral content entirely).
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin ablation_k -- \
//!     --scale 0.02 --steps 500
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::detector::HotspotDetector;
use hotspot_datagen::suite::SuiteSpec;
use std::time::Instant;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);

    let headers = ["k", "accu", "FA#", "overall", "train_s", "eval_s"];
    let mut rows = Vec::new();
    for k in [1usize, 4, 8, 16, 32] {
        eprintln!("[ablation_k] training with k = {k}...");
        let mut config = detector_config(&args);
        config.pipeline = hotspot_core::FeaturePipeline::new(10, 12, k).expect("valid pipeline");
        // Keep the ablation affordable: two bias rounds.
        config.biased.rounds = args.usize("rounds", 2);
        let start = Instant::now();
        let detector = HotspotDetector::fit(&data.train, &config).expect("training runs");
        let train_s = start.elapsed().as_secs_f64();
        let result = detector.evaluate(&data.test).expect("evaluation runs");
        rows.push(vec![
            k.to_string(),
            table::pct(result.accuracy),
            result.false_alarms.to_string(),
            table::pct(result.overall_accuracy()),
            format!("{train_s:.1}"),
            format!("{:.2}", result.eval_time_s),
        ]);
    }
    println!("\nAblation: DCT coefficients kept per block (ICCAD benchmark):\n");
    println!("{}", table::render(&headers, &rows));
    table::write_csv(&out_dir, "ablation_k", &headers, &rows);
}
