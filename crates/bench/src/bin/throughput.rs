//! Inference-throughput benchmark: clips scored per second by the fitted
//! detector at 1, 2 and all available threads.
//!
//! Exercises the full `Detector::predict_batch` path (feature extraction +
//! im2col/GEMM CNN forward) and cross-checks that every thread count
//! reproduces the single-threaded probabilities bit for bit — the
//! determinism contract documented in `DESIGN.md`.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin throughput -- \
//!     --scale 0.02 --steps 150 --k 32 --reps 3
//! ```
//!
//! Writes `results/BENCH_throughput.json` (override the directory with
//! `--out`).

use hotspot_bench::{build_benchmark, detector_config, oracle, ExperimentArgs};
use hotspot_core::{HotspotDetector, Parallelism};
use hotspot_datagen::suite::SuiteSpec;
use hotspot_geometry::Clip;
use std::time::Instant;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let reps = args.usize("reps", 3);

    // Throughput needs a representative model, not a converged one: trim
    // the training budget unless the caller asks for more.
    let mut config = detector_config(&args);
    let steps = args.usize("steps", 150);
    config.mgd.max_steps = steps;
    config.biased.initial.max_steps = steps;
    config.biased.fine_tune.max_steps = (steps / 4).max(1);
    config.biased.rounds = args.usize("rounds", 1);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::industry3(scale), &sim);
    eprintln!("[throughput] fitting detector ({steps} steps)...");
    let mut detector = HotspotDetector::fit(&data.train, &config).expect("detector fits the suite");

    let clips: Vec<Clip> = data.test.samples().iter().map(|s| s.clip.clone()).collect();
    let all = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut thread_counts = vec![1usize, 2, all];
    thread_counts.sort_unstable();
    thread_counts.dedup();

    // Warm-up + serial reference for the determinism cross-check.
    detector.set_parallelism(Parallelism::serial());
    let reference = detector
        .predict_batch(&clips)
        .expect("clips came from the same suite");

    let mut rows = Vec::new();
    for &threads in &thread_counts {
        detector.set_parallelism(Parallelism::fixed(threads).expect("thread counts are nonzero"));
        let mut best = f64::INFINITY;
        let mut identical = true;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            let probs = detector
                .predict_batch(&clips)
                .expect("clips came from the same suite");
            best = best.min(start.elapsed().as_secs_f64());
            identical &= probs == reference;
        }
        let cps = clips.len() as f64 / best;
        eprintln!(
            "[throughput] {threads:>2} thread(s): {:.3} s for {} clips = {cps:.1} clips/s \
             (bit-identical to serial: {identical})",
            best,
            clips.len()
        );
        rows.push((threads, best, cps, identical));
    }

    let entries: Vec<String> = rows
        .iter()
        .map(|(threads, secs, cps, identical)| {
            format!(
                "    {{ \"threads\": {threads}, \"secs\": {secs:.6}, \
                 \"clips_per_sec\": {cps:.2}, \"bit_identical_to_serial\": {identical} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"industry3\",\n  \"scale\": {scale},\n  \"clips\": {},\n  \
         \"train_steps\": {steps},\n  \"reps\": {reps},\n  \"results\": [\n{}\n  ]\n}}\n",
        clips.len(),
        entries.join(",\n")
    );
    print!("{json}");

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    let path = format!("{out_dir}/BENCH_throughput.json");
    std::fs::write(&path, &json).expect("write BENCH_throughput.json");
    eprintln!("[throughput] wrote {path}");
}
