//! Ablation: biased-learning schedule (bias step δε and round count t)
//! vs the accuracy / false-alarm trade-off — the sensitivity study behind
//! Algorithm 2's `δε = 0.1, t = 4` choice.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin ablation_bias -- \
//!     --scale 0.02 --steps 500
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::detector::HotspotDetector;
use hotspot_datagen::suite::SuiteSpec;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);

    let headers = ["eps_step", "rounds", "final_eps", "accu", "FA#", "overall"];
    let mut rows = Vec::new();
    let schedules: [(f32, usize); 6] =
        [(0.0, 1), (0.1, 2), (0.1, 4), (0.05, 4), (0.15, 3), (0.1, 5)];
    for (eps_step, rounds) in schedules {
        let final_eps = eps_step * (rounds - 1) as f32;
        eprintln!("[ablation_bias] δε = {eps_step}, t = {rounds} (ε → {final_eps:.2})...");
        let mut config = detector_config(&args);
        config.biased.epsilon_step = eps_step;
        config.biased.rounds = rounds;
        let detector = HotspotDetector::fit(&data.train, &config).expect("training runs");
        let result = detector.evaluate(&data.test).expect("evaluation runs");
        rows.push(vec![
            format!("{eps_step:.2}"),
            rounds.to_string(),
            format!("{final_eps:.2}"),
            table::pct(result.accuracy),
            result.false_alarms.to_string(),
            table::pct(result.overall_accuracy()),
        ]);
    }
    println!("\nAblation: biased-learning schedule (ICCAD benchmark):\n");
    println!("{}", table::render(&headers, &rows));
    println!(
        "Expected shape (Theorem 1): accuracy non-decreasing with final ε, with\n\
         false alarms growing slowly until ε approaches 0.5."
    );
    table::write_csv(&out_dir, "ablation_bias", &headers, &rows);
}
