//! Regenerates **Figure 3**: SGD vs mini-batch gradient descent —
//! validation accuracy against elapsed training time on the ICCAD
//! benchmark.
//!
//! The paper trains SGD at a constant 1e-4 learning rate and MGD starting
//! at 1e-3 (footnote 1: the averaged batch gradient is smaller, so MGD
//! gets the larger rate); both see the same number of training-instance
//! presentations here for a fair wall-clock comparison.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin fig3_sgd_vs_mgd -- \
//!     --scale 0.02 --steps 600 --k 32
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::mgd::{self, MgdConfig};
use hotspot_datagen::suite::SuiteSpec;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let config = detector_config(&args);
    let mgd_steps = args.usize("steps", 600);
    let batch = args.usize("batch", 32);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);
    eprintln!("[fig3] extracting feature tensors...");
    let (features, labels) = config
        .pipeline
        .extract_dataset(&data.train)
        .expect("suite clips match the pipeline");

    let mgd_cfg = MgdConfig {
        lr: 1e-3,
        alpha: 0.5,
        decay_step: (mgd_steps / 3).max(1),
        batch_size: batch,
        max_steps: mgd_steps,
        val_interval: (mgd_steps / 20).max(1),
        patience: usize::MAX, // run the full budget so the curves are comparable
        val_fraction: 0.25,
        seed: args.u64("seed", 42),
        balanced_sampling: true,
        threads: 1,
    };
    // SGD: batch 1, constant 1e-4 rate, same number of instance
    // presentations as MGD.
    let sgd_cfg = MgdConfig {
        lr: 1e-4,
        alpha: 1.0,
        decay_step: usize::MAX - 1,
        batch_size: 1,
        max_steps: mgd_steps * batch,
        val_interval: ((mgd_steps * batch) / 20).max(1),
        ..mgd_cfg.clone()
    };

    eprintln!(
        "[fig3] training with MGD ({} steps x batch {batch})...",
        mgd_steps
    );
    let mut mgd_net = make_net(&config);
    let mgd_report =
        mgd::train(&mut mgd_net, &features, &labels, 0.0, &mgd_cfg).expect("training runs");
    eprintln!(
        "[fig3] training with SGD ({} steps x batch 1)...",
        sgd_cfg.max_steps
    );
    let mut sgd_net = make_net(&config);
    let sgd_report =
        mgd::train(&mut sgd_net, &features, &labels, 0.0, &sgd_cfg).expect("training runs");

    let headers = ["optimizer", "step", "elapsed_s", "val_accuracy"];
    let mut rows = Vec::new();
    for p in &mgd_report.history {
        rows.push(vec![
            "MGD".to_string(),
            p.step.to_string(),
            format!("{:.2}", p.elapsed_s),
            format!("{:.4}", p.val_accuracy),
        ]);
    }
    for p in &sgd_report.history {
        rows.push(vec![
            "SGD".to_string(),
            p.step.to_string(),
            format!("{:.2}", p.elapsed_s),
            format!("{:.4}", p.val_accuracy),
        ]);
    }
    println!("\nFigure 3 reproduction (validation accuracy vs elapsed time):\n");
    println!("{}", table::render(&headers, &rows));
    println!(
        "MGD best validation accuracy: {}  (in {:.1} s)",
        table::pct(mgd_report.best_val_accuracy),
        mgd_report.train_time_s
    );
    println!(
        "SGD best validation accuracy: {}  (in {:.1} s)",
        table::pct(sgd_report.best_val_accuracy),
        sgd_report.train_time_s
    );
    // The paper's qualitative claim: when MGD reaches high validation
    // accuracy, SGD still lags.
    let mgd_mid = accuracy_at_fraction(&mgd_report.history, 0.5);
    let sgd_mid = accuracy_at_fraction(&sgd_report.history, 0.5);
    println!(
        "At half the time budget: MGD {} vs SGD {}",
        table::pct(mgd_mid),
        table::pct(sgd_mid)
    );
    table::write_csv(&out_dir, "fig3_sgd_vs_mgd", &headers, &rows);
}

fn make_net(config: &hotspot_core::DetectorConfig) -> hotspot_nn::Network {
    hotspot_core::model::CnnConfig {
        input_grid: config.pipeline.grid_dim(),
        input_channels: config.pipeline.coefficients(),
        ..config.cnn
    }
    .build()
}

fn accuracy_at_fraction(history: &[mgd::TrainPoint], frac: f64) -> f64 {
    let total = history.last().map(|p| p.elapsed_s).unwrap_or(0.0);
    history
        .iter()
        .filter(|p| p.elapsed_s <= total * frac)
        .map(|p| p.val_accuracy)
        .fold(0.0, f64::max)
}
