//! Extension study: dihedral data augmentation.
//!
//! The eight square symmetries preserve hotspot labels exactly under the
//! suite's isotropic lithography oracle (`hotspot_datagen::augment`), so
//! they multiply the training set for free. This study trains the CNN with
//! and without augmentation on a deliberately *small* training set — the
//! regime where augmentation matters.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin ablation_augment -- \
//!     --scale 0.005 --steps 600
//! ```

use hotspot_bench::{build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::detector::HotspotDetector;
use hotspot_datagen::augment;
use hotspot_datagen::suite::SuiteSpec;

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.005);
    let out_dir = args.string("out", "results");
    let mut config = detector_config(&args);
    config.pipeline =
        hotspot_core::FeaturePipeline::new(10, 12, args.usize("k", 16)).expect("valid pipeline");
    config.biased.rounds = args.usize("rounds", 2);

    let sim = oracle();
    let data = build_benchmark(&SuiteSpec::iccad(scale), &sim);
    let augmented = augment::augment_dataset(&data.train);
    eprintln!(
        "[ablation_augment] train {} clips plain, {} augmented",
        data.train.len(),
        augmented.len()
    );

    let headers = ["training set", "clips", "accu", "FA#", "overall"];
    let mut rows = Vec::new();
    for (name, train) in [("plain", &data.train), ("augmented 8x", &augmented)] {
        eprintln!("[ablation_augment] training on {name}...");
        let detector = HotspotDetector::fit(train, &config).expect("training runs");
        let result = detector.evaluate(&data.test).expect("evaluation runs");
        rows.push(vec![
            name.to_string(),
            train.len().to_string(),
            table::pct(result.accuracy),
            result.false_alarms.to_string(),
            table::pct(result.overall_accuracy()),
        ]);
    }
    println!("\nAblation: dihedral augmentation (small ICCAD benchmark):\n");
    println!("{}", table::render(&headers, &rows));
    table::write_csv(&out_dir, "ablation_augment", &headers, &rows);
}
