//! Regenerates **Table 2**: accuracy / false alarms / CPU / ODST of the
//! three detectors (SPIE'15, ICCAD'16, Ours) on the four benchmarks.
//!
//! ```text
//! cargo run --release -p hotspot-bench --bin table2 -- \
//!     --scale 0.02 --steps 800 --k 32 --out results
//! ```
//!
//! `--scale` scales the paper's benchmark sizes (1.0 = full size, ~300 k
//! clips); the default 0.02 keeps the full four-benchmark run to tens of
//! minutes on one CPU core. Pass `--print-arch 1` to also print the
//! Table-1 architecture summary.

use hotspot_bench::{baseline, build_benchmark, detector_config, oracle, table, ExperimentArgs};
use hotspot_core::metrics::EvalResult;
use hotspot_datagen::suite::SuiteSpec;

struct Row {
    bench: String,
    results: Vec<EvalResult>, // spie15, iccad16, ours
}

fn main() {
    let args = ExperimentArgs::from_env();
    let scale = args.f64("scale", 0.02);
    let out_dir = args.string("out", "results");
    let config = detector_config(&args);

    if args.usize("print-arch", 0) == 1 {
        print_architecture(&config);
    }

    let sim = oracle();
    let mut rows: Vec<Row> = Vec::new();
    for spec in SuiteSpec::table2_suites(scale) {
        let data = build_benchmark(&spec, &sim);
        eprintln!("[table2] {}: training SPIE'15 baseline...", spec.name);
        let spie = baseline::eval_spie15(&data).expect("baseline trains on two-class data");
        eprintln!("[table2] {}: training ICCAD'16 baseline...", spec.name);
        let iccad = baseline::eval_iccad16(&data).expect("baseline trains on two-class data");
        eprintln!("[table2] {}: training CNN (biased learning)...", spec.name);
        let (ours, detector) = baseline::eval_ours(&data, &config).expect("detector trains");
        eprintln!(
            "[table2] {}: done (final ε = {:.1}, {:.0} s training)",
            spec.name,
            detector.training_report().final_epsilon(),
            detector.training_report().total_train_time_s()
        );
        rows.push(Row {
            bench: spec.name.clone(),
            results: vec![spie, iccad, ours],
        });
    }

    // Averages across benchmarks, as the paper's Average row.
    let detectors = ["SPIE'15", "ICCAD'16", "Ours"];
    let mut avg: Vec<(f64, f64, f64, f64)> = vec![(0.0, 0.0, 0.0, 0.0); detectors.len()];
    for row in &rows {
        for (i, r) in row.results.iter().enumerate() {
            avg[i].0 += r.false_alarms as f64;
            avg[i].1 += r.eval_time_s;
            avg[i].2 += r.odst_s;
            avg[i].3 += r.accuracy;
        }
    }
    let n = rows.len() as f64;

    let headers = ["Bench", "Detector", "FA#", "CPU(s)", "ODST(s)", "Accu"];
    let mut table_rows: Vec<Vec<String>> = Vec::new();
    for row in &rows {
        for (i, r) in row.results.iter().enumerate() {
            table_rows.push(vec![
                if i == 0 {
                    row.bench.clone()
                } else {
                    String::new()
                },
                detectors[i].to_string(),
                r.false_alarms.to_string(),
                format!("{:.2}", r.eval_time_s),
                format!("{:.0}", r.odst_s),
                table::pct(r.accuracy),
            ]);
        }
    }
    for (i, name) in detectors.iter().enumerate() {
        table_rows.push(vec![
            if i == 0 {
                "Average".into()
            } else {
                String::new()
            },
            name.to_string(),
            format!("{:.0}", avg[i].0 / n),
            format!("{:.2}", avg[i].1 / n),
            format!("{:.0}", avg[i].2 / n),
            table::pct(avg[i].3 / n),
        ]);
    }
    // Ratio row vs Ours (the paper normalises ODST and accuracy to Ours).
    let ours_odst = avg[2].2.max(f64::MIN_POSITIVE);
    let ours_accu = avg[2].3.max(f64::MIN_POSITIVE);
    for (i, name) in detectors.iter().enumerate() {
        table_rows.push(vec![
            if i == 0 {
                "Ratio".into()
            } else {
                String::new()
            },
            name.to_string(),
            "-".into(),
            "-".into(),
            format!("{:.2}", avg[i].2 / ours_odst),
            format!("{:.2}", avg[i].3 / ours_accu),
        ]);
    }

    println!("\nTable 2 reproduction (scale {scale}):\n");
    println!("{}", table::render(&headers, &table_rows));
    table::write_csv(&out_dir, "table2", &headers, &table_rows);
}

fn print_architecture(config: &hotspot_core::DetectorConfig) {
    use hotspot_core::model::CnnConfig;
    let cnn = CnnConfig {
        input_grid: config.pipeline.grid_dim(),
        input_channels: config.pipeline.coefficients(),
        ..config.cnn
    };
    let net = cnn.build();
    println!("\nTable 1 reproduction (CNN configuration):\n");
    let rows: Vec<Vec<String>> = net
        .summary(&cnn.input_shape())
        .into_iter()
        .map(|(name, shape)| {
            vec![
                name,
                shape
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" x "),
            ]
        })
        .collect();
    println!("{}", table::render(&["Layer", "Output Node #"], &rows));
}
